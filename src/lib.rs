//! # Stardust (reproduction)
//!
//! Facade crate for the Rust reproduction of *"Stardust: Compiling Sparse
//! Tensor Algebra to a Reconfigurable Dataflow Architecture"* (CGO 2025).
//!
//! This crate re-exports the public API of every workspace crate so that
//! downstream users (and the `examples/` directory) can depend on a single
//! package:
//!
//! - [`tensor`] — sparse tensor formats and storage,
//! - [`ir`] — index notation and concrete index notation (CIN),
//! - [`spatial`] — the Spatial parallel-pattern IR, interpreter and printer,
//! - [`core`] — the Stardust compiler (scheduling, memory analysis,
//!   co-iteration lowering),
//! - [`capstan`] — the Capstan RDA simulator,
//! - [`baselines`] — TACO-style CPU and GPU baselines,
//! - [`datasets`] — synthetic dataset generators,
//! - [`kernels`] — the ten benchmark kernels of the paper's Table 3.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end SpMV compile-and-simulate
//! walkthrough; the crate-level test suite in `tests/` exercises every kernel
//! end to end against a dense semantic oracle.

pub use stardust_baselines as baselines;
pub use stardust_capstan as capstan;
pub use stardust_core as core;
pub use stardust_datasets as datasets;
pub use stardust_ir as ir;
pub use stardust_kernels as kernels;
pub use stardust_serve as serve;
pub use stardust_spatial as spatial;
pub use stardust_tensor as tensor;
