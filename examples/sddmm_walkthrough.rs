//! The paper's running example (§4–§5): SDDMM for machine learning.
//!
//! ```sh
//! cargo run --example sddmm_walkthrough
//! ```
//!
//! Shows the CIN transformations the Fig. 5 schedule performs step by
//! step — canonical CIN (eq. 1), per-row staging of the dense operands
//! (Fig. 6a), the scalar-workspace precompute, and the `accelerate`d
//! reduction — then compiles and runs the kernel.

use std::collections::HashMap;

use stardust::core::pipeline::{Compiler, TensorData};
use stardust::core::{ProgramBuilder, Scheduler};
use stardust::datasets::random_matrix;
use stardust::ir::cin::PatternFn;
use stardust::ir::Expr;
use stardust::tensor::Format;

fn main() {
    let (n, k) = (32, 8);
    let mut program = ProgramBuilder::new("sddmm")
        .tensor("A", vec![n, n], Format::csr())
        .tensor("B", vec![n, n], Format::csr())
        .tensor("C", vec![n, k], Format::dense(2))
        .tensor("D", vec![k, n], Format::dense_col_major())
        .expr("A(i,j) = B(i,j) * C(i,k) * D(k,j)")
        .build()
        .expect("builds");

    println!("== Canonical CIN (eq. 1) ==");
    println!("{}\n", program.canonical_cin());

    let mut s = Scheduler::new(&mut program);
    s.environment("innerPar", 16).unwrap();
    s.environment("outerPar", 2).unwrap();

    s.precompute(
        &Expr::access("C", vec!["i".into(), "k".into()]),
        &["k"],
        "C_on",
    )
    .unwrap();
    println!("== After precompute(C(i,k), {{k}}, {{k}}, C_on) (Fig. 6a) ==");
    println!("{}\n", s.stmt());

    s.precompute(
        &Expr::access("D", vec!["k".into(), "j".into()]),
        &["k"],
        "D_on",
    )
    .unwrap();
    println!("== After precompute(D(k,j), {{k}}, {{k}}, D_on) ==");
    println!("{}\n", s.stmt());

    s.precompute_reduction("ws").unwrap();
    println!("== After the scalar-workspace precompute (Fig. 5 line 22) ==");
    println!("{}\n", s.stmt());

    s.accelerate_reduction("ws", PatternFn::Reduction).unwrap();
    println!("== After accelerate(..., Reduction, innerPar) ==");
    println!("{}\n", s.stmt());

    let stmt = s.finish();

    // Compile and execute on random data.
    let b = random_matrix(n, n, 0.2, 3);
    let c = random_matrix(n, k, 1.0, 4);
    let d = random_matrix(k, n, 1.0, 5);
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), TensorData::from_coo(&b, Format::csr()));
    inputs.insert("C".to_string(), TensorData::from_coo(&c, Format::dense(2)));
    inputs.insert(
        "D".to_string(),
        TensorData::from_coo(&d, Format::dense_col_major()),
    );
    let hints = Compiler::hints_from_inputs(&inputs, &[("A", 1, b.nnz())]);
    let kernel = Compiler::compile(&program, &stmt, hints).expect("compiles");

    println!("== Generated Spatial ({} LoC) ==", kernel.spatial_loc());
    println!("{}", kernel.source());

    let run = kernel.execute(&inputs).expect("runs");
    println!(
        "computed {} output nonzeros; {} DRAM words read",
        match &run.output {
            stardust::core::pipeline::KernelOutput::Tensor(t) => t.nnz(),
            stardust::core::pipeline::KernelOutput::Scalar(_) => 0,
        },
        run.stats.total_dram_read_words()
    );
}
