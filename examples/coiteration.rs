//! The Fig. 7 worked example: element-wise union co-iteration of two
//! compressed vectors through packed bit vectors and the sparse scanner.
//!
//! ```sh
//! cargo run --example coiteration
//! ```
//!
//! A crd {1,2,5} and B crd {0,2,3,8} scan under OR to the merged output
//! crd {0,1,2,3,5,8}, with per-operand pattern indices (X = absent).

use stardust::spatial::ir::MemDecl;
use stardust::spatial::{Counter, Machine, MemKind, SExpr, ScanOp, SpatialProgram, SpatialStmt};

fn main() {
    let mut p = SpatialProgram::new("fig7");
    p.add_dram("a_crd_dram", 8);
    p.add_dram("b_crd_dram", 8);
    p.add_dram("out_crd_dram", 16);

    let dim = 9.0;
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new("a_crd", MemKind::Fifo, 8)));
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new("b_crd", MemKind::Fifo, 8)));
    p.accel.push(SpatialStmt::Load {
        dst: "a_crd".into(),
        src: "a_crd_dram".into(),
        start: SExpr::Const(0.0),
        end: SExpr::Const(3.0),
        par: 1,
    });
    p.accel.push(SpatialStmt::Load {
        dst: "b_crd".into(),
        src: "b_crd_dram".into(),
        start: SExpr::Const(0.0),
        end: SExpr::Const(4.0),
        par: 1,
    });
    for (bv, src, count) in [("bvA", "a_crd", 3.0), ("bvB", "b_crd", 4.0)] {
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new(bv, MemKind::BitVector, 9)));
        p.accel.push(SpatialStmt::GenBitVector {
            dst: bv.into(),
            src: src.into(),
            src_start: SExpr::Const(0.0),
            count: SExpr::Const(count),
            dim: SExpr::Const(dim),
        });
    }
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Scan2 {
            op: ScanOp::Or,
            bv_a: "bvA".into(),
            bv_b: "bvB".into(),
            a_pos_var: "pA".into(),
            b_pos_var: "pB".into(),
            out_pos_var: "pO".into(),
            idx_var: "i".into(),
        },
        par: 4,
        body: vec![SpatialStmt::StoreScalar {
            dst: "out_crd_dram".into(),
            index: SExpr::var("pO"),
            value: SExpr::var("i"),
        }],
    });
    p.assign_ids();

    let mut m = Machine::new(&p);
    m.write_dram("a_crd_dram", &[1.0, 2.0, 5.0]).unwrap();
    m.write_dram("b_crd_dram", &[0.0, 2.0, 3.0, 8.0]).unwrap();
    let stats = m.run(&p).unwrap();

    println!("A crd: [1, 2, 5]");
    println!("B crd: [0, 2, 3, 8]");
    let out = m.dram_usize("out_crd_dram").unwrap();
    println!("Out crd (union): {:?}", &out[..stats.scan_emits as usize]);
    println!(
        "scanner examined {} bits, emitted {} coordinates",
        stats.scan_bits, stats.scan_emits
    );
    assert_eq!(&out[..6], &[0, 1, 2, 3, 5, 8]);
    println!("matches Fig. 7.");
}
