//! Tensor factorization workloads on a social-network tensor: TTV and
//! MTTKRP (the alternating-least-squares building block), as in the
//! paper's facebook experiments.
//!
//! ```sh
//! cargo run --example tensor_factorization
//! ```

use std::collections::HashMap;

use stardust::capstan::{simulate, CapstanConfig, MemoryModel};
use stardust::core::pipeline::TensorData;
use stardust::datasets::{facebook, random_matrix, random_vector};
use stardust::kernels;
use stardust::tensor::Format;

fn main() {
    // A scaled-down facebook-like hyper-sparse interaction tensor.
    let b = facebook(200);
    let dims = b.dims().to_vec();
    let (d0, d1, d2) = (dims[0], dims[1], dims[2]);
    let rank = 8;
    println!(
        "tensor: {d0} x {d1} x {d2}, nnz = {}, density = {:.2e}\n",
        b.nnz(),
        b.density()
    );

    // --- TTV: contract the last mode with a vector -------------------
    let ttv = kernels::ttv(d0, d1, d2);
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), TensorData::from_coo(&b, Format::csf(3)));
    inputs.insert(
        "c".to_string(),
        TensorData::from_coo(&random_vector(d2, 1), Format::dense_vec()),
    );
    let result = ttv.run(&inputs).expect("ttv runs");
    let cfg = CapstanConfig::with_memory(MemoryModel::Hbm2e);
    let report = simulate(
        result.stages[0].compiled.spatial(),
        &result.stages[0].stats,
        &cfg,
    );
    println!(
        "TTV:    {:>8.2} us on Capstan/HBM2E (bottleneck: {}), {} Spatial LoC",
        report.seconds * 1e6,
        report.bottleneck,
        result.spatial_loc()
    );

    // --- MTTKRP: the ALS kernel --------------------------------------
    let mttkrp = kernels::mttkrp(d0, d1, d2, rank);
    let mut inputs = HashMap::new();
    inputs.insert("B".to_string(), TensorData::from_coo(&b, Format::csf(3)));
    inputs.insert(
        "C".to_string(),
        TensorData::from_coo(&random_matrix(rank, d1, 1.0, 2), Format::dense_col_major()),
    );
    inputs.insert(
        "D".to_string(),
        TensorData::from_coo(&random_matrix(rank, d2, 1.0, 3), Format::dense_col_major()),
    );
    let result = mttkrp.run(&inputs).expect("mttkrp runs");
    let report = simulate(
        result.stages[0].compiled.spatial(),
        &result.stages[0].stats,
        &cfg,
    );
    println!(
        "MTTKRP: {:>8.2} us on Capstan/HBM2E (bottleneck: {}), {} Spatial LoC",
        report.seconds * 1e6,
        report.bottleneck,
        result.spatial_loc()
    );

    // Factor-matrix row of the output, as ALS would consume it.
    let a = result.output.to_dense();
    println!("\nA[0, 0..{rank}] = {:?}", &a.data()[..rank]);
}
