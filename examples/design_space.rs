//! Design-space exploration with the `environment` command (§5.2): sweep
//! the inner/outer parallelization factors of SpMV and report simulated
//! cycles and chip resources — the workflow the paper describes for
//! "design-space exploration of the backend hardware schedules ... without
//! direct knowledge of the backend architecture".
//!
//! ```sh
//! cargo run --example design_space
//! ```

use std::collections::HashMap;

use stardust::capstan::{place, simulate, CapstanConfig};
use stardust::core::pipeline::{Compiler, TensorData};
use stardust::core::{ProgramBuilder, Scheduler};
use stardust::datasets::{random_matrix, random_vector};
use stardust::ir::cin::PatternFn;
use stardust::ir::Expr;
use stardust::tensor::Format;

fn main() {
    let n = 256;
    let a = random_matrix(n, n, 0.05, 9);
    let x = random_vector(n, 10);
    let mut inputs = HashMap::new();
    inputs.insert("A".to_string(), TensorData::from_coo(&a, Format::csr()));
    inputs.insert(
        "x".to_string(),
        TensorData::from_coo(&x, Format::dense_vec()),
    );
    let cfg = CapstanConfig::default();

    println!(
        "{:>8} {:>8} | {:>12} {:>6} {:>6} {:>6} {:>6} | fits",
        "outerPar", "innerPar", "cycles", "PCU", "PMU", "MC", "Shuf"
    );
    for outer in [1usize, 4, 8, 16, 32] {
        for inner in [4usize, 16] {
            let mut program = ProgramBuilder::new("spmv_dse")
                .tensor("A", vec![n, n], Format::csr())
                .tensor("x", vec![n], Format::dense_vec())
                .tensor("y", vec![n], Format::dense_vec())
                .expr("y(i) = A(i,j) * x(j)")
                .build()
                .expect("builds");
            let mut s = Scheduler::new(&mut program);
            s.environment("innerPar", inner as i64).unwrap();
            s.environment("outerPar", outer as i64).unwrap();
            s.precompute(&Expr::access("x", vec!["j".into()]), &["j"], "x_on")
                .unwrap();
            s.precompute_reduction("ws").unwrap();
            s.accelerate_reduction("ws", PatternFn::Reduction).unwrap();
            let stmt = s.finish();
            let hints = Compiler::hints_from_inputs(&inputs, &[]);
            let kernel = Compiler::compile(&program, &stmt, hints).expect("compiles");
            let run = kernel.execute(&inputs).expect("runs");
            let report = simulate(kernel.spatial(), &run.stats, &cfg);
            let res = place(kernel.spatial(), &cfg);
            println!(
                "{outer:>8} {inner:>8} | {:>12.0} {:>6} {:>6} {:>6} {:>6} | {}",
                report.cycles,
                res.pcus,
                res.pmus,
                res.mcs,
                res.shuffles,
                if res.fits() { "yes" } else { "NO" }
            );
        }
    }
    println!();
    println!(
        "Note the shuffle-network ceiling: gathers cap useful outer \
         parallelism at 16 (§8.2), the effect the handwritten SpMV avoids \
         by duplicating the input vector (§8.3)."
    );
}
