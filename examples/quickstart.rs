//! Quickstart: compile SpMV to Spatial and run it on the Capstan simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This walks the full Stardust pipeline on a small sparse matrix: declare
//! tensors with formats (§5.1), write the algorithm in index notation,
//! schedule it for the accelerator (§5.2), compile (§6–§7), inspect the
//! generated Spatial code (Fig. 11), execute it functionally, and get a
//! cycle estimate from the Capstan machine model.

use std::collections::HashMap;

use stardust::capstan::{simulate, CapstanConfig, MemoryModel};
use stardust::core::pipeline::{Compiler, TensorData};
use stardust::core::{ProgramBuilder, Scheduler};
use stardust::datasets::{random_matrix, random_vector};
use stardust::ir::cin::PatternFn;
use stardust::ir::Expr;
use stardust::tensor::Format;

fn main() {
    let n = 64;

    // 1. Declare the tensors: CSR matrix, dense vectors (Fig. 5 style).
    let mut program = ProgramBuilder::new("spmv")
        .tensor("A", vec![n, n], Format::csr())
        .tensor("x", vec![n], Format::dense_vec())
        .tensor("y", vec![n], Format::dense_vec())
        .expr("y(i) = A(i,j) * x(j)")
        .build()
        .expect("program builds");

    // 2. Schedule: stage x on-chip, accelerate the reduction, set
    //    parallelization factors.
    let mut sched = Scheduler::new(&mut program);
    sched.environment("innerPar", 16).unwrap();
    sched.environment("outerPar", 16).unwrap();
    sched
        .precompute(&Expr::access("x", vec!["j".into()]), &["j"], "x_on")
        .unwrap();
    sched.precompute_reduction("ws").unwrap();
    sched
        .accelerate_reduction("ws", PatternFn::Reduction)
        .unwrap();
    let stmt = sched.finish();
    println!("== Scheduled CIN ==\n{stmt}\n");

    // 3. Build input data and compile with real size hints.
    let a = random_matrix(n, n, 0.1, 1);
    let x = random_vector(n, 2);
    let mut inputs = HashMap::new();
    inputs.insert("A".to_string(), TensorData::from_coo(&a, Format::csr()));
    inputs.insert(
        "x".to_string(),
        TensorData::from_coo(&x, Format::dense_vec()),
    );
    let hints = Compiler::hints_from_inputs(&inputs, &[]);
    let kernel = Compiler::compile(&program, &stmt, hints).expect("compiles");

    println!("== Memory analysis (§6) ==\n{}", kernel.plan().to_table());
    println!(
        "== Generated Spatial (Fig. 11 style) ==\n{}",
        kernel.source()
    );

    // 4. Execute on the Spatial interpreter and time on Capstan.
    let run = kernel.execute(&inputs).expect("runs");
    let y = run.output.to_dense();
    println!("y[0..8] = {:?}", &y.data()[..8]);

    for memory in [MemoryModel::Hbm2e, MemoryModel::Ddr4] {
        let cfg = CapstanConfig::with_memory(memory);
        let report = simulate(kernel.spatial(), &run.stats, &cfg);
        println!(
            "{memory:?}: {:.0} cycles ({:.2} us), bottleneck: {}",
            report.cycles,
            report.seconds * 1e6,
            report.bottleneck
        );
    }
}
