//! Cross-crate integration: compiled kernels through the Capstan machine
//! model — placement sanity, memory-system ordering, bottleneck
//! attribution, and the harness's Table 6 invariants.

use std::collections::HashMap;

use stardust::capstan::{place, simulate, CapstanConfig, MemoryModel};
use stardust::core::pipeline::TensorData;
use stardust::datasets::{random_matrix, random_tensor3, random_vector};
use stardust::kernels;
use stardust::tensor::Format;

fn spmv_run() -> (stardust::kernels::Kernel, HashMap<String, TensorData>) {
    let n = 48;
    let k = kernels::spmv(n);
    let mut inputs = HashMap::new();
    inputs.insert(
        "A".into(),
        TensorData::from_coo(&random_matrix(n, n, 0.15, 3), Format::csr()),
    );
    inputs.insert(
        "x".into(),
        TensorData::from_coo(&random_vector(n, 4), Format::dense_vec()),
    );
    (k, inputs)
}

#[test]
fn memory_systems_are_ordered() {
    let (k, inputs) = spmv_run();
    let result = k.run(&inputs).unwrap();
    let stage = &result.stages[0];
    let t = |m: MemoryModel| {
        simulate(
            stage.compiled.spatial(),
            &stage.stats,
            &CapstanConfig::with_memory(m),
        )
        .seconds
    };
    let (ideal, hbm, ddr) = (
        t(MemoryModel::Ideal),
        t(MemoryModel::Hbm2e),
        t(MemoryModel::Ddr4),
    );
    assert!(ideal <= hbm, "ideal {ideal} vs hbm {hbm}");
    assert!(hbm < ddr, "hbm {hbm} vs ddr {ddr}");
}

#[test]
fn every_kernel_fits_the_chip() {
    let cfg = CapstanConfig::default();
    let n = 24;
    let t3 = 10;
    for kernel in kernels::suite(n, t3, 4) {
        let mut inputs = HashMap::new();
        match kernel.name.as_str() {
            "SpMV" | "Residual" => {
                inputs.insert(
                    "A".into(),
                    TensorData::from_coo(&random_matrix(n, n, 0.2, 1), Format::csr()),
                );
                inputs.insert(
                    "x".into(),
                    TensorData::from_coo(&random_vector(n, 2), Format::dense_vec()),
                );
                inputs.insert(
                    "b".into(),
                    TensorData::from_coo(&random_vector(n, 3), Format::dense_vec()),
                );
            }
            "MatTransMul" => {
                inputs.insert(
                    "A".into(),
                    TensorData::from_coo(&random_matrix(n, n, 0.2, 1), Format::csc()),
                );
                inputs.insert(
                    "x".into(),
                    TensorData::from_coo(&random_vector(n, 2), Format::dense_vec()),
                );
                inputs.insert(
                    "z".into(),
                    TensorData::from_coo(&random_vector(n, 3), Format::dense_vec()),
                );
                inputs.insert("alpha".into(), TensorData::Scalar(2.0));
                inputs.insert("beta".into(), TensorData::Scalar(0.5));
            }
            "Plus3" => {
                for (t, s) in [("B", 4), ("C", 5), ("D", 6)] {
                    inputs.insert(
                        t.into(),
                        TensorData::from_coo(&random_matrix(n, n, 0.1, s), Format::csr()),
                    );
                }
            }
            "SDDMM" => {
                inputs.insert(
                    "B".into(),
                    TensorData::from_coo(&random_matrix(n, n, 0.2, 1), Format::csr()),
                );
                inputs.insert(
                    "C".into(),
                    TensorData::from_coo(&random_matrix(n, 4, 1.0, 2), Format::dense(2)),
                );
                inputs.insert(
                    "D".into(),
                    TensorData::from_coo(&random_matrix(4, n, 1.0, 3), Format::dense_col_major()),
                );
            }
            "TTV" => {
                inputs.insert(
                    "B".into(),
                    TensorData::from_coo(&random_tensor3(t3, t3, t3, 0.1, 1), Format::csf(3)),
                );
                inputs.insert(
                    "c".into(),
                    TensorData::from_coo(&random_vector(t3, 2), Format::dense_vec()),
                );
            }
            "TTM" => {
                inputs.insert(
                    "B".into(),
                    TensorData::from_coo(&random_tensor3(t3, t3, t3, 0.1, 1), Format::csf(3)),
                );
                inputs.insert(
                    "C".into(),
                    TensorData::from_coo(&random_matrix(4, t3, 1.0, 2), Format::dense(2)),
                );
            }
            "MTTKRP" => {
                inputs.insert(
                    "B".into(),
                    TensorData::from_coo(&random_tensor3(t3, t3, t3, 0.1, 1), Format::csf(3)),
                );
                inputs.insert(
                    "C".into(),
                    TensorData::from_coo(&random_matrix(4, t3, 1.0, 2), Format::dense_col_major()),
                );
                inputs.insert(
                    "D".into(),
                    TensorData::from_coo(&random_matrix(4, t3, 1.0, 3), Format::dense_col_major()),
                );
            }
            "InnerProd" | "Plus2" => {
                inputs.insert(
                    "B".into(),
                    TensorData::from_coo(&random_tensor3(t3, t3, t3, 0.15, 1), Format::ucc()),
                );
                inputs.insert(
                    "C".into(),
                    TensorData::from_coo(&random_tensor3(t3, t3, t3, 0.15, 2), Format::ucc()),
                );
            }
            other => panic!("unhandled kernel {other}"),
        }
        let compiled = kernel
            .compile(&inputs)
            .unwrap_or_else(|e| panic!("{} compile: {e}", kernel.name));
        for stage in &compiled {
            let r = place(stage.spatial(), &cfg);
            assert!(
                r.fits(),
                "{} does not fit: {} PCUs {} PMUs {} MCs {} shufs",
                kernel.name,
                r.pcus,
                r.pmus,
                r.mcs,
                r.shuffles
            );
        }
    }
}

#[test]
fn gather_kernels_claim_all_shuffles() {
    let cfg = CapstanConfig::default();
    let (k, inputs) = spmv_run();
    let compiled = k.compile(&inputs).unwrap();
    let r = place(compiled[0].spatial(), &cfg);
    assert_eq!(r.shuffles, 16, "SpMV gathers x through 16 shuffle networks");
    assert_eq!(r.limiting(), "Shuffle");
}

#[test]
fn ddr4_shifts_bottleneck_to_dram() {
    let (k, inputs) = spmv_run();
    let result = k.run(&inputs).unwrap();
    let stage = &result.stages[0];
    let ddr = simulate(
        stage.compiled.spatial(),
        &stage.stats,
        &CapstanConfig::with_memory(MemoryModel::Ddr4),
    );
    assert_eq!(ddr.bottleneck, "dram");
}

#[test]
fn ideal_memory_still_costs_compute() {
    let (k, inputs) = spmv_run();
    let result = k.run(&inputs).unwrap();
    let stage = &result.stages[0];
    let ideal = simulate(
        stage.compiled.spatial(),
        &stage.stats,
        &CapstanConfig::with_memory(MemoryModel::Ideal),
    );
    assert!(ideal.cycles > 0.0);
    assert_eq!(ideal.dram_cycles, 0.0);
}
