//! End-to-end correctness: every Table 3 kernel is compiled to Spatial,
//! executed by the Spatial interpreter against real sparse data, and the
//! result is compared with the dense CIN-oracle evaluation of the *same
//! scheduled statement* (and, transitively, of the unscheduled expression,
//! since scheduling is semantics-preserving by its own tests).

use std::collections::HashMap;

use stardust::core::pipeline::{KernelOutput, TensorData};
use stardust::datasets::{random_matrix, random_tensor3, random_vector};
use stardust::ir::{eval, EvalContext};
use stardust::kernels::{self, Kernel};
use stardust::tensor::{CooTensor, DenseTensor, Format};

/// Runs a kernel's stages through the oracle evaluator.
fn oracle(kernel: &Kernel, inputs: &HashMap<String, TensorData>) -> EvalContext {
    let mut ctx = EvalContext::new();
    for (name, data) in inputs {
        match data {
            TensorData::Scalar(v) => ctx.add_scalar(name.clone(), *v),
            TensorData::Sparse(t) => ctx.add_tensor(name.clone(), t.to_dense()),
        }
    }
    for stage in &kernel.stages {
        let out = stage.program.output();
        let decl = stage.program.decl(out).expect("output declared");
        if decl.is_scalar() {
            ctx.add_scalar(out.to_string(), 0.0);
        } else {
            ctx.add_tensor(out.to_string(), DenseTensor::zeros(decl.dims.clone()));
        }
        eval(&stage.stmt, &mut ctx).expect("oracle evaluates");
    }
    ctx
}

fn check(kernel: &Kernel, inputs: HashMap<String, TensorData>) {
    let want_ctx = oracle(kernel, &inputs);
    let result = kernel.run(&inputs).unwrap_or_else(|e| {
        panic!("{} failed to compile/run: {e}", kernel.name);
    });
    let out_name = kernel.output();
    match &result.output {
        KernelOutput::Scalar(got) => {
            let want = want_ctx.scalar(out_name).expect("oracle scalar");
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "{}: scalar mismatch {got} vs {want}",
                kernel.name
            );
        }
        KernelOutput::Tensor(t) => {
            let got = t.to_dense();
            let want = want_ctx.tensor(out_name).expect("oracle tensor");
            if let Err(at) = got.approx_eq(want) {
                panic!(
                    "{}: mismatch at {at:?}: got {} want {}",
                    kernel.name,
                    got.get(&at),
                    want.get(&at)
                );
            }
        }
    }
}

fn csr(coo: &CooTensor<f64>) -> TensorData {
    TensorData::from_coo(coo, Format::csr())
}

fn dense_vec(coo: &CooTensor<f64>) -> TensorData {
    TensorData::from_coo(coo, Format::dense_vec())
}

#[test]
fn spmv_matches_oracle() {
    let k = kernels::spmv(24);
    let mut inputs = HashMap::new();
    inputs.insert("A".into(), csr(&random_matrix(24, 24, 0.2, 11)));
    inputs.insert("x".into(), dense_vec(&random_vector(24, 12)));
    check(&k, inputs);
}

#[test]
fn spmv_empty_rows() {
    // Rows with no nonzeros must produce zeros, not garbage.
    let k = kernels::spmv(16);
    let mut a = CooTensor::new(vec![16, 16]);
    a.push(&[3, 5], 2.0);
    a.push(&[12, 0], -1.5);
    let mut inputs = HashMap::new();
    inputs.insert("A".into(), csr(&a));
    inputs.insert("x".into(), dense_vec(&random_vector(16, 5)));
    check(&k, inputs);
}

#[test]
fn plus3_matches_oracle() {
    let k = kernels::plus3(20);
    let mut inputs = HashMap::new();
    inputs.insert("B".into(), csr(&random_matrix(20, 20, 0.15, 21)));
    inputs.insert("C".into(), csr(&random_matrix(20, 20, 0.15, 22)));
    inputs.insert("D".into(), csr(&random_matrix(20, 20, 0.15, 23)));
    check(&k, inputs);
}

#[test]
fn sddmm_matches_oracle() {
    let k = kernels::sddmm(16, 8);
    let mut inputs = HashMap::new();
    inputs.insert("B".into(), csr(&random_matrix(16, 16, 0.25, 31)));
    inputs.insert(
        "C".into(),
        TensorData::from_coo(&random_matrix(16, 8, 1.0, 32), Format::dense(2)),
    );
    inputs.insert(
        "D".into(),
        TensorData::from_coo(&random_matrix(8, 16, 1.0, 33), Format::dense_col_major()),
    );
    check(&k, inputs);
}

#[test]
fn mattransmul_matches_oracle() {
    let k = kernels::mattransmul(18);
    let mut inputs = HashMap::new();
    inputs.insert(
        "A".into(),
        TensorData::from_coo(&random_matrix(18, 18, 0.2, 41), Format::csc()),
    );
    inputs.insert("x".into(), dense_vec(&random_vector(18, 42)));
    inputs.insert("z".into(), dense_vec(&random_vector(18, 43)));
    inputs.insert("alpha".into(), TensorData::Scalar(1.5));
    inputs.insert("beta".into(), TensorData::Scalar(-0.5));
    check(&k, inputs);
}

#[test]
fn residual_matches_oracle() {
    let k = kernels::residual(18);
    let mut inputs = HashMap::new();
    inputs.insert("A".into(), csr(&random_matrix(18, 18, 0.2, 51)));
    inputs.insert("x".into(), dense_vec(&random_vector(18, 52)));
    inputs.insert("b".into(), dense_vec(&random_vector(18, 53)));
    check(&k, inputs);
}

#[test]
fn ttv_matches_oracle() {
    let k = kernels::ttv(8, 10, 12);
    let mut inputs = HashMap::new();
    inputs.insert(
        "B".into(),
        TensorData::from_coo(&random_tensor3(8, 10, 12, 0.1, 61), Format::csf(3)),
    );
    inputs.insert("c".into(), dense_vec(&random_vector(12, 62)));
    check(&k, inputs);
}

#[test]
fn ttm_matches_oracle() {
    let k = kernels::ttm(6, 8, 10, 4);
    let mut inputs = HashMap::new();
    inputs.insert(
        "B".into(),
        TensorData::from_coo(&random_tensor3(6, 8, 10, 0.12, 71), Format::csf(3)),
    );
    inputs.insert(
        "C".into(),
        TensorData::from_coo(&random_matrix(4, 10, 1.0, 72), Format::dense(2)),
    );
    check(&k, inputs);
}

#[test]
fn mttkrp_matches_oracle() {
    let k = kernels::mttkrp(6, 8, 10, 4);
    let mut inputs = HashMap::new();
    inputs.insert(
        "B".into(),
        TensorData::from_coo(&random_tensor3(6, 8, 10, 0.12, 81), Format::csf(3)),
    );
    inputs.insert(
        "C".into(),
        TensorData::from_coo(&random_matrix(4, 8, 1.0, 82), Format::dense_col_major()),
    );
    inputs.insert(
        "D".into(),
        TensorData::from_coo(&random_matrix(4, 10, 1.0, 83), Format::dense_col_major()),
    );
    check(&k, inputs);
}

#[test]
fn innerprod_matches_oracle() {
    let k = kernels::innerprod(8, 10, 12);
    let mut inputs = HashMap::new();
    inputs.insert(
        "B".into(),
        TensorData::from_coo(&random_tensor3(8, 10, 12, 0.15, 91), Format::ucc()),
    );
    inputs.insert(
        "C".into(),
        TensorData::from_coo(&random_tensor3(8, 10, 12, 0.15, 92), Format::ucc()),
    );
    check(&k, inputs);
}

#[test]
fn plus2_matches_oracle() {
    let k = kernels::plus2(6, 8, 10);
    let mut inputs = HashMap::new();
    inputs.insert(
        "B".into(),
        TensorData::from_coo(&random_tensor3(6, 8, 10, 0.15, 101), Format::ucc()),
    );
    inputs.insert(
        "C".into(),
        TensorData::from_coo(&random_tensor3(6, 8, 10, 0.15, 102), Format::ucc()),
    );
    check(&k, inputs);
}
