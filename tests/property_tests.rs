//! Property-based tests for the core invariants of the workspace:
//! format packing roundtrips, scan set-semantics, scheduling
//! semantics-preservation, end-to-end compile/execute correctness on
//! random data, and simulator monotonicity.

use std::collections::HashMap;

use proptest::prelude::*;

use stardust::capstan::{simulate, CapstanConfig, MemoryModel};
use stardust::core::pipeline::{KernelOutput, TensorData};
use stardust::core::{ProgramBuilder, Scheduler};
use stardust::ir::{eval, EvalContext};
use stardust::kernels;
use stardust::tensor::{CooTensor, DenseTensor, Format, LevelFormat, SparseTensor};

/// Arbitrary small sparse matrix as (rows, cols, entries).
fn arb_matrix() -> impl Strategy<Value = CooTensor<f64>> {
    (2usize..10, 2usize..10)
        .prop_flat_map(|(r, c)| {
            let entry = (0..r, 0..c, -4i32..=4);
            (Just((r, c)), proptest::collection::vec(entry, 0..30))
        })
        .prop_map(|((r, c), entries)| {
            let mut coo = CooTensor::new(vec![r, c]);
            for (i, j, v) in entries {
                if v != 0 {
                    coo.push(&[i, j], f64::from(v));
                }
            }
            coo.canonicalize();
            coo
        })
}

fn arb_format() -> impl Strategy<Value = Format> {
    prop_oneof![
        Just(Format::csr()),
        Just(Format::csc()),
        Just(Format::dense(2)),
        Just(Format::new(vec![
            LevelFormat::Compressed,
            LevelFormat::Compressed
        ])),
        Just(Format::new(vec![
            LevelFormat::Compressed,
            LevelFormat::Dense
        ])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packing a COO tensor into any format and converting back preserves
    /// the nonzero set exactly.
    #[test]
    fn format_roundtrip(coo in arb_matrix(), fmt in arb_format()) {
        let t = SparseTensor::from_coo(&coo, fmt);
        t.validate().unwrap();
        let mut back = t.to_coo();
        back.canonicalize();
        let mut orig = coo.clone();
        orig.canonicalize();
        prop_assert_eq!(back, orig);
    }

    /// `locate` agrees with dense conversion on every coordinate.
    #[test]
    fn locate_matches_dense(coo in arb_matrix(), fmt in arb_format()) {
        let t = SparseTensor::from_coo(&coo, fmt);
        let d = DenseTensor::from(&coo);
        let dims = t.dims().to_vec();
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                prop_assert_eq!(t.get(&[i, j]), d.get(&[i, j]));
            }
        }
    }

    /// The compiled SpMV kernel equals the dense oracle on random
    /// matrices (including empty rows/columns).
    #[test]
    fn compiled_spmv_matches_oracle(coo in arb_matrix()) {
        let n = coo.dims()[0].max(coo.dims()[1]);
        // Make it square for the kernel.
        let mut sq = CooTensor::new(vec![n, n]);
        for (c, v) in coo.entries() {
            sq.push(c, *v);
        }
        sq.canonicalize();
        let kernel = kernels::spmv(n);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), TensorData::from_coo(&sq, Format::csr()));
        let mut x = CooTensor::new(vec![n]);
        for i in 0..n {
            x.push(&[i], (i % 5) as f64 - 1.0);
        }
        inputs.insert(
            "x".to_string(),
            TensorData::from_coo(&x, Format::dense_vec()),
        );
        let run = kernel.run(&inputs).unwrap();
        let got = match run.output {
            KernelOutput::Tensor(ref t) => t.to_dense(),
            KernelOutput::Scalar(_) => unreachable!(),
        };
        // Oracle.
        let a = DenseTensor::from(&sq);
        let xv = DenseTensor::from(&x);
        let mut want = DenseTensor::zeros(vec![n]);
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a.get(&[i, j]) * xv.get(&[j]);
            }
            want.set(&[i], acc);
        }
        prop_assert!(got.approx_eq(&want).is_ok());
    }

    /// Compiled two-input union (one Plus3 stage) equals the dense sum on
    /// random matrices — exercising bit vectors, scans, and the two-pass
    /// union output.
    #[test]
    fn compiled_union_matches_oracle(b in arb_matrix(), c in arb_matrix()) {
        let r = b.dims()[0].max(c.dims()[0]);
        let n = b.dims()[1].max(c.dims()[1]).max(r);
        let embed = |src: &CooTensor<f64>| {
            let mut out = CooTensor::new(vec![n, n]);
            for (coords, v) in src.entries() {
                out.push(coords, *v);
            }
            out.canonicalize();
            out
        };
        let b = embed(&b);
        let c = embed(&c);
        // A = B + C, one union stage. Reuse the Plus3 machinery with D=0…
        // instead build the stage directly through the suite: D empty.
        let d = CooTensor::new(vec![n, n]);
        let kernel = kernels::plus3(n);
        let mut inputs = HashMap::new();
        inputs.insert("B".to_string(), TensorData::from_coo(&b, Format::csr()));
        inputs.insert("C".to_string(), TensorData::from_coo(&c, Format::csr()));
        inputs.insert("D".to_string(), TensorData::from_coo(&d, Format::csr()));
        let run = kernel.run(&inputs).unwrap();
        let got = match run.output {
            KernelOutput::Tensor(ref t) => t.to_dense(),
            KernelOutput::Scalar(_) => unreachable!(),
        };
        let bd = DenseTensor::from(&b);
        let cd = DenseTensor::from(&c);
        let mut want = DenseTensor::zeros(vec![n, n]);
        for i in 0..n {
            for j in 0..n {
                want.set(&[i, j], bd.get(&[i, j]) + cd.get(&[i, j]));
            }
        }
        prop_assert!(got.approx_eq(&want).is_ok());
    }

    /// split/fuse/reorder schedules preserve SpMV semantics under the
    /// oracle, for arbitrary split factors.
    #[test]
    fn schedules_preserve_semantics(factor in 1usize..6, which in 0usize..3) {
        let n = 7;
        let mut p = ProgramBuilder::new("spmv")
            .tensor("A", vec![n, n], Format::csr())
            .tensor("x", vec![n], Format::dense_vec())
            .tensor("y", vec![n], Format::dense_vec())
            .expr("y(i) = A(i,j) * x(j)")
            .build()
            .unwrap();
        let reference = {
            let s = Scheduler::new(&mut p);
            run_oracle(s.stmt(), n)
        };
        let mut p2 = p.clone();
        let mut s = Scheduler::new(&mut p2);
        match which {
            0 => s.split_up("i", "io", "ii", factor).unwrap(),
            1 => s.split_down("j", "jo", "ji", factor).unwrap(),
            _ => s.reorder(&["j", "i"]).unwrap(),
        }
        let got = run_oracle(s.stmt(), n);
        prop_assert_eq!(got, reference);
    }

    /// More memory bandwidth never slows a kernel down (Fig. 12's
    /// monotonicity).
    #[test]
    fn bandwidth_monotone(nnz_seed in 1u64..100) {
        let n = 24;
        let a = stardust::datasets::random_matrix(n, n, 0.2, nnz_seed);
        let kernel = kernels::spmv(n);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), TensorData::from_coo(&a, Format::csr()));
        inputs.insert(
            "x".to_string(),
            TensorData::from_coo(&stardust::datasets::random_vector(n, 3), Format::dense_vec()),
        );
        let run = kernel.run(&inputs).unwrap();
        let mut last = f64::INFINITY;
        for gbps in [20.0, 100.0, 500.0, 2000.0] {
            let cfg = CapstanConfig::with_memory(MemoryModel::Custom { gbps });
            let t: f64 = run
                .stages
                .iter()
                .map(|s| simulate(s.compiled.spatial(), &s.stats, &cfg).seconds)
                .sum();
            prop_assert!(t <= last * 1.000001);
            last = t;
        }
    }
}

fn run_oracle(stmt: &stardust::ir::Stmt, n: usize) -> Vec<f64> {
    let mut ctx = EvalContext::new();
    let a: Vec<f64> = (0..n * n).map(|v| (v % 7) as f64 - 2.0).collect();
    ctx.add_tensor("A", DenseTensor::from_data(vec![n, n], a));
    let x: Vec<f64> = (0..n).map(|v| v as f64 * 0.25 + 1.0).collect();
    ctx.add_tensor("x", DenseTensor::from_data(vec![n], x));
    ctx.add_tensor("y", DenseTensor::zeros(vec![n]));
    eval(stmt, &mut ctx).unwrap();
    ctx.tensor("y").unwrap().data().to_vec()
}
