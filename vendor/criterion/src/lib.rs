//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses.
//!
//! The build container has no access to crates.io, so this vendored shim
//! implements the benchmark-facing API (`Criterion`, `BenchmarkGroup`,
//! `Bencher`, `BenchmarkId`, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros) with a simple but honest wall-clock
//! measurement loop: per benchmark it warms up, auto-scales the iteration
//! count to a target sample time, collects `sample_size` samples, and
//! reports mean / min / max plus throughput when configured.
//!
//! Command line: a positional argument filters benchmarks by substring
//! (as `cargo bench -- <filter>` does); `--quick` (or the
//! `CRITERION_QUICK=1` environment variable) cuts warmup and sample
//! counts for CI smoke runs. Other flags criterion accepts are ignored.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                // Flags cargo/criterion pass that take a value.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, quick }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with an explicit name and parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<&&str> for BenchmarkId {
    fn from(s: &&str) -> Self {
        BenchmarkId {
            name: (*s).to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Configures per-iteration throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks one function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.name.clone()
        } else {
            format!("{}/{}", self.name, id.name)
        };
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size, self.criterion.quick);
        f(&mut bencher);
        bencher.report(&full, self.throughput);
        self
    }

    /// Benchmarks one function against an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// How setup output is batched in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: batch many iterations.
    SmallInput,
    /// Large per-iteration state: small batches.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collected timing for one benchmark.
struct Samples {
    /// Per-iteration mean duration of each sample.
    per_iter: Vec<f64>,
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    quick: bool,
    samples: Option<Samples>,
}

impl Bencher {
    fn new(sample_size: usize, quick: bool) -> Self {
        Bencher {
            sample_size: if quick {
                sample_size.min(10)
            } else {
                sample_size
            },
            quick,
            samples: None,
        }
    }

    fn target_sample_time(&self) -> Duration {
        if self.quick {
            Duration::from_millis(20)
        } else {
            Duration::from_millis(100)
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that fills the
        // target sample time.
        let mut iters = 1u64;
        let target = self.target_sample_time();
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target / 2 || iters >= 1 << 24 {
                let scale = target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                iters = ((iters as f64 * scale).ceil() as u64).max(1);
                break;
            }
            iters *= 2;
        }
        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        self.samples = Some(Samples { per_iter });
    }

    /// Times `routine` over fresh state from `setup`, excluding setup time.
    pub fn iter_batched<S, O, Setup, R>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        // One setup per timed iteration; setup time is excluded by timing
        // each routine call individually.
        let warmups = if self.quick { 1 } else { 2 };
        for _ in 0..warmups {
            black_box(routine(setup()));
        }
        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let state = setup();
            let start = Instant::now();
            black_box(routine(state));
            per_iter.push(start.elapsed().as_secs_f64());
        }
        self.samples = Some(Samples { per_iter });
    }

    /// Like [`Bencher::iter_batched`], passing the state by reference.
    pub fn iter_batched_ref<S, O, Setup, R>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        R: FnMut(&mut S) -> O,
    {
        let warmups = if self.quick { 1 } else { 2 };
        for _ in 0..warmups {
            let mut state = setup();
            black_box(routine(&mut state));
        }
        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut state = setup();
            let start = Instant::now();
            black_box(routine(&mut state));
            per_iter.push(start.elapsed().as_secs_f64());
        }
        self.samples = Some(Samples { per_iter });
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let Some(samples) = &self.samples else {
            println!("{name:<40} (no measurement)");
            return;
        };
        let n = samples.per_iter.len() as f64;
        let mean = samples.per_iter.iter().sum::<f64>() / n;
        let min = samples
            .per_iter
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = samples.per_iter.iter().copied().fold(0.0f64, f64::max);
        let mut line = format!(
            "{name:<40} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        if let Some(tp) = throughput {
            let (count, unit) = match tp {
                Throughput::Elements(e) => (e as f64, "elem/s"),
                Throughput::Bytes(b) => (b as f64, "B/s"),
            };
            line.push_str(&format!(" thrpt: {} {unit}", fmt_rate(count / mean)));
        }
        println!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples() {
        let mut b = Bencher::new(3, true);
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            counter
        });
        assert!(b.samples.is_some());
        assert!(counter > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(4, true);
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        // warmup (1) + samples (4)
        assert_eq!(setups, 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("spmv", 100).name, "spmv/100");
        assert_eq!(BenchmarkId::from_parameter(42).name, "42");
    }
}
