//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build container has no access to crates.io, so this vendored shim
//! provides the exact API surface the dataset generators rely on:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`], and
//! [`Rng::gen_range`] over the common integer and float ranges. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! well distributed, and fast; streams differ from upstream `rand`, but
//! every consumer in this workspace only depends on seeded determinism
//! and uniformity, not on upstream's exact byte streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generator sources.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution support: types samplable from a generator.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range(rng: &mut rngs::StdRng, range: &SampleRangeBounds<Self>) -> Self;
}

/// Lower/upper bounds captured from a `Range`/`RangeInclusive`.
#[derive(Debug, Clone, Copy)]
pub struct SampleRangeBounds<T> {
    low: T,
    high: T,
    inclusive: bool,
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Converts to explicit bounds.
    fn bounds(self) -> SampleRangeBounds<T>;
}

impl<T: Copy> SampleRange<T> for Range<T> {
    fn bounds(self) -> SampleRangeBounds<T> {
        SampleRangeBounds {
            low: self.start,
            high: self.end,
            inclusive: false,
        }
    }
}

impl<T: Copy> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> SampleRangeBounds<T> {
        SampleRangeBounds {
            low: *self.start(),
            high: *self.end(),
            inclusive: true,
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut rngs::StdRng, range: &SampleRangeBounds<Self>) -> Self {
                let (low, high) = (range.low as i128, range.high as i128);
                let span = if range.inclusive {
                    high - low + 1
                } else {
                    high - low
                };
                assert!(span > 0, "cannot sample from empty range");
                // Multiply-shift rejection-free bounded sampling is overkill
                // here; modulo bias is negligible for the small spans the
                // dataset generators draw.
                (low + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut rngs::StdRng, range: &SampleRangeBounds<Self>) -> Self {
        let unit = rng.next_f64();
        range.low + unit * (range.high - range.low)
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut rngs::StdRng, range: &SampleRangeBounds<Self>) -> Self {
        let unit = rng.next_f64() as f32;
        range.low + unit * (range.high - range.low)
    }
}

/// Values producible by a plain `gen()` call.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for the type.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Random value generation methods, mirrored from `rand::Rng`.
pub trait Rng {
    /// Draws one value from the type's standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T;

    /// Draws one value uniformly from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{Rng, SampleRange, SampleUniform, SeedableRng, Standard};

    /// The standard seeded generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        pub(crate) fn next_f64(&mut self) -> f64 {
            // 53 random mantissa bits → uniform in [0, 1).
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn gen<T: Standard>(&mut self) -> T {
            T::sample(self)
        }

        fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
            let bounds = range.bounds();
            T::sample_range(self, &bounds)
        }

        fn gen_bool(&mut self, p: f64) -> bool {
            self.next_f64() < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(0.25..1.25);
            assert!((0.25..1.25).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
