//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build container has no access to crates.io, so this vendored shim
//! implements the combinator surface the property tests rely on:
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! range and tuple strategies, [`strategy::Just`], `prop_oneof!`,
//! [`collection::vec`], the `proptest!` macro, and `prop_assert!` /
//! `prop_assert_eq!`. Failing cases are reported through a panic with the
//! case number and seed; shrinking is not implemented (the seed makes
//! failures reproducible).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG and per-test configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count actually run: the `PROPTEST_CASES`
        /// environment variable overrides the configured value when
        /// set (matching the real proptest crate), so CI can demand
        /// deeper sweeps than local runs without code changes.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64: small, fast, deterministic.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the test name (and the `PROPTEST_SEED`
        /// environment variable, when set).
        pub fn for_test(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(v) = s.parse::<u64>() {
                    seed ^= v;
                }
            }
            TestRng { state: seed }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below zero");
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    trait ObjectStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ObjectStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn ObjectStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// Uniform choice among equally weighted strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given options.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.options.len() as u64) as usize;
            self.options[ix].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    (*self.start() as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, G)
    );

    /// Strategy for values with a canonical arbitrary form.
    pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// See [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a full-domain arbitrary generator.
    pub trait ArbitraryValue {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each function runs its body over generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = config.resolved_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..cases {
                let result = {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    std::panic::AssertUnwindSafe(move || $body)
                };
                if let Err(payload) = std::panic::catch_unwind(result) {
                    eprintln!(
                        "proptest {}: failed at case {case}/{cases} \
                         (set PROPTEST_SEED to vary inputs)",
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 2usize..10, b in -4i32..=4, f in 0.5..2.5) {
            prop_assert!((2..10).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!((0.5..2.5).contains(&f));
        }

        #[test]
        fn flat_map_dependent(v in (2usize..6).prop_flat_map(|n| {
            (Just(n), collection::vec(0..n, 0..8))
        })) {
            let (n, items) = v;
            prop_assert!(items.iter().all(|&i| i < n));
        }

        #[test]
        fn oneof_selects_arms(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }
}
