//! A pool of reusable [`Machine`]s for serving loops and sweep
//! executors.
//!
//! Fresh-machine construction is allocator-bound: [`Machine`] state is a
//! handful of multi-MB flat arenas (DRAM output segment, on-chip word
//! and bitset arenas), so a sweep that binds a fresh machine per
//! measurement spends its fixed cost in `malloc`, not in binding. A
//! [`MachinePool`] keeps finished machines keyed by their compiled
//! program, scrubs them at check-in (execution state cleared, input
//! segment unbound so no idle machine pins its last dataset's
//! [`DramImage`] words), and hands them back out at O(outputs) or less
//! — the checked-out machine is indistinguishable from a fresh
//! [`Machine::from_compiled`], which `crates/spatial/tests/pool.rs`
//! property-tests across engines.
//!
//! The pool is sharded: every OS thread is assigned a home shard (a
//! process-wide dense thread index modulo the shard count), check-out
//! and check-in touch the home shard's lock first, and other shards are
//! only visited with non-blocking `try_lock` steals when the home shard
//! has nothing to offer. A [`MachinePool::new`] pool sizes its shard
//! vector from the threads actually observed touching it — growing in
//! powers of two up to [`MAX_SHARDS`] — rather than from
//! `available_parallelism`, so sweeps running more workers than cores
//! still give every worker a private shard instead of colliding on the
//! steal path. Growth preserves existing home assignments: a thread
//! with dense index `i` homes at shard `i` whenever `i` is below the
//! shard count, and power-of-two growth only ever raises that count.
//! In steady state a sweep worker never contends on a lock: it reuses
//! the machine it checked in on its previous iteration.
//!
//! **Fault isolation:** a machine whose last run aborted for any reason
//! — a structured [`RunError`], a budget exhaustion, or a panic that
//! unwound through the guard — is *poisoned*
//! ([`Machine::poisoned`]) and is quarantined at check-in: dropped on
//! the floor and tallied in [`PoolStats::quarantined`], never recycled.
//! The next checkout simply constructs a fresh machine, so one fault
//! can never leak partial execution state into a later measurement.
//!
//! Lifecycle:
//!
//! 1. **checkout** — [`MachinePool::checkout`] (or
//!    [`MachinePool::checkout_bound`], which follows with
//!    [`Machine::bind_image`]) pops an idle machine for the program, or
//!    constructs one on demand; the pool grows to the concurrency
//!    actually used, O(threads × distinct programs).
//! 2. **use** — the returned [`PooledMachine`] guard derefs to
//!    [`Machine`]; run it like any other machine.
//! 3. **check-in** — dropping the guard scrubs the machine (execution
//!    state cleared, inputs unbound; arenas kept) and parks it on the
//!    dropping thread's home shard. Machines that were re-linked to a
//!    different program while checked out are discarded instead: their
//!    slot space no longer matches the pool key's layout invariants.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

use crate::bytecode::CompiledProgram;
use crate::interp::{DramImage, Machine, RunError};

/// Idle machines kept per (shard, program) free list. A sweep at `t`
/// threads parks at most `t` machines per program, so this only bounds
/// pathological churn (e.g. thousands of guards dropped on one thread).
const MAX_IDLE_PER_KEY: usize = 32;

/// Hard ceiling on observed-thread shard growth: beyond this many live
/// threads, workers share shards (modulo) rather than growing further.
pub const MAX_SHARDS: usize = 256;

/// Process-wide dense thread index, assigned on a thread's first pool
/// interaction. Indexing shards by thread (not by a hash of anything
/// per-checkout) is what gives each sweep worker a private fast path.
static THREAD_COUNTER: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_INDEX: usize = THREAD_COUNTER.fetch_add(1, Ordering::Relaxed);
}

/// Idle machines, keyed by compiled-program identity (`Arc` address;
/// every pooled machine holds the `Arc`, keeping the address stable).
type Shard = HashMap<usize, Vec<Machine>>;

/// Cumulative pool counters (monotonic; never reset by [`MachinePool::clear`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Machines constructed because no idle one was available.
    pub created: u64,
    /// Checkouts served by resetting an idle machine.
    pub reused: u64,
    /// Machines discarded at check-in because their last run aborted
    /// (error or panic) — see [`Machine::poisoned`].
    pub quarantined: u64,
}

/// An instantaneous occupancy snapshot of a [`MachinePool`]: how many
/// machines are live in guards right now, how many sit idle on shards,
/// and the cumulative [`PoolStats`] alongside. This is the pool-side
/// half of a serving layer's metrics — `checked_out / (checked_out +
/// idle)` is the pool utilization a load test watches.
///
/// The fields are read from independent atomics/locks, so a snapshot
/// taken under concurrent traffic is approximate (each field is exact
/// at *some* instant, but not all at the same one) — fine for metrics,
/// not a synchronization primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolOccupancy {
    /// Machines currently held by live [`PooledMachine`] guards.
    pub checked_out: u64,
    /// Idle machines parked across all shards.
    pub idle: usize,
    /// Current shard count.
    pub shards: usize,
    /// Cumulative created/reused/quarantined counters.
    pub stats: PoolStats,
}

/// A grow-on-demand pool of reusable [`Machine`]s. See the module docs
/// for the sharding and lifecycle story. Shareable across threads by
/// reference (`std::thread::scope`) or behind an `Arc`/`OnceLock`.
#[derive(Debug)]
pub struct MachinePool {
    /// Shard vector behind a `RwLock` so [`MachinePool::new`] pools can
    /// grow it to the observed thread count; steady-state traffic only
    /// ever takes the (uncontended) read side.
    shards: RwLock<Vec<Mutex<Shard>>>,
    /// `true` for [`MachinePool::with_shards`] pools: the shard count
    /// is pinned and never grows.
    fixed: bool,
    created: AtomicU64,
    reused: AtomicU64,
    quarantined: AtomicU64,
    /// Machines currently out in live [`PooledMachine`] guards
    /// (decremented on check-in *and* on [`PooledMachine::detach`] —
    /// a detached machine has left the pool's custody either way).
    checked_out: AtomicU64,
}

impl MachinePool {
    /// A pool that sizes its shards from the threads actually observed
    /// using it: each new worker thread grows the shard vector (in
    /// powers of two, capped at [`MAX_SHARDS`]) until every live
    /// worker has a private home shard — even when the sweep runs more
    /// threads than `available_parallelism` reports cores.
    pub fn new() -> Self {
        MachinePool {
            shards: RwLock::new(vec![Mutex::new(Shard::new())]),
            fixed: false,
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            checked_out: AtomicU64::new(0),
        }
    }

    /// A pool with an explicit, fixed shard count (min 1). One shard is
    /// a plain mutex-guarded pool — useful in tests that need
    /// deterministic reuse.
    pub fn with_shards(shards: usize) -> Self {
        MachinePool {
            shards: RwLock::new(
                (0..shards.max(1))
                    .map(|_| Mutex::new(Shard::new()))
                    .collect(),
            ),
            fixed: true,
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            checked_out: AtomicU64::new(0),
        }
    }

    /// Read access to the shard vector, first growing it (for
    /// non-fixed pools) so the calling thread's dense index fits —
    /// power-of-two growth, so threads already below the old count
    /// keep their home shard (`i % len == i` stays true for them).
    /// Lock poisoning is survived by recovering the guard: a panic
    /// elsewhere never takes the pool down with it.
    fn shards(&self) -> RwLockReadGuard<'_, Vec<Mutex<Shard>>> {
        let idx = THREAD_INDEX.with(|i| *i);
        if !self.fixed {
            let want = (idx + 1).next_power_of_two().min(MAX_SHARDS);
            let cur = self.shards.read().unwrap_or_else(|e| e.into_inner()).len();
            if cur < want {
                let mut shards = self.shards.write().unwrap_or_else(|e| e.into_inner());
                while shards.len() < want {
                    shards.push(Mutex::new(Shard::new()));
                }
            }
        }
        self.shards.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The calling thread's home shard under a given shard count.
    fn home_shard(len: usize) -> usize {
        THREAD_INDEX.with(|i| *i) % len
    }

    /// Pops an idle machine for `key`: home shard first (blocking lock
    /// — uncontended in steady state), then non-blocking steals from
    /// the siblings.
    fn take(&self, key: usize) -> Option<Machine> {
        let shards = self.shards();
        let home = Self::home_shard(shards.len());
        if let Ok(mut shard) = shards[home].lock() {
            if let Some(m) = shard.get_mut(&key).and_then(Vec::pop) {
                return Some(m);
            }
        }
        for (i, slot) in shards.iter().enumerate() {
            if i == home {
                continue;
            }
            if let Ok(mut shard) = slot.try_lock() {
                if let Some(m) = shard.get_mut(&key).and_then(Vec::pop) {
                    return Some(m);
                }
            }
        }
        None
    }

    /// Pops an idle (check-in-scrubbed) machine for `compiled` or
    /// constructs a fresh one, wrapped in the check-in-on-drop guard.
    /// Parked machines carry no dataset (inputs unbound) and no
    /// execution state — only their DRAM output segment is stale,
    /// which `clear_outputs` is `true` to zero (skip it only when a
    /// `bind_image`, which refills the segment, immediately follows).
    fn checkout_raw(
        &self,
        compiled: &Arc<CompiledProgram>,
        clear_outputs: bool,
    ) -> PooledMachine<'_> {
        self.checked_out.fetch_add(1, Ordering::Relaxed);
        self.checkout_reserved(compiled, clear_outputs)
    }

    /// The take-or-construct half of [`MachinePool::checkout_raw`], for
    /// a checkout slot already counted into `checked_out` by
    /// [`MachinePool::reserve_slots`] — the guard's drop decrements
    /// either way, so reservation and release stay balanced.
    fn checkout_reserved(
        &self,
        compiled: &Arc<CompiledProgram>,
        clear_outputs: bool,
    ) -> PooledMachine<'_> {
        let key = Arc::as_ptr(compiled) as usize;
        let machine = match self.take(key) {
            Some(mut m) => {
                if clear_outputs {
                    m.clear_outputs();
                }
                self.reused.fetch_add(1, Ordering::Relaxed);
                m
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                Machine::from_compiled(Arc::clone(compiled))
            }
        };
        PooledMachine {
            pool: self,
            key,
            machine: Some(machine),
        }
    }

    /// Reserves up to `want` checkout slots against an optional cap on
    /// concurrently checked-out machines, **never blocking and never
    /// granting zero**: when the cap leaves no headroom the caller
    /// still gets one slot, because the degraded-but-live option
    /// (running a sharded kernel serially) always beats parking the
    /// request until machines free up — a sharded run that *waited*
    /// for N slots under a per-tenant in-flight cap could starve
    /// forever against its own tenant's traffic. One CAS loop on the
    /// live-guard counter; `None` capacity grants everything.
    fn reserve_slots(&self, want: usize, capacity: Option<u64>) -> usize {
        debug_assert!(want >= 1, "reserve_slots wants at least one slot");
        let Some(cap) = capacity else {
            self.checked_out.fetch_add(want as u64, Ordering::Relaxed);
            return want;
        };
        loop {
            let cur = self.checked_out.load(Ordering::Relaxed);
            let grant = (want as u64).min(cap.saturating_sub(cur).max(1));
            if self
                .checked_out
                .compare_exchange(cur, cur + grant, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return grant as usize;
            }
        }
    }

    /// Checks out up to `n` machines for one program without ever
    /// blocking: the grant is clamped to the headroom `capacity`
    /// leaves over machines already checked out, **but never below
    /// one** — a caller holding fewer shards than it asked for falls
    /// back to fewer-way (down to serial) execution instead of waiting
    /// for slots that its own in-flight work may be occupying.
    pub fn try_checkout_n(
        &self,
        compiled: &Arc<CompiledProgram>,
        n: usize,
        capacity: Option<u64>,
    ) -> Vec<PooledMachine<'_>> {
        let granted = self.reserve_slots(n.max(1), capacity);
        (0..granted)
            .map(|_| self.checkout_reserved(compiled, true))
            .collect()
    }

    /// [`MachinePool::try_checkout_n`] over *distinct* programs — one
    /// machine per program, granted left-to-right (shard sub-programs
    /// are distinct compiled artifacts, so the sharded executor cannot
    /// use the single-key form). `clear_outputs` as on checkout: pass
    /// `false` only when a `bind_image` immediately follows.
    pub(crate) fn try_checkout_each(
        &self,
        programs: &[Arc<CompiledProgram>],
        capacity: Option<u64>,
        clear_outputs: bool,
    ) -> Vec<PooledMachine<'_>> {
        if programs.is_empty() {
            return Vec::new();
        }
        let granted = self.reserve_slots(programs.len(), capacity);
        programs[..granted]
            .iter()
            .map(|p| self.checkout_reserved(p, clear_outputs))
            .collect()
    }

    /// Checks out a machine for `compiled`, indistinguishable from a
    /// fresh [`Machine::from_compiled`] (machines are scrubbed at
    /// check-in; checkout only zero-fills the stale output segment).
    /// The guard checks the machine back in on drop.
    pub fn checkout(&self, compiled: &Arc<CompiledProgram>) -> PooledMachine<'_> {
        self.checkout_raw(compiled, true)
    }

    /// [`MachinePool::checkout`] followed by [`Machine::bind_image`]:
    /// the pooled serving-loop step — one image re-bind on a recycled
    /// machine, O(outputs) with no allocation (the redundant
    /// pre-bind output zero-fill is skipped: `bind_image` refills the
    /// segment).
    ///
    /// # Errors
    ///
    /// [`RunError::ImageMismatch`] when the image was built for a
    /// different compiled program (the machine still returns to the
    /// pool).
    pub fn checkout_bound(
        &self,
        compiled: &Arc<CompiledProgram>,
        image: &DramImage,
    ) -> Result<PooledMachine<'_>, RunError> {
        let mut machine = self.checkout_raw(compiled, false);
        machine.bind_image(image)?;
        Ok(machine)
    }

    /// Returns a machine to the dropping thread's home shard, scrubbed
    /// first: execution state cleared and the input segment unbound,
    /// so an idle machine never pins its last dataset's multi-MB
    /// `DramImage` segment in memory (and the next checkout pays at
    /// most an output zero-fill). Two classes of machine are discarded
    /// instead of parked: **poisoned** machines, whose last run aborted
    /// partway (quarantined and counted — recycling one would leak
    /// partial execution state into a later run), and machines
    /// re-linked away from their checkout program (their DRAM placement
    /// still follows the construction-time program, but their on-chip
    /// slot space grew past the pool key's layout).
    fn check_in(&self, key: usize, mut machine: Machine) {
        if machine.poisoned() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if Arc::as_ptr(machine.compiled()) as usize != key {
            return;
        }
        machine.clear_exec_state();
        machine.unbind_inputs();
        let shards = self.shards();
        if let Ok(mut shard) = shards[Self::home_shard(shards.len())].lock() {
            let idle = shard.entry(key).or_default();
            if idle.len() < MAX_IDLE_PER_KEY {
                idle.push(machine);
            }
        };
    }

    /// Cumulative created/reused/quarantined counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            created: self.created.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// An instantaneous [`PoolOccupancy`] snapshot: live guards, idle
    /// machines, shard count, and the cumulative counters. The serving
    /// layer publishes this in its stats; the load-test CI job records
    /// it in `serve-summary.json`.
    pub fn occupancy(&self) -> PoolOccupancy {
        PoolOccupancy {
            checked_out: self.checked_out.load(Ordering::Relaxed),
            idle: self.idle(),
            shards: self.shard_count(),
            stats: self.stats(),
        }
    }

    /// The current shard count (grows with observed threads on
    /// [`MachinePool::new`] pools).
    pub fn shard_count(&self) -> usize {
        self.shards.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Idle machines currently parked across all shards.
    pub fn idle(&self) -> usize {
        self.shards
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|s| {
                s.lock()
                    .map(|shard| shard.values().map(Vec::len).sum())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Drops every idle machine (checked-out guards are unaffected).
    pub fn clear(&self) {
        for slot in self.shards.read().unwrap_or_else(|e| e.into_inner()).iter() {
            if let Ok(mut shard) = slot.lock() {
                shard.clear();
            }
        }
    }
}

impl Default for MachinePool {
    fn default() -> Self {
        Self::new()
    }
}

/// A checked-out [`Machine`]: derefs to the machine, returns it to the
/// pool on drop. Use [`PooledMachine::detach`] to keep the machine and
/// skip the check-in.
#[derive(Debug)]
pub struct PooledMachine<'p> {
    pool: &'p MachinePool,
    key: usize,
    machine: Option<Machine>,
}

impl PooledMachine<'_> {
    /// Takes the machine out of the guard; it will not return to the
    /// pool (and no longer counts as checked out).
    pub fn detach(mut self) -> Machine {
        let machine = self.machine.take().expect("machine present until drop");
        self.pool.checked_out.fetch_sub(1, Ordering::Relaxed);
        machine
    }
}

impl Deref for PooledMachine<'_> {
    type Target = Machine;
    fn deref(&self) -> &Machine {
        self.machine.as_ref().expect("machine present until drop")
    }
}

impl DerefMut for PooledMachine<'_> {
    fn deref_mut(&mut self) -> &mut Machine {
        self.machine.as_mut().expect("machine present until drop")
    }
}

impl Drop for PooledMachine<'_> {
    fn drop(&mut self) {
        if let Some(machine) = self.machine.take() {
            self.pool.checked_out.fetch_sub(1, Ordering::Relaxed);
            self.pool.check_in(self.key, machine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{SExpr, SpatialProgram, SpatialStmt};

    fn program(name: &str) -> Arc<CompiledProgram> {
        let mut p = SpatialProgram::new(name);
        p.add_dram("out", 4);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Const(1.0),
        });
        p.assign_ids();
        Arc::new(CompiledProgram::compile(&p))
    }

    /// `try_checkout_n` clamps to capacity headroom, degrades to one
    /// slot rather than zero (the no-deadlock guarantee), and releases
    /// every reserved slot when the guards drop.
    #[test]
    fn try_checkout_n_clamps_to_headroom_but_never_zero() {
        let pool = MachinePool::with_shards(1);
        let prog = program("cap");

        let all = pool.try_checkout_n(&prog, 4, None);
        assert_eq!(all.len(), 4, "no capacity cap grants the full ask");
        assert_eq!(pool.occupancy().checked_out, 4);
        drop(all);
        assert_eq!(pool.occupancy().checked_out, 0);

        let held = pool.try_checkout_n(&prog, 4, Some(6));
        assert_eq!(held.len(), 4);
        let partial = pool.try_checkout_n(&prog, 4, Some(6));
        assert_eq!(partial.len(), 2, "grant clamps to remaining headroom");
        assert_eq!(pool.occupancy().checked_out, 6);

        let fallback = pool.try_checkout_n(&prog, 4, Some(6));
        assert_eq!(
            fallback.len(),
            1,
            "zero headroom still grants one slot instead of blocking"
        );
        drop((held, partial, fallback));
        assert_eq!(pool.occupancy().checked_out, 0);
    }

    /// The multi-program form hands out one machine per program in
    /// order, truncated (never blocked) by the capacity cap.
    #[test]
    fn try_checkout_each_grants_prefix_under_capacity() {
        let pool = MachinePool::with_shards(1);
        let progs = [program("a"), program("b"), program("c")];
        let got = pool.try_checkout_each(&progs, Some(2), true);
        assert_eq!(got.len(), 2);
        assert!(Arc::ptr_eq(got[0].compiled(), &progs[0]));
        assert!(Arc::ptr_eq(got[1].compiled(), &progs[1]));
        drop(got);
        assert_eq!(pool.occupancy().checked_out, 0);
        assert!(pool.try_checkout_each(&[], Some(2), true).is_empty());
    }
}
