//! A pool of reusable [`Machine`]s for serving loops and sweep
//! executors.
//!
//! Fresh-machine construction is allocator-bound: [`Machine`] state is a
//! handful of multi-MB flat arenas (DRAM output segment, on-chip word
//! and bitset arenas), so a sweep that binds a fresh machine per
//! measurement spends its fixed cost in `malloc`, not in binding. A
//! [`MachinePool`] keeps finished machines keyed by their compiled
//! program, scrubs them at check-in (execution state cleared, input
//! segment unbound so no idle machine pins its last dataset's
//! [`DramImage`] words), and hands them back out at O(outputs) or less
//! — the checked-out machine is indistinguishable from a fresh
//! [`Machine::from_compiled`], which `crates/spatial/tests/pool.rs`
//! property-tests across engines.
//!
//! The pool is sharded: every OS thread is assigned a home shard (a
//! process-wide dense thread index modulo the shard count), check-out
//! and check-in touch the home shard's lock first, and other shards are
//! only visited with non-blocking `try_lock` steals when the home shard
//! has nothing to offer. With at least as many shards as worker threads
//! (the [`MachinePool::new`] default) a steady-state sweep worker never
//! contends on a lock: it reuses the machine it checked in on its
//! previous iteration.
//!
//! Lifecycle:
//!
//! 1. **checkout** — [`MachinePool::checkout`] (or
//!    [`MachinePool::checkout_bound`], which follows with
//!    [`Machine::bind_image`]) pops an idle machine for the program, or
//!    constructs one on demand; the pool grows to the concurrency
//!    actually used, O(threads × distinct programs).
//! 2. **use** — the returned [`PooledMachine`] guard derefs to
//!    [`Machine`]; run it like any other machine.
//! 3. **check-in** — dropping the guard scrubs the machine (execution
//!    state cleared, inputs unbound; arenas kept) and parks it on the
//!    dropping thread's home shard. Machines that were re-linked to a
//!    different program while checked out are discarded instead: their
//!    slot space no longer matches the pool key's layout invariants.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::bytecode::CompiledProgram;
use crate::interp::{DramImage, Machine, RunError};

/// Idle machines kept per (shard, program) free list. A sweep at `t`
/// threads parks at most `t` machines per program, so this only bounds
/// pathological churn (e.g. thousands of guards dropped on one thread).
const MAX_IDLE_PER_KEY: usize = 32;

/// Process-wide dense thread index, assigned on a thread's first pool
/// interaction. Indexing shards by thread (not by a hash of anything
/// per-checkout) is what gives each sweep worker a private fast path.
static THREAD_COUNTER: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_INDEX: usize = THREAD_COUNTER.fetch_add(1, Ordering::Relaxed);
}

/// Idle machines, keyed by compiled-program identity (`Arc` address;
/// every pooled machine holds the `Arc`, keeping the address stable).
type Shard = HashMap<usize, Vec<Machine>>;

/// Cumulative pool counters (monotonic; never reset by [`MachinePool::clear`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Machines constructed because no idle one was available.
    pub created: u64,
    /// Checkouts served by resetting an idle machine.
    pub reused: u64,
}

/// A grow-on-demand pool of reusable [`Machine`]s. See the module docs
/// for the sharding and lifecycle story. Shareable across threads by
/// reference (`std::thread::scope`) or behind an `Arc`/`OnceLock`.
#[derive(Debug)]
pub struct MachinePool {
    shards: Vec<Mutex<Shard>>,
    created: AtomicU64,
    reused: AtomicU64,
}

impl MachinePool {
    /// A pool with one shard per available hardware thread — enough
    /// that sweep workers get private shards at any sane thread count.
    pub fn new() -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::with_shards(shards)
    }

    /// A pool with an explicit shard count (min 1). One shard is a
    /// plain mutex-guarded pool — useful in tests that need
    /// deterministic reuse.
    pub fn with_shards(shards: usize) -> Self {
        MachinePool {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::new()))
                .collect(),
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// The calling thread's home shard.
    fn home_shard(&self) -> usize {
        THREAD_INDEX.with(|i| *i) % self.shards.len()
    }

    /// Pops an idle machine for `key`: home shard first (blocking lock
    /// — uncontended in steady state), then non-blocking steals from
    /// the siblings.
    fn take(&self, key: usize) -> Option<Machine> {
        let home = self.home_shard();
        if let Ok(mut shard) = self.shards[home].lock() {
            if let Some(m) = shard.get_mut(&key).and_then(Vec::pop) {
                return Some(m);
            }
        }
        for (i, slot) in self.shards.iter().enumerate() {
            if i == home {
                continue;
            }
            if let Ok(mut shard) = slot.try_lock() {
                if let Some(m) = shard.get_mut(&key).and_then(Vec::pop) {
                    return Some(m);
                }
            }
        }
        None
    }

    /// Pops an idle (check-in-scrubbed) machine for `compiled` or
    /// constructs a fresh one, wrapped in the check-in-on-drop guard.
    /// Parked machines carry no dataset (inputs unbound) and no
    /// execution state — only their DRAM output segment is stale,
    /// which `clear_outputs` is `true` to zero (skip it only when a
    /// `bind_image`, which refills the segment, immediately follows).
    fn checkout_raw(
        &self,
        compiled: &Arc<CompiledProgram>,
        clear_outputs: bool,
    ) -> PooledMachine<'_> {
        let key = Arc::as_ptr(compiled) as usize;
        let machine = match self.take(key) {
            Some(mut m) => {
                if clear_outputs {
                    m.clear_outputs();
                }
                self.reused.fetch_add(1, Ordering::Relaxed);
                m
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                Machine::from_compiled(Arc::clone(compiled))
            }
        };
        PooledMachine {
            pool: self,
            key,
            machine: Some(machine),
        }
    }

    /// Checks out a machine for `compiled`, indistinguishable from a
    /// fresh [`Machine::from_compiled`] (machines are scrubbed at
    /// check-in; checkout only zero-fills the stale output segment).
    /// The guard checks the machine back in on drop.
    pub fn checkout(&self, compiled: &Arc<CompiledProgram>) -> PooledMachine<'_> {
        self.checkout_raw(compiled, true)
    }

    /// [`MachinePool::checkout`] followed by [`Machine::bind_image`]:
    /// the pooled serving-loop step — one image re-bind on a recycled
    /// machine, O(outputs) with no allocation (the redundant
    /// pre-bind output zero-fill is skipped: `bind_image` refills the
    /// segment).
    ///
    /// # Errors
    ///
    /// [`RunError::ImageMismatch`] when the image was built for a
    /// different compiled program (the machine still returns to the
    /// pool).
    pub fn checkout_bound(
        &self,
        compiled: &Arc<CompiledProgram>,
        image: &DramImage,
    ) -> Result<PooledMachine<'_>, RunError> {
        let mut machine = self.checkout_raw(compiled, false);
        machine.bind_image(image)?;
        Ok(machine)
    }

    /// Returns a machine to the dropping thread's home shard, scrubbed
    /// first: execution state cleared and the input segment unbound,
    /// so an idle machine never pins its last dataset's multi-MB
    /// `DramImage` segment in memory (and the next checkout pays at
    /// most an output zero-fill). Machines re-linked away from their
    /// checkout program are discarded instead (their DRAM placement
    /// still follows the construction-time program, but their on-chip
    /// slot space grew past the pool key's layout).
    fn check_in(&self, key: usize, mut machine: Machine) {
        if Arc::as_ptr(machine.compiled()) as usize != key {
            return;
        }
        machine.clear_exec_state();
        machine.unbind_inputs();
        if let Ok(mut shard) = self.shards[self.home_shard()].lock() {
            let idle = shard.entry(key).or_default();
            if idle.len() < MAX_IDLE_PER_KEY {
                idle.push(machine);
            }
        }
    }

    /// Cumulative created/reused counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            created: self.created.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
        }
    }

    /// Idle machines currently parked across all shards.
    pub fn idle(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .map(|shard| shard.values().map(Vec::len).sum())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Drops every idle machine (checked-out guards are unaffected).
    pub fn clear(&self) {
        for slot in &self.shards {
            if let Ok(mut shard) = slot.lock() {
                shard.clear();
            }
        }
    }
}

impl Default for MachinePool {
    fn default() -> Self {
        Self::new()
    }
}

/// A checked-out [`Machine`]: derefs to the machine, returns it to the
/// pool on drop. Use [`PooledMachine::detach`] to keep the machine and
/// skip the check-in.
#[derive(Debug)]
pub struct PooledMachine<'p> {
    pool: &'p MachinePool,
    key: usize,
    machine: Option<Machine>,
}

impl PooledMachine<'_> {
    /// Takes the machine out of the guard; it will not return to the
    /// pool.
    pub fn detach(mut self) -> Machine {
        self.machine.take().expect("machine present until drop")
    }
}

impl Deref for PooledMachine<'_> {
    type Target = Machine;
    fn deref(&self) -> &Machine {
        self.machine.as_ref().expect("machine present until drop")
    }
}

impl DerefMut for PooledMachine<'_> {
    fn deref_mut(&mut self) -> &mut Machine {
        self.machine.as_mut().expect("machine present until drop")
    }
}

impl Drop for PooledMachine<'_> {
    fn drop(&mut self) {
        if let Some(machine) = self.machine.take() {
            self.pool.check_in(self.key, machine);
        }
    }
}
