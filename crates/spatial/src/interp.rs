//! Resolved-slot interpreter for the Spatial IR.
//!
//! Executes a [`SpatialProgram`] against DRAM contents. This provides the
//! executable semantics that the authors obtained from the Spatial/SARA
//! toolchain: compiled kernels are checked for correctness against the CIN
//! oracle by running them here, and the [`ExecStats`] event trace (elements
//! processed per pattern, DRAM words moved, scanner bits examined, shuffle
//! accesses, ALU operations) feeds the Capstan cycle simulator.
//!
//! # Execution engine
//!
//! [`Machine::new`] first runs the [`crate::resolve`] link pass, which
//! interns every memory, register, FIFO, and variable name into dense
//! `u32` slots and flattens every expression tree into one arena. The
//! interpreter loop then works exclusively on `Vec`-indexed state —
//! DRAM arrays, on-chip memories, the variable environment, and all
//! statistics counters are dense vectors — so the hot path never hashes
//! a string. Dense counters are folded back into the string-keyed
//! [`ExecStats`] shape when [`Machine::run`] finishes.
//!
//! The original name-keyed tree walker survives as
//! [`crate::ReferenceMachine`]; differential tests assert both engines
//! produce byte-identical DRAM contents and identical [`ExecStats`], and
//! `cargo bench --bench interp` measures the speedup.

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::rc::Rc;

use crate::ir::{MemKind, ScanOp, SpatialProgram};
use crate::resolve::{
    resolve, ExprId, ResolvedCounter, ResolvedExpr, ResolvedProgram, ResolvedStmt, Slot,
    SymbolTable,
};

/// Errors raised while executing a Spatial program.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A memory name was referenced but never declared/allocated.
    UnknownMemory(String),
    /// An access fell outside a memory's capacity.
    OutOfBounds {
        /// Memory name.
        mem: String,
        /// Offending word index.
        index: i64,
        /// Memory capacity in words.
        len: usize,
    },
    /// A FIFO was dequeued while empty.
    FifoUnderflow(String),
    /// A variable was read before being bound.
    UnboundVar(String),
    /// A negative index or length was computed.
    NegativeIndex {
        /// Where the negative value appeared.
        context: String,
        /// The value.
        value: f64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownMemory(m) => write!(f, "unknown memory {m}"),
            RunError::OutOfBounds { mem, index, len } => {
                write!(f, "index {index} out of bounds for {mem} of {len} words")
            }
            RunError::FifoUnderflow(m) => write!(f, "dequeue from empty FIFO {m}"),
            RunError::UnboundVar(v) => write!(f, "unbound variable {v}"),
            RunError::NegativeIndex { context, value } => {
                write!(f, "negative index {value} in {context}")
            }
        }
    }
}

impl Error for RunError {}

/// Event counts collected during execution, the input to cycle modeling.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Words bulk-read per DRAM array.
    pub dram_reads: HashMap<String, u64>,
    /// Words bulk-written per DRAM array.
    pub dram_writes: HashMap<String, u64>,
    /// Single-element (random) DRAM reads.
    pub dram_random_reads: u64,
    /// Single-element (random) DRAM writes.
    pub dram_random_writes: u64,
    /// Iterations executed per pattern node id.
    pub node_trips: HashMap<usize, u64>,
    /// DRAM words read by loads under each pattern node id.
    pub node_dram_read_words: HashMap<usize, u64>,
    /// DRAM words written by stores under each pattern node id.
    pub node_dram_write_words: HashMap<usize, u64>,
    /// Scalar ALU operations evaluated.
    pub alu_ops: u64,
    /// On-chip affine memory reads.
    pub sram_reads: u64,
    /// On-chip memory writes.
    pub sram_writes: u64,
    /// Random (data-dependent) on-chip accesses — served by the shuffle
    /// network when crossing lanes.
    pub shuffle_accesses: u64,
    /// FIFO enqueues.
    pub fifo_enqs: u64,
    /// FIFO dequeues.
    pub fifo_deqs: u64,
    /// Bits examined by scanners.
    pub scan_bits: u64,
    /// Iterations emitted by scanners (set bits / combined set bits).
    pub scan_emits: u64,
    /// Bits written while generating bit vectors.
    pub bv_gen_bits: u64,
    /// Elements folded by `Reduce` patterns.
    pub reduce_elems: u64,
}

impl ExecStats {
    /// Total words bulk-read from DRAM.
    pub fn total_dram_read_words(&self) -> u64 {
        self.dram_reads.values().sum()
    }

    /// Total words bulk-written to DRAM.
    pub fn total_dram_write_words(&self) -> u64 {
        self.dram_writes.values().sum()
    }

    /// Total DRAM traffic in bytes (32-bit words, plus random accesses).
    pub fn total_dram_bytes(&self) -> u64 {
        4 * (self.total_dram_read_words()
            + self.total_dram_write_words()
            + self.dram_random_reads
            + self.dram_random_writes)
    }

    /// Iterations of a given pattern node.
    pub fn trips(&self, node: usize) -> u64 {
        self.node_trips.get(&node).copied().unwrap_or(0)
    }
}

#[derive(Debug, Clone)]
enum Mem {
    Words(Vec<f64>),
    Fifo(VecDeque<f64>),
    Reg(f64),
    Bits(Vec<bool>),
}

#[derive(Debug, Clone)]
struct OnChip {
    kind: MemKind,
    mem: Mem,
}

#[derive(Debug, Clone)]
struct DramArray {
    kind: MemKind,
    data: Vec<f64>,
}

/// Dense statistics counters, indexed by slot / node id. `Option`
/// distinguishes "never touched" from "touched with zero words" so the
/// fold reproduces the reference engine's map-entry creation exactly.
#[derive(Debug, Clone, Default)]
struct DenseStats {
    dram_reads: Vec<Option<u64>>,
    dram_writes: Vec<Option<u64>>,
    node_trips: Vec<u64>,
    node_dram_read_words: Vec<Option<u64>>,
    node_dram_write_words: Vec<Option<u64>>,
    dram_random_reads: u64,
    dram_random_writes: u64,
    alu_ops: u64,
    sram_reads: u64,
    sram_writes: u64,
    shuffle_accesses: u64,
    fifo_enqs: u64,
    fifo_deqs: u64,
    scan_bits: u64,
    scan_emits: u64,
    bv_gen_bits: u64,
    reduce_elems: u64,
}

impl DenseStats {
    fn note_dram_read(&mut self, slot: Slot, words: u64, node: Option<usize>) {
        *self.dram_reads[slot as usize].get_or_insert(0) += words;
        if let Some(n) = node {
            *self.node_dram_read_words[n].get_or_insert(0) += words;
        }
    }

    fn note_dram_write(&mut self, slot: Slot, words: u64, node: Option<usize>) {
        *self.dram_writes[slot as usize].get_or_insert(0) += words;
        if let Some(n) = node {
            *self.node_dram_write_words[n].get_or_insert(0) += words;
        }
    }

    fn fold(&self, syms: &SymbolTable) -> ExecStats {
        let mut out = ExecStats {
            dram_random_reads: self.dram_random_reads,
            dram_random_writes: self.dram_random_writes,
            alu_ops: self.alu_ops,
            sram_reads: self.sram_reads,
            sram_writes: self.sram_writes,
            shuffle_accesses: self.shuffle_accesses,
            fifo_enqs: self.fifo_enqs,
            fifo_deqs: self.fifo_deqs,
            scan_bits: self.scan_bits,
            scan_emits: self.scan_emits,
            bv_gen_bits: self.bv_gen_bits,
            reduce_elems: self.reduce_elems,
            ..ExecStats::default()
        };
        for (slot, words) in self.dram_reads.iter().enumerate() {
            if let Some(w) = words {
                out.dram_reads
                    .insert(syms.dram_name(slot as Slot).to_string(), *w);
            }
        }
        for (slot, words) in self.dram_writes.iter().enumerate() {
            if let Some(w) = words {
                out.dram_writes
                    .insert(syms.dram_name(slot as Slot).to_string(), *w);
            }
        }
        for (node, trips) in self.node_trips.iter().enumerate() {
            if *trips > 0 {
                out.node_trips.insert(node, *trips);
            }
        }
        for (node, words) in self.node_dram_read_words.iter().enumerate() {
            if let Some(w) = words {
                out.node_dram_read_words.insert(node, *w);
            }
        }
        for (node, words) in self.node_dram_write_words.iter().enumerate() {
            if let Some(w) = words {
                out.node_dram_write_words.insert(node, *w);
            }
        }
        out
    }
}

fn index_of(v: f64, context: impl FnOnce() -> String) -> Result<usize, RunError> {
    if v < 0.0 {
        return Err(RunError::NegativeIndex {
            context: context(),
            value: v,
        });
    }
    Ok(v.round() as usize)
}

/// The machine state a program executes against: DRAM plus on-chip
/// memories, variable bindings, and statistics — all held in dense,
/// slot-indexed vectors produced by the [`crate::resolve`] link pass.
///
/// # Example
///
/// ```
/// use stardust_spatial::{Machine, SpatialProgram, SpatialStmt, SExpr, Counter, MemKind};
/// use stardust_spatial::ir::MemDecl;
///
/// // y[i] = x[i] * 2 over a 4-element DRAM vector.
/// let mut p = SpatialProgram::new("double");
/// p.add_dram("x", 4);
/// p.add_dram("y", 4);
/// p.accel.push(SpatialStmt::Alloc(MemDecl::new("xs", MemKind::Sram, 4)));
/// p.accel.push(SpatialStmt::Load {
///     dst: "xs".into(), src: "x".into(),
///     start: SExpr::Const(0.0), end: SExpr::Const(4.0), par: 1,
/// });
/// p.accel.push(SpatialStmt::Foreach {
///     id: 0,
///     counter: Counter::range_to("i", SExpr::Const(4.0)),
///     par: 1,
///     body: vec![SpatialStmt::StoreScalar {
///         dst: "y".into(),
///         index: SExpr::var("i"),
///         value: SExpr::mul(SExpr::read("xs", SExpr::var("i")), SExpr::Const(2.0)),
///     }],
/// });
/// p.assign_ids();
///
/// let mut m = Machine::new(&p);
/// m.write_dram("x", &[1.0, 2.0, 3.0, 4.0]).unwrap();
/// m.run(&p).unwrap();
/// assert_eq!(m.dram("y").unwrap(), &[2.0, 4.0, 6.0, 8.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    syms: SymbolTable,
    resolved: Rc<ResolvedProgram>,
    source: SpatialProgram,
    drams: Vec<Option<DramArray>>,
    on_chip: Vec<Option<OnChip>>,
    env: Vec<Option<f64>>,
    dense: DenseStats,
    stats: ExecStats,
    node_stack: Vec<usize>,
    scratch: Vec<usize>,
}

impl Machine {
    /// Creates a machine with zeroed DRAM arrays sized per the program's
    /// declarations. The program is linked (resolved to slots) here;
    /// [`Machine::run`] re-links only when handed a different program.
    pub fn new(program: &SpatialProgram) -> Self {
        let mut syms = SymbolTable::default();
        let resolved = Rc::new(resolve(program, &mut syms));
        let mut m = Machine {
            syms,
            resolved: Rc::clone(&resolved),
            source: program.clone(),
            drams: Vec::new(),
            on_chip: Vec::new(),
            env: Vec::new(),
            dense: DenseStats::default(),
            stats: ExecStats::default(),
            node_stack: Vec::new(),
            scratch: Vec::new(),
        };
        m.grow_state();
        for d in &resolved.drams {
            m.drams[d.slot as usize] = Some(DramArray {
                kind: d.kind,
                data: vec![0.0; d.size],
            });
        }
        m
    }

    /// Grows slot-indexed state to match the symbol table after a
    /// resolution pass. Existing slots keep their contents.
    fn grow_state(&mut self) {
        let drams = self.syms.dram_count();
        let chips = self.syms.chip_count();
        let vars = self.syms.var_count();
        let nodes = self.resolved.node_limit.max(self.dense.node_trips.len());
        if self.drams.len() < drams {
            self.drams.resize_with(drams, || None);
            self.dense.dram_reads.resize(drams, None);
            self.dense.dram_writes.resize(drams, None);
        }
        if self.on_chip.len() < chips {
            self.on_chip.resize_with(chips, || None);
        }
        if self.env.len() < vars {
            self.env.resize(vars, None);
        }
        if self.dense.node_trips.len() < nodes {
            self.dense.node_trips.resize(nodes, 0);
            self.dense.node_dram_read_words.resize(nodes, None);
            self.dense.node_dram_write_words.resize(nodes, None);
        }
    }

    fn unknown_dram(&self, slot: Slot) -> RunError {
        RunError::UnknownMemory(self.syms.dram_name(slot).to_string())
    }

    fn unknown_chip(&self, slot: Slot) -> RunError {
        RunError::UnknownMemory(self.syms.chip_name(slot).to_string())
    }

    fn dram_slot_of(&self, name: &str) -> Result<Slot, RunError> {
        self.syms
            .dram_slot(name)
            .filter(|&s| self.drams[s as usize].is_some())
            .ok_or_else(|| RunError::UnknownMemory(name.to_string()))
    }

    /// Overwrites the head of a DRAM array with `data`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::UnknownMemory`] or [`RunError::OutOfBounds`] when
    /// the array is missing or too small.
    pub fn write_dram(&mut self, name: &str, data: &[f64]) -> Result<(), RunError> {
        let slot = self.dram_slot_of(name)?;
        let arr = &mut self.drams[slot as usize].as_mut().expect("checked").data;
        if data.len() > arr.len() {
            return Err(RunError::OutOfBounds {
                mem: name.to_string(),
                index: data.len() as i64,
                len: arr.len(),
            });
        }
        arr[..data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Writes an integer array (e.g. a `pos`/`crd` sub-array) into DRAM,
    /// converting in place — no intermediate allocation.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::write_dram`].
    pub fn write_dram_usize(&mut self, name: &str, data: &[usize]) -> Result<(), RunError> {
        let slot = self.dram_slot_of(name)?;
        let arr = &mut self.drams[slot as usize].as_mut().expect("checked").data;
        if data.len() > arr.len() {
            return Err(RunError::OutOfBounds {
                mem: name.to_string(),
                index: data.len() as i64,
                len: arr.len(),
            });
        }
        for (dst, &x) in arr.iter_mut().zip(data) {
            *dst = x as f64;
        }
        Ok(())
    }

    /// Reads a DRAM array.
    pub fn dram(&self, name: &str) -> Option<&[f64]> {
        let slot = self.syms.dram_slot(name)?;
        self.drams[slot as usize]
            .as_ref()
            .map(|a| a.data.as_slice())
    }

    /// The declared kind of a DRAM array.
    pub fn dram_kind(&self, name: &str) -> Option<MemKind> {
        let slot = self.syms.dram_slot(name)?;
        self.drams[slot as usize].as_ref().map(|a| a.kind)
    }

    /// Reads a DRAM array as integers (rounding).
    pub fn dram_usize(&self, name: &str) -> Option<Vec<usize>> {
        let arr = self.dram(name)?;
        let mut out = Vec::with_capacity(arr.len());
        self.read_dram_usize_into(name, arr.len(), &mut out)?;
        Some(out)
    }

    /// Streams the first `len` words of a DRAM array into `out` as
    /// integers (rounding), clearing `out` first. Returns `None` when the
    /// array is missing or shorter than `len`; `out` is left empty then.
    pub fn read_dram_usize_into(&self, name: &str, len: usize, out: &mut Vec<usize>) -> Option<()> {
        out.clear();
        let arr = self.dram(name)?;
        if arr.len() < len {
            return None;
        }
        out.extend(arr[..len].iter().map(|&x| x.round() as usize));
        Some(())
    }

    /// The statistics gathered so far (updated when [`Machine::run`]
    /// returns).
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Executes the program's Accel block.
    ///
    /// The resolved form produced at construction is reused when
    /// `program` equals the program the machine was built from;
    /// otherwise the new program is linked against the machine's
    /// existing slot space first.
    ///
    /// # Errors
    ///
    /// Returns the first [`RunError`] encountered.
    pub fn run(&mut self, program: &SpatialProgram) -> Result<ExecStats, RunError> {
        if *program != self.source {
            self.source = program.clone();
            self.resolved = Rc::new(resolve(program, &mut self.syms));
            self.grow_state();
        }
        let prog = Rc::clone(&self.resolved);
        let result = (|| {
            for stmt in &prog.body {
                self.exec(&prog, stmt)?;
            }
            Ok(())
        })();
        self.stats = self.dense.fold(&self.syms);
        result?;
        Ok(self.stats.clone())
    }

    fn current_node(&self) -> Option<usize> {
        self.node_stack.last().copied()
    }

    fn eval(&mut self, p: &ResolvedProgram, id: ExprId) -> Result<f64, RunError> {
        match p.expr(id) {
            ResolvedExpr::Const(c) => Ok(c),
            ResolvedExpr::Var(v) => self.env[v as usize]
                .ok_or_else(|| RunError::UnboundVar(self.syms.var_name(v).to_string())),
            ResolvedExpr::RegRead(r) => match &self.on_chip[r as usize] {
                Some(OnChip {
                    mem: Mem::Reg(v), ..
                }) => Ok(*v),
                _ => Err(self.unknown_chip(r)),
            },
            ResolvedExpr::Deq(f) => {
                self.dense.fifo_deqs += 1;
                match &mut self.on_chip[f as usize] {
                    Some(OnChip {
                        mem: Mem::Fifo(q), ..
                    }) => {
                        let popped = q.pop_front();
                        popped.ok_or_else(|| {
                            RunError::FifoUnderflow(self.syms.chip_name(f).to_string())
                        })
                    }
                    _ => Err(self.unknown_chip(f)),
                }
            }
            ResolvedExpr::ReadMem {
                chip,
                dram,
                index,
                random,
            } => {
                let ix = self.eval(p, index)?;
                let syms = &self.syms;
                let ix = index_of(ix, || syms.chip_name(chip).to_string())?;
                // On-chip first, then DRAM (SparseDram random reads).
                if let Some(oc) = &self.on_chip[chip as usize] {
                    let kind = oc.kind;
                    let v = match &oc.mem {
                        Mem::Words(w) => {
                            let len = w.len();
                            *w.get(ix).ok_or_else(|| RunError::OutOfBounds {
                                mem: syms.chip_name(chip).to_string(),
                                index: ix as i64,
                                len,
                            })?
                        }
                        _ => return Err(self.unknown_chip(chip)),
                    };
                    self.dense.sram_reads += 1;
                    if random && kind == MemKind::SparseSram {
                        self.dense.shuffle_accesses += 1;
                    }
                    Ok(v)
                } else if let Some(arr) = &self.drams[dram as usize] {
                    let len = arr.data.len();
                    let v = *arr.data.get(ix).ok_or_else(|| RunError::OutOfBounds {
                        mem: syms.dram_name(dram).to_string(),
                        index: ix as i64,
                        len,
                    })?;
                    self.dense.dram_random_reads += 1;
                    Ok(v)
                } else {
                    Err(self.unknown_chip(chip))
                }
            }
            ResolvedExpr::Neg(inner) => {
                let v = self.eval(p, inner)?;
                self.dense.alu_ops += 1;
                Ok(-v)
            }
            ResolvedExpr::Binary { op, lhs, rhs } => {
                let a = self.eval(p, lhs)?;
                let b = self.eval(p, rhs)?;
                self.dense.alu_ops += 1;
                Ok(op.apply(a, b))
            }
            ResolvedExpr::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.eval(p, cond)?;
                self.dense.alu_ops += 1;
                // Both sides are evaluated in hardware (they are wires);
                // evaluate lazily here only to avoid spurious OOB on the
                // untaken side, which a mux masks out.
                if c != 0.0 {
                    self.eval(p, if_true)
                } else {
                    self.eval(p, if_false)
                }
            }
        }
    }

    fn write_on_chip(
        &mut self,
        mem: Slot,
        ix: usize,
        value: f64,
        random: bool,
        accumulate: bool,
    ) -> Result<(), RunError> {
        match &mut self.on_chip[mem as usize] {
            Some(OnChip {
                kind,
                mem: Mem::Words(w),
            }) => {
                let kind = *kind;
                let len = w.len();
                let slot = match w.get_mut(ix) {
                    Some(s) => s,
                    None => {
                        return Err(RunError::OutOfBounds {
                            mem: self.syms.chip_name(mem).to_string(),
                            index: ix as i64,
                            len,
                        })
                    }
                };
                if accumulate {
                    *slot += value;
                } else {
                    *slot = value;
                }
                self.dense.sram_writes += 1;
                if (random || accumulate) && kind == MemKind::SparseSram {
                    self.dense.shuffle_accesses += 1;
                }
                Ok(())
            }
            _ => Err(self.unknown_chip(mem)),
        }
    }

    fn exec(&mut self, p: &ResolvedProgram, stmt: &ResolvedStmt) -> Result<(), RunError> {
        match stmt {
            ResolvedStmt::Alloc { slot, kind, size } => {
                let mem = match kind {
                    MemKind::Sram | MemKind::SparseSram => Mem::Words(vec![0.0; *size]),
                    MemKind::Fifo => Mem::Fifo(VecDeque::new()),
                    MemKind::Reg => Mem::Reg(0.0),
                    MemKind::BitVector => Mem::Bits(vec![false; *size]),
                    MemKind::Dram | MemKind::SparseDram => {
                        // DRAM is declared at program level, not allocated
                        // in Accel.
                        return Err(self.unknown_chip(*slot));
                    }
                };
                self.on_chip[*slot as usize] = Some(OnChip { kind: *kind, mem });
                Ok(())
            }
            ResolvedStmt::Bind { var, value } => {
                let v = self.eval(p, *value)?;
                self.env[*var as usize] = Some(v);
                Ok(())
            }
            ResolvedStmt::Load {
                dst,
                src,
                start,
                end,
            } => {
                let s = self.eval(p, *start)?;
                let e = self.eval(p, *end)?;
                let s = index_of(s, || "load start".to_string())?;
                let e = index_of(e, || "load end".to_string())?;
                let alen = match &self.drams[*src as usize] {
                    Some(arr) => arr.data.len(),
                    None => return Err(self.unknown_dram(*src)),
                };
                if e > alen {
                    return Err(RunError::OutOfBounds {
                        mem: self.syms.dram_name(*src).to_string(),
                        index: e as i64,
                        len: alen,
                    });
                }
                let n = e.checked_sub(s).expect("load start beyond load end");
                self.dense
                    .note_dram_read(*src, n as u64, self.current_node());
                let src_arr = self.drams[*src as usize].as_ref().expect("checked");
                match &mut self.on_chip[*dst as usize] {
                    Some(OnChip {
                        mem: Mem::Words(w), ..
                    }) => {
                        if n > w.len() {
                            return Err(RunError::OutOfBounds {
                                mem: self.syms.chip_name(*dst).to_string(),
                                index: n as i64,
                                len: w.len(),
                            });
                        }
                        w[..n].copy_from_slice(&src_arr.data[s..e]);
                        self.dense.sram_writes += n as u64;
                        Ok(())
                    }
                    Some(OnChip {
                        mem: Mem::Fifo(q), ..
                    }) => {
                        self.dense.fifo_enqs += n as u64;
                        q.extend(src_arr.data[s..e].iter().copied());
                        Ok(())
                    }
                    _ => Err(RunError::UnknownMemory(
                        self.syms.chip_name(*dst).to_string(),
                    )),
                }
            }
            ResolvedStmt::Store {
                dst,
                offset,
                src,
                len,
            } => {
                let off = self.eval(p, *offset)?;
                let off = index_of(off, || "store offset".to_string())?;
                let n = self.eval(p, *len)?;
                let n = index_of(n, || "store len".to_string())?;
                let w = match &self.on_chip[*src as usize] {
                    Some(OnChip {
                        mem: Mem::Words(w), ..
                    }) => w,
                    _ => return Err(self.unknown_chip(*src)),
                };
                if n > w.len() {
                    return Err(RunError::OutOfBounds {
                        mem: self.syms.chip_name(*src).to_string(),
                        index: n as i64,
                        len: w.len(),
                    });
                }
                self.dense.sram_reads += n as u64;
                let arr = match &mut self.drams[*dst as usize] {
                    Some(arr) => &mut arr.data,
                    None => {
                        return Err(RunError::UnknownMemory(
                            self.syms.dram_name(*dst).to_string(),
                        ))
                    }
                };
                if off + n > arr.len() {
                    return Err(RunError::OutOfBounds {
                        mem: self.syms.dram_name(*dst).to_string(),
                        index: (off + n) as i64,
                        len: arr.len(),
                    });
                }
                arr[off..off + n].copy_from_slice(&w[..n]);
                self.dense
                    .note_dram_write(*dst, n as u64, self.current_node());
                Ok(())
            }
            ResolvedStmt::StreamStore {
                dst,
                offset,
                fifo,
                len,
            } => {
                let off = self.eval(p, *offset)?;
                let off = index_of(off, || "stream store offset".to_string())?;
                let n = self.eval(p, *len)?;
                let n = index_of(n, || "stream store len".to_string())?;
                let q = match &mut self.on_chip[*fifo as usize] {
                    Some(OnChip {
                        mem: Mem::Fifo(q), ..
                    }) => q,
                    _ => {
                        return Err(RunError::UnknownMemory(
                            self.syms.chip_name(*fifo).to_string(),
                        ))
                    }
                };
                if q.len() < n {
                    // The reference engine pops one element at a time and
                    // fails on the first missing one — the FIFO ends up
                    // drained and the dequeues uncounted.
                    q.clear();
                    return Err(RunError::FifoUnderflow(
                        self.syms.chip_name(*fifo).to_string(),
                    ));
                }
                self.dense.fifo_deqs += n as u64;
                let arr = match &mut self.drams[*dst as usize] {
                    Some(arr) => &mut arr.data,
                    None => {
                        let q = match &mut self.on_chip[*fifo as usize] {
                            Some(OnChip {
                                mem: Mem::Fifo(q), ..
                            }) => q,
                            _ => unreachable!("checked above"),
                        };
                        q.drain(..n);
                        return Err(RunError::UnknownMemory(
                            self.syms.dram_name(*dst).to_string(),
                        ));
                    }
                };
                if off + n > arr.len() {
                    let len = arr.len();
                    let q = match &mut self.on_chip[*fifo as usize] {
                        Some(OnChip {
                            mem: Mem::Fifo(q), ..
                        }) => q,
                        _ => unreachable!("checked above"),
                    };
                    q.drain(..n);
                    return Err(RunError::OutOfBounds {
                        mem: self.syms.dram_name(*dst).to_string(),
                        index: (off + n) as i64,
                        len,
                    });
                }
                for (slot, v) in arr[off..off + n].iter_mut().zip(q.drain(..n)) {
                    *slot = v;
                }
                self.dense
                    .note_dram_write(*dst, n as u64, self.current_node());
                Ok(())
            }
            ResolvedStmt::StoreScalar { dst, index, value } => {
                let ix = self.eval(p, *index)?;
                let ix = index_of(ix, || "scalar store index".to_string())?;
                let v = self.eval(p, *value)?;
                let arr = match &mut self.drams[*dst as usize] {
                    Some(arr) => &mut arr.data,
                    None => {
                        return Err(RunError::UnknownMemory(
                            self.syms.dram_name(*dst).to_string(),
                        ))
                    }
                };
                let len = arr.len();
                let slot = match arr.get_mut(ix) {
                    Some(s) => s,
                    None => {
                        return Err(RunError::OutOfBounds {
                            mem: self.syms.dram_name(*dst).to_string(),
                            index: ix as i64,
                            len,
                        })
                    }
                };
                *slot = v;
                self.dense.dram_random_writes += 1;
                Ok(())
            }
            ResolvedStmt::WriteMem {
                mem,
                index,
                value,
                random,
            } => {
                let ix = self.eval(p, *index)?;
                let syms = &self.syms;
                let ix = index_of(ix, || syms.chip_name(*mem).to_string())?;
                let v = self.eval(p, *value)?;
                self.write_on_chip(*mem, ix, v, *random, false)
            }
            ResolvedStmt::RmwAdd { mem, index, value } => {
                let ix = self.eval(p, *index)?;
                let syms = &self.syms;
                let ix = index_of(ix, || syms.chip_name(*mem).to_string())?;
                let v = self.eval(p, *value)?;
                self.write_on_chip(*mem, ix, v, true, true)
            }
            ResolvedStmt::SetReg { reg, value } => {
                let v = self.eval(p, *value)?;
                match &mut self.on_chip[*reg as usize] {
                    Some(OnChip {
                        mem: Mem::Reg(r), ..
                    }) => {
                        *r = v;
                        Ok(())
                    }
                    _ => Err(self.unknown_chip(*reg)),
                }
            }
            ResolvedStmt::Enq { fifo, value } => {
                let v = self.eval(p, *value)?;
                match &mut self.on_chip[*fifo as usize] {
                    Some(OnChip {
                        mem: Mem::Fifo(q), ..
                    }) => {
                        q.push_back(v);
                        self.dense.fifo_enqs += 1;
                        Ok(())
                    }
                    _ => Err(self.unknown_chip(*fifo)),
                }
            }
            ResolvedStmt::GenBitVector {
                dst,
                src,
                src_start,
                count,
                dim,
            } => {
                let n = self.eval(p, *count)?;
                let n = index_of(n, || "genbv count".to_string())?;
                let d = self.eval(p, *dim)?;
                let d = index_of(d, || "genbv dim".to_string())?;
                let s = self.eval(p, *src_start)?;
                let s = index_of(s, || "genbv start".to_string())?;
                // Gather coordinates from the source memory into the
                // reusable scratch buffer.
                let mut coords = std::mem::take(&mut self.scratch);
                coords.clear();
                match &mut self.on_chip[*src as usize] {
                    Some(OnChip {
                        mem: Mem::Fifo(q), ..
                    }) => {
                        if q.len() < n {
                            // Reference semantics: pop until empty, fail.
                            q.clear();
                            return Err(RunError::FifoUnderflow(
                                self.syms.chip_name(*src).to_string(),
                            ));
                        }
                        coords.extend(q.drain(..n).map(|v| v.round() as usize));
                        self.dense.fifo_deqs += n as u64;
                    }
                    Some(OnChip {
                        mem: Mem::Words(w), ..
                    }) => {
                        if s + n > w.len() {
                            return Err(RunError::OutOfBounds {
                                mem: self.syms.chip_name(*src).to_string(),
                                index: (s + n) as i64,
                                len: w.len(),
                            });
                        }
                        self.dense.sram_reads += n as u64;
                        coords.extend(w[s..s + n].iter().map(|&v| v.round() as usize));
                    }
                    _ => {
                        return Err(RunError::UnknownMemory(
                            self.syms.chip_name(*src).to_string(),
                        ))
                    }
                }
                let result = match &mut self.on_chip[*dst as usize] {
                    Some(OnChip {
                        mem: Mem::Bits(bits),
                        ..
                    }) => {
                        if bits.len() < d {
                            bits.resize(d, false);
                        }
                        bits.iter_mut().for_each(|b| *b = false);
                        let mut failed = None;
                        for &c in &coords {
                            if c >= bits.len() {
                                failed = Some(RunError::OutOfBounds {
                                    mem: self.syms.chip_name(*dst).to_string(),
                                    index: c as i64,
                                    len: bits.len(),
                                });
                                break;
                            }
                            bits[c] = true;
                        }
                        match failed {
                            Some(e) => Err(e),
                            None => {
                                self.dense.bv_gen_bits += d as u64;
                                Ok(())
                            }
                        }
                    }
                    _ => Err(RunError::UnknownMemory(
                        self.syms.chip_name(*dst).to_string(),
                    )),
                };
                self.scratch = coords;
                result
            }
            ResolvedStmt::Foreach { id, counter, body } => {
                self.node_stack.push(*id);
                let result = self.run_counter(p, counter, |m| {
                    m.dense.node_trips[*id] += 1;
                    for s in body {
                        m.exec(p, s)?;
                    }
                    Ok(())
                });
                self.node_stack.pop();
                result
            }
            ResolvedStmt::Reduce {
                id,
                reg,
                counter,
                body,
                expr,
            } => {
                self.node_stack.push(*id);
                let mut acc = match &self.on_chip[*reg as usize] {
                    Some(OnChip {
                        mem: Mem::Reg(v), ..
                    }) => *v,
                    _ => {
                        self.node_stack.pop();
                        return Err(self.unknown_chip(*reg));
                    }
                };
                let result = self.run_counter(p, counter, |m| {
                    m.dense.node_trips[*id] += 1;
                    for s in body {
                        m.exec(p, s)?;
                    }
                    let v = m.eval(p, *expr)?;
                    m.dense.reduce_elems += 1;
                    m.dense.alu_ops += 1; // the tree-add
                    acc += v;
                    Ok(())
                });
                self.node_stack.pop();
                result?;
                if let Some(OnChip {
                    mem: Mem::Reg(r), ..
                }) = &mut self.on_chip[*reg as usize]
                {
                    *r = acc;
                }
                Ok(())
            }
        }
    }

    fn run_counter(
        &mut self,
        p: &ResolvedProgram,
        counter: &ResolvedCounter,
        mut body: impl FnMut(&mut Machine) -> Result<(), RunError>,
    ) -> Result<(), RunError> {
        match counter {
            ResolvedCounter::Range {
                var,
                min,
                max,
                step,
            } => {
                let lo = self.eval(p, *min)?;
                let hi = self.eval(p, *max)?;
                let step = *step;
                debug_assert!(step > 0, "non-positive loop step");
                let var = *var as usize;
                let saved = self.env[var];
                let mut v = lo;
                while v < hi {
                    self.env[var] = Some(v);
                    body(self)?;
                    v += step as f64;
                }
                self.env[var] = saved;
                Ok(())
            }
            ResolvedCounter::Scan1 {
                bv,
                pos_var,
                idx_var,
            } => {
                let bits = match &self.on_chip[*bv as usize] {
                    Some(OnChip {
                        mem: Mem::Bits(b), ..
                    }) => b.clone(),
                    _ => return Err(self.unknown_chip(*bv)),
                };
                self.dense.scan_bits += bits.len() as u64;
                let (pos_var, idx_var) = (*pos_var as usize, *idx_var as usize);
                let saved_pos = self.env[pos_var];
                let saved_idx = self.env[idx_var];
                let mut pos = 0u64;
                for (idx, set) in bits.iter().enumerate() {
                    if *set {
                        self.env[pos_var] = Some(pos as f64);
                        self.env[idx_var] = Some(idx as f64);
                        self.dense.scan_emits += 1;
                        body(self)?;
                        pos += 1;
                    }
                }
                self.env[pos_var] = saved_pos;
                self.env[idx_var] = saved_idx;
                Ok(())
            }
            ResolvedCounter::Scan2 {
                op,
                bv_a,
                bv_b,
                a_pos_var,
                b_pos_var,
                out_pos_var,
                idx_var,
            } => {
                let a = match &self.on_chip[*bv_a as usize] {
                    Some(OnChip {
                        mem: Mem::Bits(b), ..
                    }) => b.clone(),
                    _ => return Err(self.unknown_chip(*bv_a)),
                };
                let b = match &self.on_chip[*bv_b as usize] {
                    Some(OnChip {
                        mem: Mem::Bits(bb), ..
                    }) => bb.clone(),
                    _ => return Err(self.unknown_chip(*bv_b)),
                };
                let dim = a.len().max(b.len());
                self.dense.scan_bits += 2 * dim as u64;
                let vars = [
                    *a_pos_var as usize,
                    *b_pos_var as usize,
                    *out_pos_var as usize,
                    *idx_var as usize,
                ];
                let saved = vars.map(|v| self.env[v]);
                let (mut ap, mut bp, mut op_count) = (0u64, 0u64, 0u64);
                for idx in 0..dim {
                    let has_a = a.get(idx).copied().unwrap_or(false);
                    let has_b = b.get(idx).copied().unwrap_or(false);
                    let combined = match op {
                        ScanOp::And => has_a && has_b,
                        ScanOp::Or => has_a || has_b,
                    };
                    if combined {
                        self.env[vars[0]] = Some(if has_a { ap as f64 } else { -1.0 });
                        self.env[vars[1]] = Some(if has_b { bp as f64 } else { -1.0 });
                        self.env[vars[2]] = Some(op_count as f64);
                        self.env[vars[3]] = Some(idx as f64);
                        self.dense.scan_emits += 1;
                        body(self)?;
                        op_count += 1;
                    }
                    if has_a {
                        ap += 1;
                    }
                    if has_b {
                        bp += 1;
                    }
                }
                for (v, old) in vars.iter().zip(saved) {
                    self.env[*v] = old;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Counter, MemDecl, SExpr, SpatialStmt};
    use crate::reference::ReferenceMachine;

    /// Runs `program` on both engines with the given DRAM inputs and
    /// asserts byte-identical DRAM contents plus identical statistics
    /// (or identical errors).
    fn assert_engines_agree(program: &SpatialProgram, writes: &[(&str, Vec<f64>)]) -> ExecStats {
        let mut fast = Machine::new(program);
        let mut reference = ReferenceMachine::new(program);
        for (name, data) in writes {
            fast.write_dram(name, data).unwrap();
            reference.write_dram(name, data).unwrap();
        }
        let fast_result = fast.run(program);
        let ref_result = reference.run(program);
        assert_eq!(fast_result, ref_result, "run results diverge");
        for d in &program.drams {
            let a = fast.dram(&d.name).unwrap();
            let b = reference.dram(&d.name).unwrap();
            let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "DRAM {} diverges", d.name);
        }
        assert_eq!(fast.stats(), reference.stats(), "stats diverge");
        fast_result.unwrap_or_else(|_| fast.stats().clone())
    }

    #[test]
    fn doc_example_doubles_vector() {
        let mut p = SpatialProgram::new("double");
        p.add_dram("x", 4);
        p.add_dram("y", 4);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("xs", MemKind::Sram, 4)));
        p.accel.push(SpatialStmt::Load {
            dst: "xs".into(),
            src: "x".into(),
            start: SExpr::Const(0.0),
            end: SExpr::Const(4.0),
            par: 1,
        });
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(4.0)),
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "y".into(),
                index: SExpr::var("i"),
                value: SExpr::mul(SExpr::read("xs", SExpr::var("i")), SExpr::Const(2.0)),
            }],
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        m.write_dram("x", &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let stats = m.run(&p).unwrap();
        assert_eq!(m.dram("y").unwrap(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(stats.trips(0), 4);
        assert_eq!(stats.dram_reads["x"], 4);
        assert_eq!(stats.dram_random_writes, 4);
        assert_engines_agree(&p, &[("x", vec![1.0, 2.0, 3.0, 4.0])]);
    }

    #[test]
    fn reduce_accumulates() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc", MemKind::Reg, 1)));
        p.accel.push(SpatialStmt::Reduce {
            id: 0,
            reg: "acc".into(),
            counter: Counter::range_to("i", SExpr::Const(5.0)),
            par: 1,
            body: vec![],
            expr: SExpr::var("i"),
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::RegRead("acc".into()),
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 10.0);
        assert_eq!(m.stats().reduce_elems, 5);
        assert_eq!(m.stats().trips(0), 5);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn load_to_sram_and_fifo() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("d", 4);
        p.add_dram("out", 4);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 4)));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 16)));
        p.accel.push(SpatialStmt::Load {
            dst: "s".into(),
            src: "d".into(),
            start: SExpr::Const(1.0),
            end: SExpr::Const(3.0),
            par: 1,
        });
        p.accel.push(SpatialStmt::Load {
            dst: "f".into(),
            src: "d".into(),
            start: SExpr::Const(0.0),
            end: SExpr::Const(2.0),
            par: 1,
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read("s", SExpr::Const(0.0)),
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(1.0),
            value: SExpr::Deq("f".into()),
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(2.0),
            value: SExpr::Deq("f".into()),
        });
        let mut m = Machine::new(&p);
        m.write_dram("d", &[1.0, 2.0, 3.0, 4.0]).unwrap();
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..3], &[2.0, 1.0, 2.0]);
        assert_eq!(m.stats().dram_reads["d"], 4);
        assert_eq!(m.stats().fifo_deqs, 2);
        assert_engines_agree(&p, &[("d", vec![1.0, 2.0, 3.0, 4.0])]);
    }

    #[test]
    fn fifo_underflow_detected() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 4)));
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Deq("f".into()),
        });
        let mut m = Machine::new(&p);
        assert_eq!(m.run(&p), Err(RunError::FifoUnderflow("f".into())));
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn scan1_visits_set_bits() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 8);
        p.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "bv",
            MemKind::BitVector,
            8,
        )));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("crd", MemKind::Fifo, 8)));
        for c in [1.0, 4.0, 6.0] {
            p.accel.push(SpatialStmt::Enq {
                fifo: "crd".into(),
                value: SExpr::Const(c),
            });
        }
        p.accel.push(SpatialStmt::GenBitVector {
            dst: "bv".into(),
            src: "crd".into(),
            src_start: SExpr::Const(0.0),
            count: SExpr::Const(3.0),
            dim: SExpr::Const(8.0),
        });
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan1 {
                bv: "bv".into(),
                pos_var: "p".into(),
                idx_var: "i".into(),
            },
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::var("p"),
                value: SExpr::var("i"),
            }],
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..3], &[1.0, 4.0, 6.0]);
        assert_eq!(m.stats().scan_emits, 3);
        assert_eq!(m.stats().scan_bits, 8);
        assert_engines_agree(&p, &[]);
    }

    /// The worked example of Fig. 7: A crd {1,2,5}, B crd {0,2,3,8},
    /// union produces out crd {0,1,2,3,5,8} with the pattern indices
    /// shown in the figure (X rendered as -1).
    #[test]
    fn scan2_union_matches_fig7() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out_crd", 9);
        p.add_dram("out_tuples", 16);
        for (bv, coords) in [
            ("bvA", vec![1.0, 2.0, 5.0]),
            ("bvB", vec![0.0, 2.0, 3.0, 8.0]),
        ] {
            p.accel
                .push(SpatialStmt::Alloc(MemDecl::new(bv, MemKind::BitVector, 9)));
            let fifo = format!("{bv}_crd");
            p.accel
                .push(SpatialStmt::Alloc(MemDecl::new(&fifo, MemKind::Fifo, 9)));
            for c in &coords {
                p.accel.push(SpatialStmt::Enq {
                    fifo: fifo.clone(),
                    value: SExpr::Const(*c),
                });
            }
            p.accel.push(SpatialStmt::GenBitVector {
                dst: bv.into(),
                src: fifo,
                src_start: SExpr::Const(0.0),
                count: SExpr::Const(coords.len() as f64),
                dim: SExpr::Const(9.0),
            });
        }
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan2 {
                op: ScanOp::Or,
                bv_a: "bvA".into(),
                bv_b: "bvB".into(),
                a_pos_var: "pA".into(),
                b_pos_var: "pB".into(),
                out_pos_var: "pO".into(),
                idx_var: "i".into(),
            },
            par: 1,
            body: vec![
                SpatialStmt::StoreScalar {
                    dst: "out_crd".into(),
                    index: SExpr::var("pO"),
                    value: SExpr::var("i"),
                },
                SpatialStmt::StoreScalar {
                    dst: "out_tuples".into(),
                    index: SExpr::mul(SExpr::var("pO"), SExpr::Const(2.0)),
                    value: SExpr::var("pA"),
                },
                SpatialStmt::StoreScalar {
                    dst: "out_tuples".into(),
                    index: SExpr::add(
                        SExpr::mul(SExpr::var("pO"), SExpr::Const(2.0)),
                        SExpr::Const(1.0),
                    ),
                    value: SExpr::var("pB"),
                },
            ],
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(
            &m.dram("out_crd").unwrap()[..6],
            &[0.0, 1.0, 2.0, 3.0, 5.0, 8.0]
        );
        assert_eq!(
            &m.dram("out_tuples").unwrap()[..12],
            &[
                -1.0, 0.0, // i=0: only B
                0.0, -1.0, // i=1: only A
                1.0, 1.0, // i=2: both
                -1.0, 2.0, // i=3: only B
                2.0, -1.0, // i=5: only A
                -1.0, 3.0, // i=8: only B
            ]
        );
        assert_eq!(m.stats().scan_emits, 6);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn rmw_add_into_sparse_sram_counts_shuffle() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "acc",
            MemKind::SparseSram,
            4,
        )));
        for v in [1.5, 1.0] {
            p.accel.push(SpatialStmt::RmwAdd {
                mem: "acc".into(),
                index: SExpr::Const(2.0),
                value: SExpr::Const(v),
            });
        }
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read("acc", SExpr::Const(2.0)),
        });
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 2.5);
        assert_eq!(m.stats().shuffle_accesses, 2);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn sparse_dram_random_read() {
        let mut p = SpatialProgram::new("t");
        p.add_sparse_dram("x", 8);
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read_random("x", SExpr::Const(2.0)),
        });
        let mut m = Machine::new(&p);
        m.write_dram("x", &[0.0, 10.0, 20.0]).unwrap();
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 20.0);
        assert_eq!(m.stats().dram_random_reads, 1);
        assert_eq!(m.dram_kind("x"), Some(MemKind::SparseDram));
        assert_engines_agree(&p, &[("x", vec![0.0, 10.0, 20.0])]);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("d", 2);
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read("d", SExpr::Const(5.0)),
        });
        let mut m = Machine::new(&p);
        let err = m.run(&p).unwrap_err();
        assert!(matches!(err, RunError::OutOfBounds { .. }));
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn stream_store_drains_fifo() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 8);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 8)));
        for v in [5.0, 6.0, 7.0] {
            p.accel.push(SpatialStmt::Enq {
                fifo: "f".into(),
                value: SExpr::Const(v),
            });
        }
        p.accel.push(SpatialStmt::StreamStore {
            dst: "out".into(),
            offset: SExpr::Const(2.0),
            fifo: "f".into(),
            len: SExpr::Const(3.0),
        });
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[2..5], &[5.0, 6.0, 7.0]);
        assert_eq!(m.stats().dram_writes["out"], 3);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn nested_foreach_trips_recorded() {
        let mut p = SpatialProgram::new("t");
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(3.0)),
            par: 2,
            body: vec![SpatialStmt::Foreach {
                id: 1,
                counter: Counter::range_to("j", SExpr::Const(4.0)),
                par: 1,
                body: vec![],
            }],
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        let stats = m.run(&p).unwrap();
        assert_eq!(stats.trips(0), 3);
        assert_eq!(stats.trips(1), 12);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn alloc_in_loop_resets() {
        // A register allocated inside a loop body starts at zero each
        // iteration.
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 4);
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(3.0)),
            par: 1,
            body: vec![
                SpatialStmt::Alloc(MemDecl::new("r", MemKind::Reg, 1)),
                SpatialStmt::SetReg {
                    reg: "r".into(),
                    value: SExpr::add(SExpr::RegRead("r".into()), SExpr::var("i")),
                },
                SpatialStmt::StoreScalar {
                    dst: "out".into(),
                    index: SExpr::var("i"),
                    value: SExpr::RegRead("r".into()),
                },
            ],
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..3], &[0.0, 1.0, 2.0]);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn unbound_var_reported() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::var("ghost"),
        });
        let mut m = Machine::new(&p);
        assert_eq!(m.run(&p), Err(RunError::UnboundVar("ghost".into())));
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::add(SExpr::Const(1.0), SExpr::Const(2.0)),
        });
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.stats().alu_ops, 1);
        let stats = m.run(&p).unwrap();
        assert_eq!(stats.alu_ops, 2);
        assert_eq!(stats.dram_random_writes, 2);
    }

    #[test]
    fn run_relinks_a_different_program() {
        let mut p1 = SpatialProgram::new("a");
        p1.add_dram("x", 2);
        p1.accel.push(SpatialStmt::StoreScalar {
            dst: "x".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Const(7.0),
        });
        // Same DRAM, different statement — and a reference to a DRAM the
        // machine never allocated.
        let mut p2 = SpatialProgram::new("b");
        p2.add_dram("x", 2);
        p2.accel.push(SpatialStmt::StoreScalar {
            dst: "x".into(),
            index: SExpr::Const(1.0),
            value: SExpr::Const(9.0),
        });
        let mut m = Machine::new(&p1);
        m.run(&p1).unwrap();
        m.run(&p2).unwrap();
        assert_eq!(m.dram("x").unwrap(), &[7.0, 9.0]);

        let mut p3 = SpatialProgram::new("c");
        p3.add_dram("ghost", 2);
        p3.accel.push(SpatialStmt::StoreScalar {
            dst: "ghost".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Const(1.0),
        });
        // `ghost` was not declared when the machine was built: its slots
        // exist after re-linking but carry no storage, like the
        // reference engine's behavior.
        assert_eq!(m.run(&p3), Err(RunError::UnknownMemory("ghost".into())));
    }

    #[test]
    fn write_dram_usize_converts_in_place() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("pos", 4);
        let mut m = Machine::new(&p);
        m.write_dram_usize("pos", &[0, 2, 5]).unwrap();
        assert_eq!(&m.dram("pos").unwrap()[..3], &[0.0, 2.0, 5.0]);
        assert_eq!(m.dram_usize("pos").unwrap(), vec![0, 2, 5, 0]);
        let mut buf = Vec::new();
        m.read_dram_usize_into("pos", 2, &mut buf).unwrap();
        assert_eq!(buf, vec![0, 2]);
        assert!(m.read_dram_usize_into("pos", 9, &mut buf).is_none());
        assert!(m.write_dram_usize("ghost", &[1]).is_err());
    }

    #[test]
    fn zero_length_load_still_creates_stats_entry() {
        // The reference engine creates a dram_reads entry even for a
        // zero-word load; the fold must reproduce that.
        let mut p = SpatialProgram::new("t");
        p.add_dram("d", 4);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 4)));
        p.accel.push(SpatialStmt::Load {
            dst: "s".into(),
            src: "d".into(),
            start: SExpr::Const(2.0),
            end: SExpr::Const(2.0),
            par: 1,
        });
        let stats = assert_engines_agree(&p, &[]);
        assert_eq!(stats.dram_reads.get("d"), Some(&0));
    }
}
