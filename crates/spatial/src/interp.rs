//! Resolved-slot interpreter for the Spatial IR.
//!
//! Executes a [`SpatialProgram`] against DRAM contents. This provides the
//! executable semantics that the authors obtained from the Spatial/SARA
//! toolchain: compiled kernels are checked for correctness against the CIN
//! oracle by running them here, and the [`ExecStats`] event trace (elements
//! processed per pattern, DRAM words moved, scanner bits examined, shuffle
//! accesses, ALU operations) feeds the Capstan cycle simulator.
//!
//! # Execution engines
//!
//! [`Machine::new`] runs the two-stage compilation pipeline: the
//! [`crate::resolve`] link pass interns every memory, register, FIFO,
//! and variable name into dense `u32` slots and flattens every
//! expression tree into one arena, and the [`crate::bytecode`] pass
//! lowers the resolved tree into a flat op vector with explicit jump
//! targets. [`Machine::run`] executes that bytecode with a program
//! counter and a dense frame stack — no statement recursion, no
//! per-iteration closures — over `Vec`-indexed state, so the hot path
//! never hashes a string or chases a statement tree. Dense counters are
//! folded back into the string-keyed [`ExecStats`] shape when
//! [`Machine::run`] finishes.
//!
//! Two older engines survive as differential-testing oracles: the PR-1
//! recursive resolved-tree walker as [`Machine::run_tree`] (same
//! machine state, same compiled artifact) and the original name-keyed
//! tree walker as [`crate::ReferenceMachine`]. Differential tests
//! assert all three produce byte-identical DRAM contents and identical
//! [`ExecStats`], and `cargo bench --bench interp` measures the
//! speedups.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::bytecode::{CompiledProgram, EOp, FusedOp, GatherRef, Op, OpId, Operand, VecClass};
use crate::faults;
use crate::ir::{BinSOp, MemKind, ScanOp, SpatialProgram};
use crate::resolve::{
    bit_words_for, ExprId, ResolvedCounter, ResolvedExpr, ResolvedProgram, ResolvedStmt, Slot,
    SymbolTable,
};
use crate::vector;

/// Errors raised while executing a Spatial program.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A memory name was referenced but never declared/allocated.
    UnknownMemory(String),
    /// An access fell outside a memory's capacity.
    OutOfBounds {
        /// Memory name.
        mem: String,
        /// Offending word index.
        index: i64,
        /// Memory capacity in words.
        len: usize,
    },
    /// A FIFO was dequeued while empty.
    FifoUnderflow(String),
    /// A variable was read before being bound.
    UnboundVar(String),
    /// A negative index or length was computed.
    NegativeIndex {
        /// Where the negative value appeared.
        context: String,
        /// The value.
        value: f64,
    },
    /// A [`DramImage`] built for one compiled program was bound to a
    /// machine running an incompatible one.
    ImageMismatch,
    /// A [`RunBudget`] resource was exhausted mid-run. The machine's
    /// state is abandoned partway through the program — callers must
    /// treat it as poisoned (the [`crate::MachinePool`] quarantines it
    /// automatically).
    BudgetExceeded {
        /// Which budgeted resource ran out.
        resource: BudgetResource,
        /// The configured limit (steps, words, or deadline millis;
        /// `0` for cancellation, which has no numeric limit).
        limit: u64,
    },
    /// A fault injected by the [`crate::faults`] harness fired. Only
    /// produced when a [`crate::faults::FaultPlan`] is installed —
    /// production runs never see this variant.
    InjectedFault {
        /// Where the injected fault fired (step count or alloc site).
        site: String,
    },
}

/// The resource that a [`RunError::BudgetExceeded`] ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// Interpreter steps (loop-body executions / "fuel").
    Steps,
    /// DRAM words touched (bulk + random reads and writes).
    DramWords,
    /// The wall-clock deadline passed.
    Deadline,
    /// The run's [`CancelFlag`] was raised.
    Cancelled,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetResource::Steps => write!(f, "step budget"),
            BudgetResource::DramWords => write!(f, "DRAM word budget"),
            BudgetResource::Deadline => write!(f, "deadline"),
            BudgetResource::Cancelled => write!(f, "cancellation"),
        }
    }
}

/// A shared cancellation flag: one cheap atomic, checked on loop
/// back-edges (amortized — every [`INTERRUPT_MASK`]+1 steps on the hot
/// paths), so an external controller can stop a runaway run without
/// killing the thread. Clone freely; all clones observe one flag.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag: every machine running under a [`RunBudget`]
    /// carrying this flag aborts with
    /// [`RunError::BudgetExceeded`]`{resource: Cancelled, ..}` at its
    /// next back-edge check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resource limits for one run, turning runaway kernels into structured
/// [`RunError::BudgetExceeded`] results instead of hangs. The default
/// is unlimited on every axis, and an unlimited budget costs nothing
/// measurable on the interpreter hot paths (fuel lives in a register,
/// interrupt checks amortize over [`INTERRUPT_MASK`]+1 steps).
///
/// A "step" is one loop-body execution — exactly what
/// [`ExecStats::node_trips`] counts, summed over nodes — so the
/// completes-or-aborts predicate is identical across all three
/// execution engines: a run finishes iff its total trip count fits the
/// fuel. Budgets are armed at [`Machine::run`]/[`Machine::run_tree`]
/// entry and persist on the machine until [`Machine::reset`] (pool
/// check-in clears them, so recycled machines never inherit limits).
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Maximum loop-body executions ("fuel"); `None` = unlimited.
    pub max_steps: Option<u64>,
    /// Maximum DRAM words touched (bulk + random, reads + writes).
    pub max_dram_words: Option<u64>,
    /// Wall-clock deadline, measured from run entry.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation flag, checked on loop back-edges.
    pub cancel: Option<CancelFlag>,
}

impl RunBudget {
    /// An explicitly unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Builder: cap interpreter steps.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Builder: cap DRAM words touched.
    pub fn with_max_dram_words(mut self, words: u64) -> Self {
        self.max_dram_words = Some(words);
        self
    }

    /// Builder: set a wall-clock deadline from run entry.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder: attach a cancellation flag.
    pub fn with_cancel(mut self, cancel: CancelFlag) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Whether any axis is limited (used to skip arming entirely).
    pub fn is_limited(&self) -> bool {
        self.max_steps.is_some()
            || self.max_dram_words.is_some()
            || self.deadline.is_some()
            || self.cancel.is_some()
    }
}

/// Deadline/cancel checks amortize: they run when `fuel & INTERRUPT_MASK
/// == 0`, i.e. every 4096 steps, keeping `Instant::now()` and the shared
/// atomic off the per-iteration path.
pub(crate) const INTERRUPT_MASK: u64 = 0xFFF;

/// Default for [`Machine::set_elide_mode`]: on unless
/// `STARDUST_ELIDE=0` (mirrors the vector tier's env toggle).
fn elide_env_default() -> bool {
    !matches!(std::env::var("STARDUST_ELIDE"), Ok(v) if v == "0")
}

/// What hitting zero fuel means: the step budget, or a one-shot
/// injected fault from the [`crate::faults`] harness min-folded into
/// the same countdown (zero extra hot-path cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FuelCause {
    Budget,
    InjectedError,
    InjectedPanic,
}

/// Builds the out-of-fuel outcome. `#[cold]` keeps the construction
/// (and the injected-fault consumption) off the hot loops.
#[cold]
pub(crate) fn exhausted_fuel(cause: FuelCause, limit: u64) -> RunError {
    match cause {
        FuelCause::Budget => RunError::BudgetExceeded {
            resource: BudgetResource::Steps,
            limit,
        },
        FuelCause::InjectedError => {
            faults::consume_error();
            RunError::InjectedFault {
                site: format!("step {limit}"),
            }
        }
        FuelCause::InjectedPanic => {
            faults::consume_panic();
            panic!("injected fault: forced panic at step {limit}")
        }
    }
}

/// The amortized deadline/cancel check shared by every engine.
#[cold]
pub(crate) fn check_interrupts(
    deadline_at: Option<Instant>,
    deadline_ms: u64,
    cancel: Option<&CancelFlag>,
) -> Result<(), RunError> {
    if let Some(c) = cancel {
        if c.is_cancelled() {
            return Err(RunError::BudgetExceeded {
                resource: BudgetResource::Cancelled,
                limit: 0,
            });
        }
    }
    if let Some(d) = deadline_at {
        if Instant::now() >= d {
            return Err(RunError::BudgetExceeded {
                resource: BudgetResource::Deadline,
                limit: deadline_ms,
            });
        }
    }
    Ok(())
}

/// [`Machine::charge_step`] over already-destructured machine fields,
/// for call sites (the frame advancer) that hold the machine split into
/// disjoint borrows.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn charge_step_parts(
    fuel: &mut u64,
    cause: FuelCause,
    limit: u64,
    interrupts: bool,
    deadline_at: Option<Instant>,
    deadline_ms: u64,
    cancel: Option<&CancelFlag>,
) -> Result<(), RunError> {
    if *fuel == 0 {
        return Err(exhausted_fuel(cause, limit));
    }
    *fuel -= 1;
    if interrupts && *fuel & INTERRUPT_MASK == 0 {
        check_interrupts(deadline_at, deadline_ms, cancel)?;
    }
    Ok(())
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownMemory(m) => write!(f, "unknown memory {m}"),
            RunError::OutOfBounds { mem, index, len } => {
                write!(f, "index {index} out of bounds for {mem} of {len} words")
            }
            RunError::FifoUnderflow(m) => write!(f, "dequeue from empty FIFO {m}"),
            RunError::UnboundVar(v) => write!(f, "unbound variable {v}"),
            RunError::NegativeIndex { context, value } => {
                write!(f, "negative index {value} in {context}")
            }
            RunError::ImageMismatch => {
                write!(
                    f,
                    "DRAM image does not match the machine's compiled program"
                )
            }
            RunError::BudgetExceeded { resource, limit } => match resource {
                BudgetResource::Steps => write!(f, "run exceeded its step budget of {limit}"),
                BudgetResource::DramWords => {
                    write!(f, "run exceeded its DRAM budget of {limit} words")
                }
                BudgetResource::Deadline => {
                    write!(f, "run exceeded its deadline of {limit} ms")
                }
                BudgetResource::Cancelled => write!(f, "run was cancelled"),
            },
            RunError::InjectedFault { site } => {
                write!(f, "injected fault fired at {site}")
            }
        }
    }
}

impl Error for RunError {}

/// Bytes per simulated DRAM word. The paper's accelerator model (and
/// its bandwidth math) moves 32-bit words — indices and values alike —
/// so every word of traffic counts four bytes, even though the
/// interpreter stores words as `f64` for convenience.
pub const DRAM_WORD_BYTES: u64 = 4;

/// Event counts collected during execution, the input to cycle modeling.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Words bulk-read per DRAM array.
    pub dram_reads: HashMap<String, u64>,
    /// Words bulk-written per DRAM array.
    pub dram_writes: HashMap<String, u64>,
    /// Single-element (random) DRAM reads.
    pub dram_random_reads: u64,
    /// Single-element (random) DRAM writes.
    pub dram_random_writes: u64,
    /// Iterations executed per pattern node id, dense (index = node id,
    /// trailing zeros trimmed so the representation is canonical).
    pub node_trips: Vec<u64>,
    /// DRAM words read by loads under each pattern node id (dense,
    /// trailing zeros trimmed).
    pub node_dram_read_words: Vec<u64>,
    /// DRAM words written by stores under each pattern node id (dense,
    /// trailing zeros trimmed).
    pub node_dram_write_words: Vec<u64>,
    /// Scalar ALU operations evaluated.
    pub alu_ops: u64,
    /// On-chip affine memory reads.
    pub sram_reads: u64,
    /// On-chip memory writes.
    pub sram_writes: u64,
    /// Random (data-dependent) on-chip accesses — served by the shuffle
    /// network when crossing lanes.
    pub shuffle_accesses: u64,
    /// FIFO enqueues.
    pub fifo_enqs: u64,
    /// FIFO dequeues.
    pub fifo_deqs: u64,
    /// Bits examined by scanners.
    pub scan_bits: u64,
    /// Iterations emitted by scanners (set bits / combined set bits).
    pub scan_emits: u64,
    /// Bits written while generating bit vectors.
    pub bv_gen_bits: u64,
    /// Elements folded by `Reduce` patterns.
    pub reduce_elems: u64,
}

impl ExecStats {
    /// Total words bulk-read from DRAM.
    pub fn total_dram_read_words(&self) -> u64 {
        self.dram_reads.values().sum()
    }

    /// Total words bulk-written to DRAM.
    pub fn total_dram_write_words(&self) -> u64 {
        self.dram_writes.values().sum()
    }

    /// Total DRAM traffic in bytes ([`DRAM_WORD_BYTES`]-sized words,
    /// plus random accesses).
    pub fn total_dram_bytes(&self) -> u64 {
        DRAM_WORD_BYTES
            * (self.total_dram_read_words()
                + self.total_dram_write_words()
                + self.dram_random_reads
                + self.dram_random_writes)
    }

    /// Iterations of a given pattern node.
    pub fn trips(&self, node: usize) -> u64 {
        self.node_trips.get(node).copied().unwrap_or(0)
    }

    /// Adds `delta` to a dense node-indexed counter, growing the vector
    /// on demand while keeping the no-trailing-zeros canonical form
    /// (a zero delta never creates entries).
    pub fn bump_node(counts: &mut Vec<u64>, node: usize, delta: u64) {
        if delta == 0 && node >= counts.len() {
            return;
        }
        if counts.len() <= node {
            counts.resize(node + 1, 0);
        }
        counts[node] += delta;
    }

    /// Elementwise-adds a dense node-indexed counter into another
    /// (merging stage statistics).
    pub fn merge_node(into: &mut Vec<u64>, from: &[u64]) {
        if into.len() < from.len() {
            into.resize(from.len(), 0);
        }
        for (d, s) in into.iter_mut().zip(from) {
            *d += s;
        }
    }
}

/// Allocation state of one on-chip slot: what the slot currently is.
/// This is the only discriminant left on the memory hot path — the
/// storage itself lives in the machine's flat arenas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChipTag {
    /// Never allocated (touching it reproduces `UnknownMemory`).
    None,
    /// Addressable words (SRAM / SparseSRAM).
    Words,
    /// A FIFO ring over the slot's word region.
    Fifo,
    /// A single register word.
    Reg,
    /// A packed bit vector in the bitset arena.
    Bits,
}

/// Flat per-slot on-chip state: the current allocation tag/kind plus
/// the slot's region inside the word and bitset arenas. Regions start
/// at the static [`crate::resolve::ArenaLayout`] homes and move to the
/// end of an arena only on dynamic growth (FIFO overflow, bit-vector
/// regeneration past the declared dimension, re-linking).
///
/// Field roles by tag: `len` is the logical word length for `Words`,
/// the element count for `Fifo`, and the logical bit length for
/// `Bits`; `head` is the ring read position for `Fifo`.
#[derive(Debug, Clone, Copy)]
struct ChipState {
    tag: ChipTag,
    kind: MemKind,
    woff: usize,
    wcap: usize,
    boff: usize,
    bcap: usize,
    len: usize,
    head: usize,
}

impl ChipState {
    const UNMAPPED: ChipState = ChipState {
        tag: ChipTag::None,
        kind: MemKind::Dram,
        woff: 0,
        wcap: 0,
        boff: 0,
        bcap: 0,
        len: 0,
        head: 0,
    };
}

/// Per-slot DRAM state: where the slot's words live inside the
/// machine's flat DRAM arena. The arena is two segments — the shared
/// copy-on-write input segment (arrays the program never writes) and
/// the machine-owned output segment — and a slot's segment residency is
/// decided statically by the [`crate::resolve::DramLayout`].
#[derive(Debug, Clone, Copy)]
struct DramState {
    /// Whether the slot is backed by storage at all (`false` reproduces
    /// `UnknownMemory` at touch time).
    mapped: bool,
    /// `true` → input segment (shared, CoW); `false` → output segment.
    input: bool,
    kind: MemKind,
    /// First word within the slot's segment.
    off: usize,
    /// Declared capacity in words.
    len: usize,
}

impl DramState {
    const UNMAPPED: DramState = DramState {
        mapped: false,
        input: false,
        kind: MemKind::Dram,
        off: 0,
        len: 0,
    };
}

/// The words of a DRAM slot, read-only. Free function (not a method) so
/// callers can split-borrow the segments against other machine fields.
#[inline(always)]
fn dram_words<'a>(input: &'a [f64], out: &'a [f64], st: DramState) -> Option<&'a [f64]> {
    if !st.mapped {
        return None;
    }
    let seg = if st.input { input } else { out };
    Some(&seg[st.off..st.off + st.len])
}

/// The words of a DRAM slot, writable. A write targeting the shared
/// input segment privatizes it first (`Arc::make_mut`): one segment
/// memcpy on the first such write, nothing afterwards — the
/// copy-on-write half of [`DramImage`] sharing.
#[inline(always)]
fn dram_words_mut<'a>(
    input: &'a mut Arc<Vec<f64>>,
    out: &'a mut Vec<f64>,
    st: DramState,
) -> Option<&'a mut [f64]> {
    if !st.mapped {
        return None;
    }
    let seg: &mut Vec<f64> = if st.input { Arc::make_mut(input) } else { out };
    Some(&mut seg[st.off..st.off + st.len])
}

/// An immutable, fully converted DRAM input image for one compiled
/// program: every input (never-written) array's words laid out per the
/// program's [`crate::resolve::DramLayout`], shared behind an `Arc`.
///
/// Build one per (program, dataset) pair with [`DramImage::builder`] —
/// the `usize → f64` conversion of `pos`/`crd` arrays happens exactly
/// once, here — then bind it to as many machines as needed with
/// [`Machine::bind_image`]: each bind is an `Arc` clone of the input
/// segment plus a zero-fill of the output segment, O(outputs) instead
/// of O(nnz). Machines copy the shared segment only if something
/// actually writes it (rare; most kernels write only their outputs).
#[derive(Debug, Clone)]
pub struct DramImage {
    compiled: Arc<CompiledProgram>,
    input: Arc<Vec<f64>>,
    /// Initial contents bound into written (output-segment) arrays,
    /// as (segment offset, words). Rare — an in-place-updated operand —
    /// and re-applied per bind, so the cost stays O(outputs).
    output_init: Vec<(usize, Vec<f64>)>,
    /// Word-mix hash of the built image (input-segment word bits plus
    /// the output-init records), computed once at
    /// [`DramImageBuilder::finish`]: a content-addressed identity for
    /// the dataset as this program lays it out.
    content_hash: u64,
}

/// Mixes one 64-bit word into a running content hash (splitmix64-style
/// finalizer, a few ALU ops per word) — the shared content-hash
/// primitive behind [`DramImage::content_hash`] and the pipeline's
/// content-addressed image-cache keys, kept in one place so the two
/// identities can never drift apart.
#[inline]
pub fn mix64(h: &mut u64, v: u64) {
    let mut x = h.wrapping_add(0x9e3779b97f4a7c15).wrapping_add(v);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    *h = x ^ (x >> 31);
}

impl DramImage {
    /// Starts building an image for `compiled`.
    pub fn builder(compiled: Arc<CompiledProgram>) -> DramImageBuilder {
        let input = vec![0.0; compiled.resolved().dram_layout.input_words];
        DramImageBuilder {
            compiled,
            input,
            output_init: Vec::new(),
        }
    }

    /// The shared input segment (pristine; machines never mutate it
    /// through the copy-on-write path).
    pub fn input_words(&self) -> &[f64] {
        &self.input
    }

    /// Content-addressed identity of the built image: a word-mix hash
    /// of every input-segment word's bits plus the output-init
    /// records. Two images of one program hash equal iff they bind
    /// machines to identical DRAM. This is an **audit handle**, not
    /// the cache key — the pipeline's image cache derives its keys
    /// from the raw inputs *before* building (so a lookup never pays a
    /// build), and regression tests cross-check the two identities.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Whether this image can bind to a machine running `compiled`:
    /// the identical artifact, or an equal program compiled
    /// separately.
    fn matches(&self, compiled: &Arc<CompiledProgram>) -> bool {
        Arc::ptr_eq(&self.compiled, compiled)
            || (self.compiled.source() == compiled.source()
                && self.compiled.resolved().dram_layout == compiled.resolved().dram_layout)
    }

    /// Whether this image's *DRAM story* matches `compiled` even if
    /// the program bodies differ: equal DRAM declarations interned in
    /// declaration order give identical slot numbering, and an equal
    /// computed [`crate::resolve::DramLayout`] places every slot's
    /// words at the same segment offsets, so the image's words mean
    /// the same thing to both programs. Shard sub-programs rewrite
    /// loop bounds (and rename) but keep the DRAM story intact, and
    /// bind the parent's image through exactly this clause.
    pub(crate) fn layout_matches(&self, compiled: &Arc<CompiledProgram>) -> bool {
        self.matches(compiled)
            || (self.compiled.source().drams == compiled.source().drams
                && self.compiled.resolved().dram_layout == compiled.resolved().dram_layout)
    }
}

/// Writes input tensors into a [`DramImage`] under construction.
/// Arrays are addressed by DRAM slot (see [`SymbolTable::dram_slot`]) —
/// resolve names once at compile time, not per bind.
#[derive(Debug, Clone)]
pub struct DramImageBuilder {
    compiled: Arc<CompiledProgram>,
    input: Vec<f64>,
    output_init: Vec<(usize, Vec<f64>)>,
}

impl DramImageBuilder {
    fn region(&self, slot: Slot, len: usize) -> Result<DramState, RunError> {
        let layout = &self.compiled.resolved().dram_layout;
        let r = layout
            .drams
            .get(slot as usize)
            .filter(|r| r.mapped)
            .ok_or_else(|| {
                RunError::UnknownMemory(self.compiled.syms().dram_name(slot).to_string())
            })?;
        if len > r.size {
            return Err(RunError::OutOfBounds {
                mem: self.compiled.syms().dram_name(slot).to_string(),
                index: len as i64,
                len: r.size,
            });
        }
        Ok(DramState {
            mapped: true,
            input: !r.written,
            kind: r.kind,
            off: r.offset,
            len: r.size,
        })
    }

    /// Writes `data` to the head of the slot's array, exactly like
    /// [`Machine::write_dram`].
    ///
    /// # Errors
    ///
    /// [`RunError::UnknownMemory`] / [`RunError::OutOfBounds`] as
    /// [`Machine::write_dram`] raises them.
    pub fn write(&mut self, slot: Slot, data: &[f64]) -> Result<(), RunError> {
        let st = self.region(slot, data.len())?;
        if st.input {
            self.input[st.off..st.off + data.len()].copy_from_slice(data);
        } else {
            self.output_init.push((st.off, data.to_vec()));
        }
        Ok(())
    }

    /// Writes an integer array (`pos`/`crd`), converting `usize → f64`
    /// once — the only place a dataset's index arrays are converted.
    ///
    /// # Errors
    ///
    /// Same as [`DramImageBuilder::write`].
    pub fn write_usize(&mut self, slot: Slot, data: &[usize]) -> Result<(), RunError> {
        let st = self.region(slot, data.len())?;
        if st.input {
            for (dst, &x) in self.input[st.off..].iter_mut().zip(data) {
                *dst = x as f64;
            }
        } else {
            self.output_init
                .push((st.off, data.iter().map(|&x| x as f64).collect()));
        }
        Ok(())
    }

    /// Freezes the image. The input segment becomes immutable and
    /// shareable, and the content hash is computed — the only pass
    /// over the built words.
    pub fn finish(self) -> DramImage {
        let mut h: u64 = 0x9e3779b97f4a7c15;
        for v in &self.input {
            mix64(&mut h, v.to_bits());
        }
        for (off, data) in &self.output_init {
            mix64(&mut h, *off as u64);
            mix64(&mut h, data.len() as u64);
            for v in data {
                mix64(&mut h, v.to_bits());
            }
        }
        DramImage {
            compiled: self.compiled,
            input: Arc::new(self.input),
            output_init: self.output_init,
            content_hash: h,
        }
    }
}

/// A gather operand pre-resolved for the scatter superinstruction: the
/// source slot's region, logical length, and shuffle attribution are
/// hoisted out of the loop (the loop body provably cannot change them).
#[derive(Debug, Clone, Copy)]
struct HotGather {
    /// Chip slot (for error naming).
    chip: Slot,
    /// Index variable slot.
    var: Slot,
    /// Hoisted word-arena offset.
    woff: usize,
    /// Hoisted logical length.
    len: usize,
    /// Whether each read counts a shuffle access.
    shuffle: bool,
}

/// Operand shapes the scatter superinstruction can evaluate without the
/// generic dispatch: literals, variables, single gathers, the
/// scale-by-gathered-value shape, and the `var op const` two-op
/// expression program.
#[derive(Debug, Clone, Copy)]
enum HotValue {
    Const(f64),
    Var(Slot),
    Gather(HotGather),
    BinGather { a: Slot, op: BinSOp, g: HotGather },
    VarConstBin { var: Slot, c: f64, op: BinSOp },
}

/// Per-statement index plan for the chunked scatter executors: how a
/// whole lane of destination indices materializes.
#[derive(Debug, Clone, Copy)]
enum IxPlan {
    /// Dense run: the loop variable itself indexes the destination.
    Iota,
    /// Dense run at a constant offset: `dst[v + c]`. Only `Add` with a
    /// non-negative integral `c` qualifies — those are exactly the
    /// cases where `index_of(op.apply(v, c))` equals `v as usize + c`
    /// for every in-window iteration.
    OffIota(usize),
    /// Scattered run: a unit-stride gather produces indices.
    Stream(HotGather),
}

/// Per-statement value plan for the chunked scatter executors.
#[derive(Debug, Clone, Copy)]
enum ValPlan {
    /// Loop-invariant value (constant or pre-read variable).
    Splat(f64),
    /// The loop variable itself.
    Iota,
    /// `v op c` computed per lane from the loop variable.
    IotaBin { op: BinSOp, c: f64 },
    /// A unit-stride gathered stream.
    Stream(HotGather),
    /// `x op stream[v]` with loop-invariant `x`.
    SplatBin { x: f64, op: BinSOp, g: HotGather },
}

impl IxPlan {
    /// Per-iteration statistic increments — compile-time constants of
    /// the plan, charged per chunk in one multiply.
    fn stats(&self) -> (u64, u64, u64) {
        match self {
            IxPlan::Iota => (0, 0, 0),
            IxPlan::OffIota(_) => (0, 0, 1),
            IxPlan::Stream(g) => (1, g.shuffle as u64, 0),
        }
    }

    /// The gather stream backing this plan, if any.
    fn stream(&self) -> Option<&HotGather> {
        match self {
            IxPlan::Stream(g) => Some(g),
            _ => None,
        }
    }
}

impl ValPlan {
    /// Per-iteration `(sram_reads, shuffles, alu_ops)` increments.
    fn stats(&self) -> (u64, u64, u64) {
        match self {
            ValPlan::Splat(_) | ValPlan::Iota => (0, 0, 0),
            ValPlan::IotaBin { .. } => (0, 0, 1),
            ValPlan::Stream(g) => (1, g.shuffle as u64, 0),
            ValPlan::SplatBin { g, .. } => (1, g.shuffle as u64, 1),
        }
    }

    /// The gather stream backing this plan, if any.
    fn stream(&self) -> Option<&HotGather> {
        match self {
            ValPlan::Stream(g) | ValPlan::SplatBin { g, .. } => Some(g),
            _ => None,
        }
    }
}

/// One statement of a multi-scatter body: the hoisted destination
/// region, the hot operand shapes (for the scalar step), and the lane
/// plans (for the chunked path).
struct ScatterStmt {
    dst: Slot,
    woff: usize,
    len: usize,
    hindex: HotValue,
    hvalue: HotValue,
    ix_plan: IxPlan,
    val_plan: ValPlan,
    accumulate: bool,
    dst_shuffle: bool,
}

/// Register-batched statistics for the scatter superinstruction,
/// flushed to the dense counters on every loop exit path.
#[derive(Debug, Default, Clone, Copy)]
struct HotCounters {
    sram_reads: u64,
    shuffles: u64,
    alu_ops: u64,
}

// --- FIFO ring primitives over a word-arena region -------------------
//
// A FIFO occupies `st.wcap` words at `st.woff`; `st.head` is the read
// position and `st.len` the element count. The queue itself is
// unbounded (matching the reference engine's `VecDeque`): when an
// enqueue would exceed the region, the ring relocates to a larger
// region at the end of the arena. Free functions (not methods) so
// callers can split-borrow `words` against other machine fields.

/// Makes room for `additional` more elements, relocating and
/// linearizing the ring at the end of the arena when the current
/// region is too small.
fn fifo_reserve(words: &mut Vec<f64>, st: &mut ChipState, additional: usize) {
    let need = st.len + additional;
    if need <= st.wcap {
        return;
    }
    let new_cap = need.next_power_of_two().max(4);
    let new_off = words.len();
    words.resize(new_off + new_cap, 0.0);
    for i in 0..st.len {
        words[new_off + i] = words[st.woff + (st.head + i) % st.wcap];
    }
    st.woff = new_off;
    st.wcap = new_cap;
    st.head = 0;
}

/// Appends one element. Capacity must have been reserved.
#[inline(always)]
fn fifo_push(words: &mut [f64], st: &mut ChipState, v: f64) {
    debug_assert!(st.len < st.wcap, "fifo_push without reserve");
    words[st.woff + (st.head + st.len) % st.wcap] = v;
    st.len += 1;
}

/// Pops the front element, or `None` when empty.
#[inline(always)]
fn fifo_pop(words: &[f64], st: &mut ChipState) -> Option<f64> {
    if st.len == 0 {
        return None;
    }
    let v = words[st.woff + st.head];
    st.head = (st.head + 1) % st.wcap;
    st.len -= 1;
    Some(v)
}

/// Drops all elements (the reference engine's drained-on-error state).
#[inline(always)]
fn fifo_clear(st: &mut ChipState) {
    st.head = 0;
    st.len = 0;
}

/// A scan snapshot: the packed bit-vector words memcpy'd out of the
/// bitset arena at loop entry, so the active scan keeps iterating its
/// entry-time image even if the body regenerates the bit vector.
/// `aw`/`bw` bound the words valid for this entry (the buffers are
/// pooled and may be longer from a previous, larger snapshot).
#[derive(Debug, Clone, Default)]
struct ScanBuf {
    a: Vec<u64>,
    b: Vec<u64>,
    aw: usize,
    bw: usize,
}

impl ScanBuf {
    fn copy_into(dst: &mut Vec<u64>, src: &[u64]) -> usize {
        if dst.len() < src.len() {
            dst.resize(src.len(), 0);
        }
        dst[..src.len()].copy_from_slice(src);
        src.len()
    }

    #[inline(always)]
    fn bit(words: &[u64], valid: usize, idx: usize) -> bool {
        let w = idx >> 6;
        w < valid && (words[w] >> (idx & 63)) & 1 == 1
    }

    #[inline(always)]
    fn a_set(&self, idx: usize) -> bool {
        Self::bit(&self.a, self.aw, idx)
    }

    #[inline(always)]
    fn b_set(&self, idx: usize) -> bool {
        Self::bit(&self.b, self.bw, idx)
    }

    /// One packed word of the `a` snapshot (all-zero past its extent).
    #[inline(always)]
    fn word_a(&self, w: usize) -> u64 {
        if w < self.aw {
            self.a[w]
        } else {
            0
        }
    }

    /// One packed word of the `b` snapshot (all-zero past its extent).
    #[inline(always)]
    fn word_b(&self, w: usize) -> u64 {
        if w < self.bw {
            self.b[w]
        } else {
            0
        }
    }

    /// Fast-forward for the vector tier's chunked scan: the next set
    /// bit of `a` at or after `from`, skipping zero words whole and
    /// locating set bits with `trailing_zeros` instead of a per-bit
    /// probe. Purely a lookup — non-set positions have no observable
    /// effect in a `Scan1` loop, so the emit sequence is identical to
    /// the linear probe.
    fn next_a_set(&self, from: usize, dim: usize) -> Option<usize> {
        let mut idx = from;
        while idx < dim {
            let w = idx >> 6;
            let rem = dim - (w << 6);
            let hi_mask = if rem >= 64 { !0u64 } else { (1u64 << rem) - 1 };
            let word = self.word_a(w) & hi_mask & (!0u64 << (idx & 63));
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            idx = (w + 1) << 6;
        }
        None
    }

    /// Fast-forward for the chunked two-input scan: returns the index
    /// of the next *combined* bit at or after `from` (or `dim` when
    /// none remains) plus the number of `a` and `b` bits passed over in
    /// `[from, next)` — the position-counter advances the linear probe
    /// would have made one bit at a time, batched with `count_ones`
    /// per word.
    fn scan2_skip(&self, op: ScanOp, from: usize, dim: usize) -> (usize, u64, u64) {
        let (mut askip, mut bskip) = (0u64, 0u64);
        let mut idx = from;
        while idx < dim {
            let w = idx >> 6;
            let rem = dim - (w << 6);
            let hi_mask = if rem >= 64 { !0u64 } else { (1u64 << rem) - 1 };
            let live = hi_mask & (!0u64 << (idx & 63));
            let aw = self.word_a(w) & live;
            let bw = self.word_b(w) & live;
            let comb = match op {
                ScanOp::And => aw & bw,
                ScanOp::Or => aw | bw,
            };
            if comb != 0 {
                let b = comb.trailing_zeros();
                let below = (1u64 << b) - 1;
                askip += (aw & below).count_ones() as u64;
                bskip += (bw & below).count_ones() as u64;
                return ((w << 6) + b as usize, askip, bskip);
            }
            askip += aw.count_ones() as u64;
            bskip += bw.count_ones() as u64;
            idx = (w + 1) << 6;
        }
        (dim, askip, bskip)
    }
}

/// Iteration state of one active loop in the bytecode engine.
#[derive(Debug, Clone)]
enum FrameState {
    /// Dense `Range` loop.
    Range {
        var: Slot,
        saved: Option<f64>,
        v: f64,
        hi: f64,
        step: f64,
    },
    /// Single bit-vector scan.
    Scan1 {
        depth: usize,
        dim: usize,
        idx: usize,
        pos: u64,
        pos_var: Slot,
        idx_var: Slot,
        saved: [Option<f64>; 2],
    },
    /// Two-input co-iteration scan.
    Scan2 {
        depth: usize,
        dim: usize,
        idx: usize,
        ap: u64,
        bp: u64,
        emitted: u64,
        op: ScanOp,
        vars: [Slot; 4],
        saved: [Option<f64>; 4],
    },
}

/// One active loop of the bytecode dispatch loop: the pattern node id
/// (for trip/DRAM attribution), the reduction accumulator when the loop
/// is a `Reduce`, and the counter state.
#[derive(Debug, Clone)]
struct Frame {
    node: usize,
    reduce: Option<Slot>,
    acc: f64,
    state: FrameState,
}

/// Dense statistics counters, indexed by slot / node id. `Option` on
/// the DRAM-name counters distinguishes "never touched" from "touched
/// with zero words" so the fold reproduces the reference engine's
/// map-entry creation exactly; the node-indexed counters are plain
/// vectors (their public form is dense too).
#[derive(Debug, Clone, Default)]
struct DenseStats {
    dram_reads: Vec<Option<u64>>,
    dram_writes: Vec<Option<u64>>,
    node_trips: Vec<u64>,
    node_dram_read_words: Vec<u64>,
    node_dram_write_words: Vec<u64>,
    dram_random_reads: u64,
    dram_random_writes: u64,
    alu_ops: u64,
    sram_reads: u64,
    sram_writes: u64,
    shuffle_accesses: u64,
    fifo_enqs: u64,
    fifo_deqs: u64,
    scan_bits: u64,
    scan_emits: u64,
    bv_gen_bits: u64,
    reduce_elems: u64,
}

impl DenseStats {
    /// Zeroes every counter while keeping the dense vectors' lengths
    /// (and hence their slot/node indexing) intact.
    fn clear(&mut self) {
        let DenseStats {
            dram_reads,
            dram_writes,
            node_trips,
            node_dram_read_words,
            node_dram_write_words,
            dram_random_reads,
            dram_random_writes,
            alu_ops,
            sram_reads,
            sram_writes,
            shuffle_accesses,
            fifo_enqs,
            fifo_deqs,
            scan_bits,
            scan_emits,
            bv_gen_bits,
            reduce_elems,
        } = self;
        dram_reads.fill(None);
        dram_writes.fill(None);
        node_trips.fill(0);
        node_dram_read_words.fill(0);
        node_dram_write_words.fill(0);
        *dram_random_reads = 0;
        *dram_random_writes = 0;
        *alu_ops = 0;
        *sram_reads = 0;
        *sram_writes = 0;
        *shuffle_accesses = 0;
        *fifo_enqs = 0;
        *fifo_deqs = 0;
        *scan_bits = 0;
        *scan_emits = 0;
        *bv_gen_bits = 0;
        *reduce_elems = 0;
    }

    fn note_dram_read(&mut self, slot: Slot, words: u64, node: Option<usize>) {
        *self.dram_reads[slot as usize].get_or_insert(0) += words;
        if let Some(n) = node {
            self.node_dram_read_words[n] += words;
        }
    }

    fn note_dram_write(&mut self, slot: Slot, words: u64, node: Option<usize>) {
        *self.dram_writes[slot as usize].get_or_insert(0) += words;
        if let Some(n) = node {
            self.node_dram_write_words[n] += words;
        }
    }

    fn fold(&self, syms: &SymbolTable) -> ExecStats {
        let mut out = ExecStats {
            dram_random_reads: self.dram_random_reads,
            dram_random_writes: self.dram_random_writes,
            alu_ops: self.alu_ops,
            sram_reads: self.sram_reads,
            sram_writes: self.sram_writes,
            shuffle_accesses: self.shuffle_accesses,
            fifo_enqs: self.fifo_enqs,
            fifo_deqs: self.fifo_deqs,
            scan_bits: self.scan_bits,
            scan_emits: self.scan_emits,
            bv_gen_bits: self.bv_gen_bits,
            reduce_elems: self.reduce_elems,
            ..ExecStats::default()
        };
        for (slot, words) in self.dram_reads.iter().enumerate() {
            if let Some(w) = words {
                out.dram_reads
                    .insert(syms.dram_name(slot as Slot).to_string(), *w);
            }
        }
        for (slot, words) in self.dram_writes.iter().enumerate() {
            if let Some(w) = words {
                out.dram_writes
                    .insert(syms.dram_name(slot as Slot).to_string(), *w);
            }
        }
        out.node_trips = trimmed(&self.node_trips);
        out.node_dram_read_words = trimmed(&self.node_dram_read_words);
        out.node_dram_write_words = trimmed(&self.node_dram_write_words);
        out
    }
}

/// Copy of a dense counter vector with trailing zeros removed — the
/// canonical public form ([`ExecStats`] node counters compare by
/// value across engines that size their vectors differently).
fn trimmed(counts: &[u64]) -> Vec<u64> {
    let end = counts
        .iter()
        .rposition(|&c| c != 0)
        .map_or(0, |last| last + 1);
    counts[..end].to_vec()
}

#[inline]
fn index_of(v: f64, context: impl FnOnce() -> String) -> Result<usize, RunError> {
    if v < 0.0 {
        return Err(RunError::NegativeIndex {
            context: context(),
            value: v,
        });
    }
    // Exact-integer fast path: the cast round-trips iff `v` is a
    // non-negative integer below 2^64, where `round` is the identity.
    // This keeps `f64::round` (a libm call on baseline x86-64) off the
    // hot path without changing a single result.
    let t = v as usize;
    if t as f64 == v {
        return Ok(t);
    }
    Ok(v.round() as usize)
}

/// The machine state a program executes against: DRAM plus on-chip
/// memories, variable bindings, and statistics — all held in dense,
/// slot-indexed vectors produced by the [`crate::resolve`] link pass.
///
/// # Example
///
/// ```
/// use stardust_spatial::{Machine, SpatialProgram, SpatialStmt, SExpr, Counter, MemKind};
/// use stardust_spatial::ir::MemDecl;
///
/// // y[i] = x[i] * 2 over a 4-element DRAM vector.
/// let mut p = SpatialProgram::new("double");
/// p.add_dram("x", 4);
/// p.add_dram("y", 4);
/// p.accel.push(SpatialStmt::Alloc(MemDecl::new("xs", MemKind::Sram, 4)));
/// p.accel.push(SpatialStmt::Load {
///     dst: "xs".into(), src: "x".into(),
///     start: SExpr::Const(0.0), end: SExpr::Const(4.0), par: 1,
/// });
/// p.accel.push(SpatialStmt::Foreach {
///     id: 0,
///     counter: Counter::range_to("i", SExpr::Const(4.0)),
///     par: 1,
///     body: vec![SpatialStmt::StoreScalar {
///         dst: "y".into(),
///         index: SExpr::var("i"),
///         value: SExpr::mul(SExpr::read("xs", SExpr::var("i")), SExpr::Const(2.0)),
///     }],
/// });
/// p.assign_ids();
///
/// let mut m = Machine::new(&p);
/// m.write_dram("x", &[1.0, 2.0, 3.0, 4.0]).unwrap();
/// m.run(&p).unwrap();
/// assert_eq!(m.dram("y").unwrap(), &[2.0, 4.0, 6.0, 8.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    compiled: Arc<CompiledProgram>,
    /// Machine-local copy of the compiled program's symbol table.
    /// Kept as a field (not read through `compiled`) so error paths can
    /// name memories while other fields are mutably borrowed.
    syms: SymbolTable,
    /// The compiled program whose [`crate::resolve::DramLayout`] the
    /// machine's DRAM placement was built from — fixed at construction.
    /// Re-linking ([`Machine::run`] with a different program) re-homes
    /// on-chip slots but never remaps DRAM, so images must match this
    /// artifact, not the possibly-relinked `compiled`.
    dram_source: Arc<CompiledProgram>,
    /// Per-slot DRAM placement; the storage behind it lives in
    /// `dram_input`/`dram_out`.
    dram_state: Vec<DramState>,
    /// The read-only input segment of the DRAM arena, shared with the
    /// compiled program's pristine zero image or a bound [`DramImage`].
    /// Copy-on-write: privatized on the machine's first write into it.
    dram_input: Arc<Vec<f64>>,
    /// The machine-owned output segment of the DRAM arena.
    dram_out: Vec<f64>,
    /// Per-slot on-chip allocation state; the storage behind it lives
    /// in `words`/`bits`.
    chip: Vec<ChipState>,
    /// The flat word arena: SRAM contents, FIFO rings, and registers,
    /// at the offsets recorded in `chip`.
    words: Vec<f64>,
    /// The flat bitset arena: packed bit vectors (64 bits per word).
    bits: Vec<u64>,
    env: Vec<Option<f64>>,
    dense: DenseStats,
    stats: ExecStats,
    node_stack: Vec<usize>,
    scratch: Vec<usize>,
    frames: Vec<Frame>,
    vstack: Vec<f64>,
    scan_pool: Vec<ScanBuf>,
    scan_depth: usize,
    /// Configured resource limits ([`Machine::set_budget`]); armed into
    /// the countdown fields below at each run entry. Cleared by
    /// [`Machine::reset`] / pool check-in.
    budget: RunBudget,
    /// Armed step countdown (`u64::MAX` = unlimited). Hot loops mirror
    /// this in a register and flush it on exit, like the trip counters.
    fuel: u64,
    /// What hitting zero fuel means (budget vs. min-folded injected
    /// fault from the [`crate::faults`] harness).
    fuel_cause: FuelCause,
    /// The step count at which the armed fuel event fires (for error
    /// messages).
    step_limit: u64,
    /// Armed DRAM-word countdown (`u64::MAX` = unlimited).
    dram_fuel: u64,
    /// Armed injected-allocation-failure countdown (`u64::MAX` = none).
    alloc_fuel: u64,
    /// Armed absolute deadline, from `budget.deadline` at run entry.
    deadline_at: Option<Instant>,
    /// Whether any amortized back-edge check (deadline/cancel) is armed.
    interrupts: bool,
    /// Set at run entry, cleared only when the run returns `Ok` — so a
    /// structured error *or* a panic leaves it set, and the pool's
    /// check-in quarantines the machine instead of recycling it.
    poisoned: bool,
    /// Armed only for sharded runs (see [`crate::shard`]): a bitset
    /// over the output-segment words recording exactly which words the
    /// program stored, so the merge can replay a shard's writes in
    /// shard order. `None` (the default) costs one untaken branch per
    /// DRAM store.
    write_log: Option<Vec<u64>>,
    /// Whether the data-parallel tier (see [`crate::vector`]) is
    /// active. On by default (`STARDUST_VECTOR=0` disables);
    /// runtime-togglable via [`Machine::set_vector_mode`] so one
    /// process measures scalar vs vector on identical state. Results,
    /// statistics, and abort points are bit-identical either way.
    vector_enabled: bool,
    /// Whether the dispatch loop consults the static
    /// bounds-check-elision table (see [`crate::analysis`]). On by
    /// default (`STARDUST_ELIDE=0` disables); runtime-togglable via
    /// [`Machine::set_elide_mode`]. Results, statistics, and abort
    /// points are bit-identical either way — only the per-access
    /// check is skipped, and only under a hoisted runtime guard that
    /// re-establishes the proof's premises.
    elide_enabled: bool,
}

/// A copy of a [`Machine`]'s execution state — DRAM images, the flat
/// on-chip arenas, variable bindings, and statistics — taken with
/// [`Machine::snapshot`] and reinstated with [`Machine::restore`].
/// Because machine state is a handful of flat vectors, both directions
/// are slice memcpys.
///
/// Snapshots are valid at statement boundaries: between [`Machine::run`]
/// calls (multi-phase programs split across several `run`s checkpoint
/// between phases). Transient in-flight state (loop frames, the value
/// stack) is not captured — it is empty whenever `run` is not on the
/// call stack. The snapshot carries the machine's program binding, so
/// restoring also rewinds any re-linking done after the checkpoint.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    /// The program binding at snapshot time (an `Arc` clone, so this is
    /// a pointer copy): restoring rewinds any re-linking that happened
    /// after the checkpoint, keeping slot-indexed state and symbol
    /// table in lockstep with the data vectors.
    compiled: Arc<CompiledProgram>,
    syms: SymbolTable,
    dram_source: Arc<CompiledProgram>,
    dram_state: Vec<DramState>,
    /// `Arc` clone of the machine's input segment at snapshot time — a
    /// pointer copy, never a word copy; copy-on-write keeps it pristine
    /// if the machine writes inputs after the checkpoint.
    dram_input: Arc<Vec<f64>>,
    dram_out: Vec<f64>,
    chip: Vec<ChipState>,
    words: Vec<f64>,
    bits: Vec<u64>,
    env: Vec<Option<f64>>,
    dense: DenseStats,
    stats: ExecStats,
}

impl Machine {
    /// Creates a machine with zeroed DRAM arrays sized per the program's
    /// declarations. The program is linked and lowered to bytecode here;
    /// [`Machine::run`] re-links only when handed a different program.
    pub fn new(program: &SpatialProgram) -> Self {
        Machine::from_compiled(Arc::new(CompiledProgram::compile(program)))
    }

    /// Creates a machine bound to an already-compiled program, sharing
    /// the artifact with every other machine holding the same `Arc` —
    /// the re-bind path for dataset sweeps (see
    /// [`crate::bytecode::ProgramCache`]). Machine *state* (DRAM,
    /// on-chip memories, statistics) is per-machine; only the immutable
    /// compiled form is shared.
    pub fn from_compiled(compiled: Arc<CompiledProgram>) -> Self {
        let syms = compiled.syms().clone();
        let dram_input = Arc::clone(compiled.zero_dram_input());
        let dram_source = Arc::clone(&compiled);
        let mut m = Machine {
            compiled,
            syms,
            dram_source,
            dram_state: Vec::new(),
            dram_input,
            dram_out: Vec::new(),
            chip: Vec::new(),
            words: Vec::new(),
            bits: Vec::new(),
            env: Vec::new(),
            dense: DenseStats::default(),
            stats: ExecStats::default(),
            node_stack: Vec::new(),
            scratch: Vec::new(),
            frames: Vec::new(),
            vstack: Vec::new(),
            scan_pool: Vec::new(),
            scan_depth: 0,
            budget: RunBudget::default(),
            fuel: u64::MAX,
            fuel_cause: FuelCause::Budget,
            step_limit: u64::MAX,
            dram_fuel: u64::MAX,
            alloc_fuel: u64::MAX,
            deadline_at: None,
            interrupts: false,
            poisoned: false,
            write_log: None,
            vector_enabled: vector::env_default(),
            elide_enabled: elide_env_default(),
        };
        m.grow_state();
        let compiled = Arc::clone(&m.compiled);
        let layout = &compiled.resolved().dram_layout;
        for (slot, r) in layout.drams.iter().enumerate() {
            if r.mapped {
                m.dram_state[slot] = DramState {
                    mapped: true,
                    input: !r.written,
                    kind: r.kind,
                    off: r.offset,
                    len: r.size,
                };
            }
        }
        m.dram_out = vec![0.0; layout.output_words];
        m
    }

    /// Re-binds the machine's DRAM to a prebuilt [`DramImage`]: an
    /// `Arc` clone of the shared input segment plus a zero-fill (and
    /// rare init copies) of the output segment — O(outputs), no
    /// per-element input conversion or copy. On-chip state, variable
    /// bindings, and statistics are untouched; pair with a fresh
    /// [`Machine::from_compiled`] for a clean run.
    ///
    /// # Errors
    ///
    /// [`RunError::ImageMismatch`] when the image was built for an
    /// incompatible compiled program — including the program a machine
    /// was merely *re-linked* to: DRAM placement is fixed at
    /// construction, so only images for the construction-time program
    /// can bind.
    pub fn bind_image(&mut self, image: &DramImage) -> Result<(), RunError> {
        if !image.matches(&self.dram_source) {
            return Err(RunError::ImageMismatch);
        }
        self.bind_image_segments(image);
        Ok(())
    }

    /// Shard-only image bind (see [`crate::shard`]): accepts any
    /// program whose DRAM story equals the image's
    /// ([`DramImage::layout_matches`]), bodies aside, so shard
    /// sub-programs share the parent's input segment.
    pub(crate) fn shard_bind_image(&mut self, image: &DramImage) -> Result<(), RunError> {
        if !image.layout_matches(&self.dram_source) {
            return Err(RunError::ImageMismatch);
        }
        self.bind_image_segments(image);
        Ok(())
    }

    fn bind_image_segments(&mut self, image: &DramImage) {
        self.dram_input = Arc::clone(&image.input);
        self.dram_out.fill(0.0);
        for (off, data) in &image.output_init {
            self.dram_out[*off..*off + data.len()].copy_from_slice(data);
        }
    }

    /// Copies the machine's execution state (DRAM, the flat on-chip
    /// arenas, variable bindings, statistics). See [`MachineSnapshot`]
    /// for validity rules.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            compiled: Arc::clone(&self.compiled),
            syms: self.syms.clone(),
            dram_source: Arc::clone(&self.dram_source),
            dram_state: self.dram_state.clone(),
            dram_input: Arc::clone(&self.dram_input),
            dram_out: self.dram_out.clone(),
            chip: self.chip.clone(),
            words: self.words.clone(),
            bits: self.bits.clone(),
            env: self.env.clone(),
            dense: self.dense.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Reinstates a state previously captured with [`Machine::snapshot`],
    /// reusing this machine's buffers where possible.
    pub fn restore(&mut self, snapshot: &MachineSnapshot) {
        self.compiled = Arc::clone(&snapshot.compiled);
        self.syms.clone_from(&snapshot.syms);
        self.dram_source = Arc::clone(&snapshot.dram_source);
        self.dram_state.clone_from(&snapshot.dram_state);
        self.dram_input = Arc::clone(&snapshot.dram_input);
        self.dram_out.clone_from(&snapshot.dram_out);
        self.chip.clone_from(&snapshot.chip);
        self.words.clone_from(&snapshot.words);
        self.bits.clone_from(&snapshot.bits);
        self.env.clone_from(&snapshot.env);
        self.dense.clone_from(&snapshot.dense);
        self.stats.clone_from(&snapshot.stats);
    }

    /// The compiled program this machine is bound to.
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.compiled
    }

    /// Clears execution state — on-chip allocations, variable bindings,
    /// statistics, and the DRAM output segment — without reallocating
    /// or zeroing the on-chip arenas: every on-chip slot returns to its
    /// unallocated state (regions keep their homes; `Alloc` fills them
    /// before any use), so a reused machine behaves exactly like a
    /// fresh [`Machine::from_compiled`] at O(slots + outputs), not
    /// O(arena).
    ///
    /// The DRAM *input* segment is left bound; follow with
    /// [`Machine::bind_image`] (or `write_dram`) to (re)bind a dataset.
    /// `reset` + `bind_image` is the O(outputs) re-bind loop for
    /// serving repeated runs of one kernel.
    pub fn reset(&mut self) {
        self.clear_outputs();
        self.clear_exec_state();
    }

    /// The DRAM-output half of [`Machine::reset`]: zero-fills the
    /// output segment. Crate-internal so the machine pool can skip it
    /// when a [`Machine::bind_image`] (which refills the segment)
    /// immediately follows.
    pub(crate) fn clear_outputs(&mut self) {
        self.dram_out.fill(0.0);
    }

    /// The execution-state half of [`Machine::reset`]: on-chip
    /// allocations, variable bindings, statistics, and in-flight loop
    /// state — everything except the DRAM output segment.
    pub(crate) fn clear_exec_state(&mut self) {
        for st in &mut self.chip {
            st.tag = ChipTag::None;
            st.len = 0;
            st.head = 0;
        }
        self.env.fill(None);
        self.dense.clear();
        self.stats = ExecStats::default();
        self.node_stack.clear();
        self.frames.clear();
        self.vstack.clear();
        self.scan_depth = 0;
        self.budget = RunBudget::default();
        self.fuel = u64::MAX;
        self.fuel_cause = FuelCause::Budget;
        self.step_limit = u64::MAX;
        self.dram_fuel = u64::MAX;
        self.alloc_fuel = u64::MAX;
        self.deadline_at = None;
        self.interrupts = false;
        self.poisoned = false;
        self.write_log = None;
    }

    /// Rebinds the DRAM input segment to the pristine all-zero image
    /// the machine was constructed with — an `Arc` pointer copy that
    /// drops any bound [`DramImage`] (and any copy-on-write private
    /// segment). [`Machine::reset`] + `unbind_inputs` is the
    /// machine-pool checkout invariant: a recycled machine becomes
    /// indistinguishable from a fresh [`Machine::from_compiled`].
    pub fn unbind_inputs(&mut self) {
        self.dram_input = Arc::clone(self.dram_source.zero_dram_input());
    }

    /// Sets the resource budget for subsequent runs. The budget is
    /// armed at each [`Machine::run`]/[`Machine::run_tree`] entry and
    /// survives across runs until [`Machine::reset`] (or pool
    /// check-in) clears it back to unlimited.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
    }

    /// The configured resource budget.
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Whether the data-parallel (vector) tier is active (see
    /// [`crate::vector`]).
    pub fn vector_mode(&self) -> bool {
        self.vector_enabled
    }

    /// Enables or disables the vector tier at runtime. Execution
    /// results, `ExecStats`, and budget-abort points are bit-identical
    /// in both modes — the toggle exists so benchmarks and differential
    /// suites can measure scalar vs vector in one process.
    pub fn set_vector_mode(&mut self, on: bool) {
        self.vector_enabled = on;
    }

    /// Whether statically-proven in-bounds accesses skip the
    /// per-access bounds check (see [`crate::analysis`]).
    pub fn elide_mode(&self) -> bool {
        self.elide_enabled
    }

    /// Enables or disables bounds-check elision at runtime. Execution
    /// results, `ExecStats`, and budget-abort points are bit-identical
    /// in both modes — the toggle exists so benchmarks and
    /// differential suites can measure checked vs elided in one
    /// process.
    pub fn set_elide_mode(&mut self, on: bool) {
        self.elide_enabled = on;
    }

    /// Whether the last run aborted — with a structured error or a
    /// panic — leaving the machine's state partway through a program.
    /// A poisoned machine must not be recycled; the
    /// [`crate::MachinePool`] quarantines it at check-in.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Arms the sharded-run write log (see [`crate::shard`]): from here
    /// until [`Machine::shard_take_write_log`], every successful DRAM
    /// store records the output-segment words it touched in a bitset.
    pub(crate) fn shard_arm_write_log(&mut self) {
        self.write_log = Some(vec![0u64; bit_words_for(self.dram_out.len())]);
    }

    /// Takes the write log (disarming logging). Empty if never armed.
    pub(crate) fn shard_take_write_log(&mut self) -> Vec<u64> {
        self.write_log.take().unwrap_or_default()
    }

    /// The machine-owned DRAM output segment — the sharded merge reads
    /// each shard's segment through this.
    pub(crate) fn shard_output_words(&self) -> &[f64] {
        &self.dram_out
    }

    /// Applies a shard's logged writes into this machine: `values`
    /// holds the written words in ascending output-segment index order
    /// (one per bit set in `mask`, the shard's write log). Replaying
    /// shards in shard order makes the merged segment word-identical to
    /// the serial run: every runtime DRAM store is a pure overwrite, so
    /// last-write-wins in iteration order *is* the serial result.
    pub(crate) fn shard_apply_output(&mut self, values: &[f64], mask: &[u64]) {
        let mut vi = 0usize;
        for (w, &m) in mask.iter().enumerate() {
            let mut rem = m;
            let base = w * 64;
            while rem != 0 {
                let ix = base + rem.trailing_zeros() as usize;
                debug_assert!(ix < self.dram_out.len() && vi < values.len());
                self.dram_out[ix] = values[vi];
                vi += 1;
                rem &= rem - 1;
            }
        }
        debug_assert_eq!(vi, values.len());
    }

    /// Overwrites the folded statistics with the sharded-merge result,
    /// so downstream readers ([`Machine::stats`]) see the merged run.
    pub(crate) fn shard_set_stats(&mut self, stats: ExecStats) {
        self.stats = stats;
    }

    /// Records `n` words written at `off` within DRAM slot `dst` into
    /// the armed write log. Only output-segment words are logged (the
    /// layout places every program-written slot there; input-segment
    /// writes only happen through host `write_dram`, outside a run).
    #[inline(always)]
    fn log_dram_write(&mut self, dst: Slot, off: usize, n: usize) {
        if let Some(log) = &mut self.write_log {
            let st = self.dram_state[dst as usize];
            if st.input {
                return;
            }
            for ix in st.off + off..st.off + off + n {
                log[ix / 64] |= 1u64 << (ix % 64);
            }
        }
    }

    /// Arms the countdown fields from the configured budget and any
    /// installed [`crate::faults`] plan. One-shot injected step faults
    /// are min-folded into the fuel countdown so the hot loops pay for
    /// exactly one compare-and-decrement regardless of what is armed.
    fn arm_budget(&mut self) {
        let plan = faults::active();
        let mut fuel = self.budget.max_steps.unwrap_or(u64::MAX);
        let mut cause = FuelCause::Budget;
        if let Some(p) = &plan {
            if let Some(n) = p.max_steps {
                fuel = fuel.min(n);
            }
            if let Some(n) = p.error_at_step {
                if n <= fuel {
                    fuel = n;
                    cause = FuelCause::InjectedError;
                }
            }
            if let Some(n) = p.panic_at_step {
                if n <= fuel {
                    fuel = n;
                    cause = FuelCause::InjectedPanic;
                }
            }
        }
        self.fuel = fuel;
        self.fuel_cause = cause;
        self.step_limit = fuel;
        self.dram_fuel = self.budget.max_dram_words.unwrap_or(u64::MAX);
        self.alloc_fuel = plan.as_ref().and_then(|p| p.fail_alloc).unwrap_or(u64::MAX);
        self.deadline_at = self.budget.deadline.map(|d| Instant::now() + d);
        self.interrupts = self.deadline_at.is_some() || self.budget.cancel.is_some();
    }

    /// Charges one interpreter step ("fuel") and runs the amortized
    /// deadline/cancel check. Called once per loop-body execution —
    /// exactly the [`ExecStats::node_trips`] sites — so the
    /// completes-or-aborts predicate is engine-identical.
    #[inline(always)]
    fn charge_step(&mut self) -> Result<(), RunError> {
        if self.fuel == 0 {
            return Err(exhausted_fuel(self.fuel_cause, self.step_limit));
        }
        self.fuel -= 1;
        if self.interrupts && self.fuel & INTERRUPT_MASK == 0 {
            check_interrupts(
                self.deadline_at,
                self.deadline_ms(),
                self.budget.cancel.as_ref(),
            )?;
        }
        Ok(())
    }

    /// The configured deadline in milliseconds (for error messages).
    fn deadline_ms(&self) -> u64 {
        self.budget
            .deadline
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    /// Charges `words` against the DRAM-word budget.
    #[inline(always)]
    fn charge_dram(&mut self, words: u64) -> Result<(), RunError> {
        match self.dram_fuel.checked_sub(words) {
            Some(rest) => {
                self.dram_fuel = rest;
                Ok(())
            }
            None => Err(RunError::BudgetExceeded {
                resource: BudgetResource::DramWords,
                limit: self.budget.max_dram_words.unwrap_or(0),
            }),
        }
    }

    /// Re-links and re-lowers when handed a program other than the one
    /// the machine is bound to. The new program is resolved against the
    /// existing symbol table, so slots (and machine state) survive.
    fn relink(&mut self, program: &SpatialProgram) {
        if *program != *self.compiled.source() {
            let syms = std::mem::take(&mut self.syms);
            self.compiled = Arc::new(CompiledProgram::compile_with(program, syms));
            self.syms = self.compiled.syms().clone();
            self.grow_state();
        }
    }

    /// Grows slot-indexed state to match the symbol table after a
    /// resolution pass. Existing slots keep their contents: allocated
    /// on-chip slots keep their current arena regions, and
    /// still-unallocated slots whose reserved extent is smaller than
    /// the newly linked layout's are re-homed into a fresh stretch at
    /// the end of the arenas. Only the re-homed regions are appended —
    /// slots that already satisfy the layout cost nothing, so
    /// alternating `run` calls between two programs reaches a fixed
    /// point instead of growing the arenas per relink.
    fn grow_state(&mut self) {
        let drams = self.syms.dram_count();
        let chips = self.syms.chip_count();
        let vars = self.syms.var_count();
        let nodes = self
            .compiled
            .resolved()
            .node_limit
            .max(self.dense.node_trips.len());
        if self.dram_state.len() < drams {
            self.dram_state.resize(drams, DramState::UNMAPPED);
            self.dense.dram_reads.resize(drams, None);
            self.dense.dram_writes.resize(drams, None);
        }
        if self.chip.len() < chips {
            self.chip.resize(chips, ChipState::UNMAPPED);
        }
        let layout = &self.compiled.resolved().layout;
        let mut woff = self.words.len();
        let mut boff = self.bits.len();
        for (slot, region) in layout.chips.iter().enumerate() {
            let st = &mut self.chip[slot];
            if st.tag != ChipTag::None {
                continue;
            }
            if st.wcap < region.word_cap {
                st.woff = woff;
                st.wcap = region.word_cap;
                woff += region.word_cap;
            }
            if st.bcap < region.bit_words {
                st.boff = boff;
                st.bcap = region.bit_words;
                boff += region.bit_words;
            }
        }
        // From-empty growth (machine construction) goes through the
        // zeroed allocator — one calloc of untouched pages — instead of
        // `resize`'s element-wise fill; at large arena sizes this keeps
        // fresh-machine creation (the re-bind path) off the O(arena)
        // memset.
        if self.words.is_empty() {
            self.words = vec![0.0; woff];
        } else {
            self.words.resize(woff, 0.0);
        }
        if self.bits.is_empty() {
            self.bits = vec![0; boff];
        } else {
            self.bits.resize(boff, 0);
        }
        if self.env.len() < vars {
            self.env.resize(vars, None);
        }
        if self.dense.node_trips.len() < nodes {
            self.dense.node_trips.resize(nodes, 0);
            self.dense.node_dram_read_words.resize(nodes, 0);
            self.dense.node_dram_write_words.resize(nodes, 0);
        }
    }

    /// Ensures the slot's word region holds at least `need` words,
    /// relocating it to the end of the word arena when it does not.
    /// The region contents are NOT carried over — callers reset them.
    fn reserve_words(&mut self, slot: Slot, need: usize) {
        let st = &mut self.chip[slot as usize];
        if st.wcap < need {
            st.woff = self.words.len();
            st.wcap = need;
            self.words.resize(st.woff + need, 0.0);
        }
    }

    /// Ensures the slot's bitset region holds at least `need` packed
    /// words, relocating to the end of the bitset arena when it does
    /// not. Contents are NOT carried over — callers reset them.
    fn reserve_bits(&mut self, slot: Slot, need: usize) {
        let st = &mut self.chip[slot as usize];
        if st.bcap < need {
            st.boff = self.bits.len();
            st.bcap = need;
            self.bits.resize(st.boff + need, 0);
        }
    }

    fn unknown_dram(&self, slot: Slot) -> RunError {
        RunError::UnknownMemory(self.syms.dram_name(slot).to_string())
    }

    fn unknown_chip(&self, slot: Slot) -> RunError {
        RunError::UnknownMemory(self.syms.chip_name(slot).to_string())
    }

    fn dram_slot_of(&self, name: &str) -> Result<Slot, RunError> {
        self.syms
            .dram_slot(name)
            .filter(|&s| self.dram_state[s as usize].mapped)
            .ok_or_else(|| RunError::UnknownMemory(name.to_string()))
    }

    /// The words of a mapped DRAM slot.
    #[inline(always)]
    fn dram_words_of(&self, slot: Slot) -> Option<&[f64]> {
        dram_words(
            &self.dram_input,
            &self.dram_out,
            self.dram_state[slot as usize],
        )
    }

    /// The words of a mapped DRAM slot, writable (copy-on-write for
    /// input-segment slots).
    #[inline(always)]
    fn dram_words_of_mut(&mut self, slot: Slot) -> Option<&mut [f64]> {
        dram_words_mut(
            &mut self.dram_input,
            &mut self.dram_out,
            self.dram_state[slot as usize],
        )
    }

    /// Overwrites the head of a DRAM array with `data`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::UnknownMemory`] or [`RunError::OutOfBounds`] when
    /// the array is missing or too small.
    pub fn write_dram(&mut self, name: &str, data: &[f64]) -> Result<(), RunError> {
        let slot = self.dram_slot_of(name)?;
        self.write_dram_slot(slot, data)
    }

    /// [`Machine::write_dram`] addressed by DRAM slot — the bind path
    /// for callers that resolved names to slots at compile time.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::write_dram`].
    pub fn write_dram_slot(&mut self, slot: Slot, data: &[f64]) -> Result<(), RunError> {
        let st = self.dram_state_of(slot)?;
        if data.len() > st.len {
            return Err(RunError::OutOfBounds {
                mem: self.syms.dram_name(slot).to_string(),
                index: data.len() as i64,
                len: st.len,
            });
        }
        let arr = self.dram_words_of_mut(slot).expect("checked");
        arr[..data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Writes an integer array (e.g. a `pos`/`crd` sub-array) into DRAM,
    /// converting in place — no intermediate allocation.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::write_dram`].
    pub fn write_dram_usize(&mut self, name: &str, data: &[usize]) -> Result<(), RunError> {
        let slot = self.dram_slot_of(name)?;
        self.write_dram_slot_usize(slot, data)
    }

    /// [`Machine::write_dram_usize`] addressed by DRAM slot.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::write_dram`].
    pub fn write_dram_slot_usize(&mut self, slot: Slot, data: &[usize]) -> Result<(), RunError> {
        let st = self.dram_state_of(slot)?;
        if data.len() > st.len {
            return Err(RunError::OutOfBounds {
                mem: self.syms.dram_name(slot).to_string(),
                index: data.len() as i64,
                len: st.len,
            });
        }
        let arr = self.dram_words_of_mut(slot).expect("checked");
        for (dst, &x) in arr.iter_mut().zip(data) {
            *dst = x as f64;
        }
        Ok(())
    }

    fn dram_state_of(&self, slot: Slot) -> Result<DramState, RunError> {
        match self.dram_state.get(slot as usize) {
            Some(st) if st.mapped => Ok(*st),
            Some(_) => Err(self.unknown_dram(slot)),
            None => Err(RunError::UnknownMemory(format!("dram slot {slot}"))),
        }
    }

    /// Reads a DRAM array.
    pub fn dram(&self, name: &str) -> Option<&[f64]> {
        let slot = self.syms.dram_slot(name)?;
        self.dram_words_of(slot)
    }

    /// The declared kind of a DRAM array.
    pub fn dram_kind(&self, name: &str) -> Option<MemKind> {
        let slot = self.syms.dram_slot(name)?;
        let st = self.dram_state[slot as usize];
        st.mapped.then_some(st.kind)
    }

    /// Reads a DRAM array as integers (rounding).
    pub fn dram_usize(&self, name: &str) -> Option<Vec<usize>> {
        let arr = self.dram(name)?;
        let mut out = Vec::with_capacity(arr.len());
        self.read_dram_usize_into(name, arr.len(), &mut out).ok()?;
        Some(out)
    }

    /// Streams the first `len` words of a DRAM array into `out` as
    /// integers (rounding), clearing `out` first.
    ///
    /// # Errors
    ///
    /// [`RunError::UnknownMemory`] when the array is missing,
    /// [`RunError::OutOfBounds`] when it is shorter than `len`; `out` is
    /// left empty in both cases.
    pub fn read_dram_usize_into(
        &self,
        name: &str,
        len: usize,
        out: &mut Vec<usize>,
    ) -> Result<(), RunError> {
        out.clear();
        let arr = self
            .dram(name)
            .ok_or_else(|| RunError::UnknownMemory(name.to_string()))?;
        if arr.len() < len {
            return Err(RunError::OutOfBounds {
                mem: name.to_string(),
                index: len as i64,
                len: arr.len(),
            });
        }
        out.extend(arr[..len].iter().map(|&x| x.round() as usize));
        Ok(())
    }

    /// The statistics gathered so far (updated when [`Machine::run`]
    /// returns).
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Executes the program's Accel block on the flat bytecode engine
    /// (a program counter over the op vector, loop state in a dense
    /// frame stack — no recursion).
    ///
    /// The compiled form produced at construction is reused when
    /// `program` equals the program the machine was built from;
    /// otherwise the new program is linked against the machine's
    /// existing slot space first.
    ///
    /// # Errors
    ///
    /// Returns the first [`RunError`] encountered.
    pub fn run(&mut self, program: &SpatialProgram) -> Result<ExecStats, RunError> {
        self.relink(program);
        let prog = Arc::clone(&self.compiled);
        self.arm_budget();
        self.poisoned = true;
        let result = self.run_ops(&prog);
        self.stats = self.dense.fold(&self.syms);
        result?;
        self.poisoned = false;
        Ok(self.stats.clone())
    }

    /// Executes the program on the recursive resolved-tree engine (the
    /// PR-1 walker). Semantically identical to [`Machine::run`] — it is
    /// kept as a differential-testing oracle and benchmark baseline for
    /// the bytecode engine.
    ///
    /// # Errors
    ///
    /// Returns the first [`RunError`] encountered.
    pub fn run_tree(&mut self, program: &SpatialProgram) -> Result<ExecStats, RunError> {
        self.relink(program);
        let prog = Arc::clone(&self.compiled);
        self.node_stack.clear();
        self.frames.clear();
        self.vstack.clear();
        self.scan_depth = 0;
        self.arm_budget();
        self.poisoned = true;
        let result = (|| {
            let resolved = prog.resolved();
            for stmt in &resolved.body {
                self.exec(resolved, stmt)?;
            }
            Ok(())
        })();
        self.stats = self.dense.fold(&self.syms);
        result?;
        self.poisoned = false;
        Ok(self.stats.clone())
    }

    fn current_node(&self) -> Option<usize> {
        // `node_stack` wins over `frames`: the tree walker uses it
        // exclusively, and in the bytecode engine only `RangeSimple`
        // superinstructions push it — always after (inside) any framed
        // loop, and nested superinstructions push in nesting order — so
        // the last entry is the innermost active loop.
        self.node_stack
            .last()
            .copied()
            .or_else(|| self.frames.last().map(|f| f.node))
    }

    /// Reads a register slot.
    #[inline(always)]
    fn reg_value(&self, reg: Slot) -> Result<f64, RunError> {
        let st = &self.chip[reg as usize];
        if st.tag == ChipTag::Reg {
            Ok(self.words[st.woff])
        } else {
            Err(self.unknown_chip(reg))
        }
    }

    /// Dequeues one element, counting the dequeue before the slot check
    /// exactly as the tree engines do.
    #[inline(always)]
    fn deq_value(&mut self, fifo: Slot) -> Result<f64, RunError> {
        self.dense.fifo_deqs += 1;
        let st = &mut self.chip[fifo as usize];
        if st.tag != ChipTag::Fifo {
            return Err(self.unknown_chip(fifo));
        }
        match fifo_pop(&self.words, st) {
            Some(v) => Ok(v),
            None => Err(RunError::FifoUnderflow(
                self.syms.chip_name(fifo).to_string(),
            )),
        }
    }

    fn eval(&mut self, p: &ResolvedProgram, id: ExprId) -> Result<f64, RunError> {
        match p.expr(id) {
            ResolvedExpr::Const(c) => Ok(c),
            ResolvedExpr::Var(v) => self.env[v as usize]
                .ok_or_else(|| RunError::UnboundVar(self.syms.var_name(v).to_string())),
            ResolvedExpr::RegRead(r) => self.reg_value(r),
            ResolvedExpr::Deq(f) => self.deq_value(f),
            ResolvedExpr::ReadMem {
                chip,
                dram,
                index,
                random,
            } => {
                let ix = self.eval(p, index)?;
                self.read_mem_value(chip, dram, ix, random)
            }
            ResolvedExpr::Neg(inner) => {
                let v = self.eval(p, inner)?;
                self.dense.alu_ops += 1;
                Ok(-v)
            }
            ResolvedExpr::Binary { op, lhs, rhs } => {
                let a = self.eval(p, lhs)?;
                let b = self.eval(p, rhs)?;
                self.dense.alu_ops += 1;
                Ok(op.apply(a, b))
            }
            ResolvedExpr::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.eval(p, cond)?;
                self.dense.alu_ops += 1;
                // Both sides are evaluated in hardware (they are wires);
                // evaluate lazily here only to avoid spurious OOB on the
                // untaken side, which a mux masks out.
                if c != 0.0 {
                    self.eval(p, if_true)
                } else {
                    self.eval(p, if_false)
                }
            }
        }
    }

    /// Shared `mem[index]` read used by both expression engines:
    /// on-chip first, then the SparseDRAM random-read fallback. `ix` is
    /// the already-evaluated (f64) index. The on-chip fast path is a
    /// bounds check plus one arena load.
    #[cfg_attr(not(debug_assertions), inline(always))]
    #[cfg_attr(debug_assertions, inline(never))]
    fn read_mem_value(
        &mut self,
        chip: Slot,
        dram: Slot,
        ix: f64,
        random: bool,
    ) -> Result<f64, RunError> {
        let ix = index_of(ix, || self.syms.chip_name(chip).to_string())?;
        let st = &self.chip[chip as usize];
        match st.tag {
            ChipTag::Words => {
                if ix >= st.len {
                    return Err(RunError::OutOfBounds {
                        mem: self.syms.chip_name(chip).to_string(),
                        index: ix as i64,
                        len: st.len,
                    });
                }
                let v = self.words[st.woff + ix];
                self.dense.sram_reads += 1;
                if random && st.kind == MemKind::SparseSram {
                    self.dense.shuffle_accesses += 1;
                }
                Ok(v)
            }
            ChipTag::None => {
                if let Some(arr) = self.dram_words_of(dram) {
                    let len = arr.len();
                    let v = match arr.get(ix) {
                        Some(v) => *v,
                        None => {
                            return Err(RunError::OutOfBounds {
                                mem: self.syms.dram_name(dram).to_string(),
                                index: ix as i64,
                                len,
                            })
                        }
                    };
                    self.charge_dram(1)?;
                    self.dense.dram_random_reads += 1;
                    Ok(v)
                } else {
                    Err(self.unknown_chip(chip))
                }
            }
            _ => Err(self.unknown_chip(chip)),
        }
    }

    #[cfg_attr(not(debug_assertions), inline(always))]
    #[cfg_attr(debug_assertions, inline(never))]
    fn write_on_chip(
        &mut self,
        mem: Slot,
        ix: usize,
        value: f64,
        random: bool,
        accumulate: bool,
    ) -> Result<(), RunError> {
        let st = self.chip[mem as usize];
        if st.tag != ChipTag::Words {
            return Err(self.unknown_chip(mem));
        }
        if ix >= st.len {
            return Err(RunError::OutOfBounds {
                mem: self.syms.chip_name(mem).to_string(),
                index: ix as i64,
                len: st.len,
            });
        }
        let slot = &mut self.words[st.woff + ix];
        if accumulate {
            *slot += value;
        } else {
            *slot = value;
        }
        self.dense.sram_writes += 1;
        if (random || accumulate) && st.kind == MemKind::SparseSram {
            self.dense.shuffle_accesses += 1;
        }
        Ok(())
    }

    // --- Statement executors shared by the tree walker and the
    // --- bytecode dispatch loop. Operands are already evaluated.

    fn do_alloc(&mut self, slot: Slot, kind: MemKind, size: usize) -> Result<(), RunError> {
        if self.alloc_fuel == 0 {
            self.alloc_fuel = u64::MAX;
            faults::consume_alloc();
            return Err(RunError::InjectedFault {
                site: format!("alloc {}", self.syms.chip_name(slot)),
            });
        }
        self.alloc_fuel -= 1;
        match kind {
            MemKind::Sram | MemKind::SparseSram => {
                self.reserve_words(slot, size);
                let st = &mut self.chip[slot as usize];
                st.tag = ChipTag::Words;
                st.kind = kind;
                st.len = size;
                let off = st.woff;
                self.words[off..off + size].fill(0.0);
            }
            MemKind::Fifo => {
                self.reserve_words(slot, size.max(1));
                let st = &mut self.chip[slot as usize];
                st.tag = ChipTag::Fifo;
                st.kind = kind;
                fifo_clear(st);
            }
            MemKind::Reg => {
                self.reserve_words(slot, 1);
                let st = &mut self.chip[slot as usize];
                st.tag = ChipTag::Reg;
                st.kind = kind;
                let off = st.woff;
                self.words[off] = 0.0;
            }
            MemKind::BitVector => {
                let nw = bit_words_for(size);
                self.reserve_bits(slot, nw);
                let st = &mut self.chip[slot as usize];
                st.tag = ChipTag::Bits;
                st.kind = kind;
                st.len = size;
                let off = st.boff;
                self.bits[off..off + nw].fill(0);
            }
            MemKind::Dram | MemKind::SparseDram => {
                // DRAM is declared at program level, not allocated in
                // Accel.
                return Err(self.unknown_chip(slot));
            }
        }
        Ok(())
    }

    fn do_load(&mut self, dst: Slot, src: Slot, s: f64, e: f64) -> Result<(), RunError> {
        let s = index_of(s, || "load start".to_string())?;
        let e = index_of(e, || "load end".to_string())?;
        let src_st = self.dram_state[src as usize];
        if !src_st.mapped {
            return Err(self.unknown_dram(src));
        }
        let alen = src_st.len;
        if e > alen {
            return Err(RunError::OutOfBounds {
                mem: self.syms.dram_name(src).to_string(),
                index: e as i64,
                len: alen,
            });
        }
        let n = match e.checked_sub(s) {
            Some(n) => n,
            None => {
                return Err(RunError::NegativeIndex {
                    context: format!("load length (start {s} beyond end {e})"),
                    value: e as f64 - s as f64,
                })
            }
        };
        self.charge_dram(n as u64)?;
        self.dense
            .note_dram_read(src, n as u64, self.current_node());
        match self.chip[dst as usize].tag {
            ChipTag::Words => {
                let st = self.chip[dst as usize];
                if n > st.len {
                    return Err(RunError::OutOfBounds {
                        mem: self.syms.chip_name(dst).to_string(),
                        index: n as i64,
                        len: st.len,
                    });
                }
                {
                    let Machine {
                        dram_input,
                        dram_out,
                        words,
                        ..
                    } = self;
                    let src_arr = dram_words(dram_input, dram_out, src_st).expect("checked");
                    words[st.woff..st.woff + n].copy_from_slice(&src_arr[s..e]);
                }
                self.dense.sram_writes += n as u64;
                Ok(())
            }
            ChipTag::Fifo => {
                self.dense.fifo_enqs += n as u64;
                let Machine {
                    dram_input,
                    dram_out,
                    words,
                    chip,
                    ..
                } = self;
                let st = &mut chip[dst as usize];
                fifo_reserve(words, st, n);
                let src_arr = dram_words(dram_input, dram_out, src_st).expect("checked");
                for &v in &src_arr[s..e] {
                    fifo_push(words, st, v);
                }
                Ok(())
            }
            _ => Err(RunError::UnknownMemory(
                self.syms.chip_name(dst).to_string(),
            )),
        }
    }

    fn do_store(&mut self, dst: Slot, off: usize, src: Slot, n: usize) -> Result<(), RunError> {
        let st = self.chip[src as usize];
        if st.tag != ChipTag::Words {
            return Err(self.unknown_chip(src));
        }
        if n > st.len {
            return Err(RunError::OutOfBounds {
                mem: self.syms.chip_name(src).to_string(),
                index: n as i64,
                len: st.len,
            });
        }
        self.dense.sram_reads += n as u64;
        self.charge_dram(n as u64)?;
        {
            let Machine {
                dram_input,
                dram_out,
                dram_state,
                words,
                syms,
                ..
            } = self;
            let arr = match dram_words_mut(dram_input, dram_out, dram_state[dst as usize]) {
                Some(arr) => arr,
                None => return Err(RunError::UnknownMemory(syms.dram_name(dst).to_string())),
            };
            if off + n > arr.len() {
                return Err(RunError::OutOfBounds {
                    mem: syms.dram_name(dst).to_string(),
                    index: (off + n) as i64,
                    len: arr.len(),
                });
            }
            arr[off..off + n].copy_from_slice(&words[st.woff..st.woff + n]);
        }
        self.log_dram_write(dst, off, n);
        self.dense
            .note_dram_write(dst, n as u64, self.current_node());
        Ok(())
    }

    fn do_stream_store(
        &mut self,
        dst: Slot,
        off: usize,
        fifo: Slot,
        n: usize,
    ) -> Result<(), RunError> {
        if self.chip[fifo as usize].tag != ChipTag::Fifo {
            return Err(RunError::UnknownMemory(
                self.syms.chip_name(fifo).to_string(),
            ));
        }
        if self.chip[fifo as usize].len < n {
            // The reference engine pops one element at a time and fails
            // on the first missing one — the FIFO ends up drained and
            // the dequeues uncounted.
            fifo_clear(&mut self.chip[fifo as usize]);
            return Err(RunError::FifoUnderflow(
                self.syms.chip_name(fifo).to_string(),
            ));
        }
        self.dense.fifo_deqs += n as u64;
        self.charge_dram(n as u64)?;
        {
            let Machine {
                dram_input,
                dram_out,
                dram_state,
                words,
                chip,
                syms,
                ..
            } = self;
            let st = &mut chip[fifo as usize];
            let arr = match dram_words_mut(dram_input, dram_out, dram_state[dst as usize]) {
                Some(arr) => arr,
                None => {
                    for _ in 0..n {
                        fifo_pop(words, st);
                    }
                    return Err(RunError::UnknownMemory(syms.dram_name(dst).to_string()));
                }
            };
            if off + n > arr.len() {
                let len = arr.len();
                for _ in 0..n {
                    fifo_pop(words, st);
                }
                return Err(RunError::OutOfBounds {
                    mem: syms.dram_name(dst).to_string(),
                    index: (off + n) as i64,
                    len,
                });
            }
            for slot in &mut arr[off..off + n] {
                *slot = fifo_pop(words, st).expect("length checked");
            }
        }
        self.log_dram_write(dst, off, n);
        self.dense
            .note_dram_write(dst, n as u64, self.current_node());
        Ok(())
    }

    fn do_store_scalar(&mut self, dst: Slot, ix: usize, v: f64) -> Result<(), RunError> {
        let st = self.dram_state[dst as usize];
        if !st.mapped {
            return Err(RunError::UnknownMemory(
                self.syms.dram_name(dst).to_string(),
            ));
        }
        if ix >= st.len {
            return Err(RunError::OutOfBounds {
                mem: self.syms.dram_name(dst).to_string(),
                index: ix as i64,
                len: st.len,
            });
        }
        self.charge_dram(1)?;
        let arr = self.dram_words_of_mut(dst).expect("checked");
        arr[ix] = v;
        self.log_dram_write(dst, ix, 1);
        self.dense.dram_random_writes += 1;
        Ok(())
    }

    fn do_set_reg(&mut self, reg: Slot, v: f64) -> Result<(), RunError> {
        let st = self.chip[reg as usize];
        if st.tag != ChipTag::Reg {
            return Err(self.unknown_chip(reg));
        }
        self.words[st.woff] = v;
        Ok(())
    }

    fn do_enq(&mut self, fifo: Slot, v: f64) -> Result<(), RunError> {
        if self.chip[fifo as usize].tag != ChipTag::Fifo {
            return Err(self.unknown_chip(fifo));
        }
        let Machine { words, chip, .. } = self;
        let st = &mut chip[fifo as usize];
        fifo_reserve(words, st, 1);
        fifo_push(words, st, v);
        self.dense.fifo_enqs += 1;
        Ok(())
    }

    fn do_gen_bit_vector(
        &mut self,
        dst: Slot,
        src: Slot,
        s: usize,
        n: usize,
        d: usize,
    ) -> Result<(), RunError> {
        // Gather coordinates from the source memory into the reusable
        // scratch buffer.
        let mut coords = std::mem::take(&mut self.scratch);
        coords.clear();
        match self.chip[src as usize].tag {
            ChipTag::Fifo => {
                if self.chip[src as usize].len < n {
                    // Reference semantics: pop until empty, fail.
                    fifo_clear(&mut self.chip[src as usize]);
                    self.scratch = coords;
                    return Err(RunError::FifoUnderflow(
                        self.syms.chip_name(src).to_string(),
                    ));
                }
                let Machine { words, chip, .. } = self;
                let st = &mut chip[src as usize];
                for _ in 0..n {
                    let v = fifo_pop(words, st).expect("length checked");
                    coords.push(v.round() as usize);
                }
                self.dense.fifo_deqs += n as u64;
            }
            ChipTag::Words => {
                let st = self.chip[src as usize];
                if s + n > st.len {
                    self.scratch = coords;
                    return Err(RunError::OutOfBounds {
                        mem: self.syms.chip_name(src).to_string(),
                        index: (s + n) as i64,
                        len: st.len,
                    });
                }
                self.dense.sram_reads += n as u64;
                coords.extend(
                    self.words[st.woff + s..st.woff + s + n]
                        .iter()
                        .map(|&v| v.round() as usize),
                );
            }
            _ => {
                self.scratch = coords;
                return Err(RunError::UnknownMemory(
                    self.syms.chip_name(src).to_string(),
                ));
            }
        }
        let result = if self.chip[dst as usize].tag == ChipTag::Bits {
            // The logical bit length only grows (matching the old
            // `Vec<bool>` resize); regeneration clears every word up
            // to the new length before setting the coordinate bits.
            let new_len = self.chip[dst as usize].len.max(d);
            let nw = bit_words_for(new_len);
            self.reserve_bits(dst, nw);
            let st = &mut self.chip[dst as usize];
            st.len = new_len;
            let off = st.boff;
            self.bits[off..off + nw].fill(0);
            let mut failed = None;
            for &c in &coords {
                if c >= new_len {
                    failed = Some(RunError::OutOfBounds {
                        mem: self.syms.chip_name(dst).to_string(),
                        index: c as i64,
                        len: new_len,
                    });
                    break;
                }
                self.bits[off + (c >> 6)] |= 1u64 << (c & 63);
            }
            match failed {
                Some(e) => Err(e),
                None => {
                    self.dense.bv_gen_bits += d as u64;
                    Ok(())
                }
            }
        } else {
            Err(RunError::UnknownMemory(
                self.syms.chip_name(dst).to_string(),
            ))
        };
        self.scratch = coords;
        result
    }

    fn exec(&mut self, p: &ResolvedProgram, stmt: &ResolvedStmt) -> Result<(), RunError> {
        match stmt {
            ResolvedStmt::Alloc { slot, kind, size } => self.do_alloc(*slot, *kind, *size),
            ResolvedStmt::Bind { var, value } => {
                let v = self.eval(p, *value)?;
                self.env[*var as usize] = Some(v);
                Ok(())
            }
            ResolvedStmt::Load {
                dst,
                src,
                start,
                end,
            } => {
                let s = self.eval(p, *start)?;
                let e = self.eval(p, *end)?;
                self.do_load(*dst, *src, s, e)
            }
            ResolvedStmt::Store {
                dst,
                offset,
                src,
                len,
            } => {
                let off = self.eval(p, *offset)?;
                let off = index_of(off, || "store offset".to_string())?;
                let n = self.eval(p, *len)?;
                let n = index_of(n, || "store len".to_string())?;
                self.do_store(*dst, off, *src, n)
            }
            ResolvedStmt::StreamStore {
                dst,
                offset,
                fifo,
                len,
            } => {
                let off = self.eval(p, *offset)?;
                let off = index_of(off, || "stream store offset".to_string())?;
                let n = self.eval(p, *len)?;
                let n = index_of(n, || "stream store len".to_string())?;
                self.do_stream_store(*dst, off, *fifo, n)
            }
            ResolvedStmt::StoreScalar { dst, index, value } => {
                let ix = self.eval(p, *index)?;
                let ix = index_of(ix, || "scalar store index".to_string())?;
                let v = self.eval(p, *value)?;
                self.do_store_scalar(*dst, ix, v)
            }
            ResolvedStmt::WriteMem {
                mem,
                index,
                value,
                random,
            } => {
                let ix = self.eval(p, *index)?;
                let ix = index_of(ix, || self.syms.chip_name(*mem).to_string())?;
                let v = self.eval(p, *value)?;
                self.write_on_chip(*mem, ix, v, *random, false)
            }
            ResolvedStmt::RmwAdd { mem, index, value } => {
                let ix = self.eval(p, *index)?;
                let ix = index_of(ix, || self.syms.chip_name(*mem).to_string())?;
                let v = self.eval(p, *value)?;
                self.write_on_chip(*mem, ix, v, true, true)
            }
            ResolvedStmt::SetReg { reg, value } => {
                let v = self.eval(p, *value)?;
                self.do_set_reg(*reg, v)
            }
            ResolvedStmt::Enq { fifo, value } => {
                let v = self.eval(p, *value)?;
                self.do_enq(*fifo, v)
            }
            ResolvedStmt::GenBitVector {
                dst,
                src,
                src_start,
                count,
                dim,
            } => {
                let n = self.eval(p, *count)?;
                let n = index_of(n, || "genbv count".to_string())?;
                let d = self.eval(p, *dim)?;
                let d = index_of(d, || "genbv dim".to_string())?;
                let s = self.eval(p, *src_start)?;
                let s = index_of(s, || "genbv start".to_string())?;
                self.do_gen_bit_vector(*dst, *src, s, n, d)
            }
            ResolvedStmt::Foreach { id, counter, body } => {
                self.node_stack.push(*id);
                let result = self.run_counter(p, counter, |m| {
                    m.charge_step()?;
                    m.dense.node_trips[*id] += 1;
                    for s in body {
                        m.exec(p, s)?;
                    }
                    Ok(())
                });
                self.node_stack.pop();
                result
            }
            ResolvedStmt::Reduce {
                id,
                reg,
                counter,
                body,
                expr,
            } => {
                self.node_stack.push(*id);
                let mut acc = match self.reg_value(*reg) {
                    Ok(v) => v,
                    Err(e) => {
                        self.node_stack.pop();
                        return Err(e);
                    }
                };
                let result = self.run_counter(p, counter, |m| {
                    m.charge_step()?;
                    m.dense.node_trips[*id] += 1;
                    for s in body {
                        m.exec(p, s)?;
                    }
                    let v = m.eval(p, *expr)?;
                    m.dense.reduce_elems += 1;
                    m.dense.alu_ops += 1; // the tree-add
                    acc += v;
                    Ok(())
                });
                self.node_stack.pop();
                result?;
                self.write_reduce_acc(Some(*reg), acc);
                Ok(())
            }
        }
    }

    fn run_counter(
        &mut self,
        p: &ResolvedProgram,
        counter: &ResolvedCounter,
        mut body: impl FnMut(&mut Machine) -> Result<(), RunError>,
    ) -> Result<(), RunError> {
        match counter {
            ResolvedCounter::Range {
                var,
                min,
                max,
                step,
            } => {
                let lo = self.eval(p, *min)?;
                let hi = self.eval(p, *max)?;
                let step = *step;
                debug_assert!(step > 0, "non-positive loop step");
                let var = *var as usize;
                let saved = self.env[var];
                let mut v = lo;
                while v < hi {
                    self.env[var] = Some(v);
                    body(self)?;
                    v += step as f64;
                }
                self.env[var] = saved;
                Ok(())
            }
            ResolvedCounter::Scan1 {
                bv,
                pos_var,
                idx_var,
            } => {
                let depth = self.scan_depth;
                let dim = self.scan_snapshot1(*bv)?;
                self.scan_depth = depth + 1;
                let (pos_var, idx_var) = (*pos_var as usize, *idx_var as usize);
                let saved_pos = self.env[pos_var];
                let saved_idx = self.env[idx_var];
                let mut pos = 0u64;
                for idx in 0..dim {
                    if self.scan_pool[depth].a_set(idx) {
                        self.env[pos_var] = Some(pos as f64);
                        self.env[idx_var] = Some(idx as f64);
                        self.dense.scan_emits += 1;
                        body(self)?;
                        pos += 1;
                    }
                }
                self.scan_depth = depth;
                self.env[pos_var] = saved_pos;
                self.env[idx_var] = saved_idx;
                Ok(())
            }
            ResolvedCounter::Scan2 {
                op,
                bv_a,
                bv_b,
                a_pos_var,
                b_pos_var,
                out_pos_var,
                idx_var,
            } => {
                let depth = self.scan_depth;
                let dim = self.scan_snapshot2(*bv_a, *bv_b)?;
                self.scan_depth = depth + 1;
                let vars = [
                    *a_pos_var as usize,
                    *b_pos_var as usize,
                    *out_pos_var as usize,
                    *idx_var as usize,
                ];
                let saved = vars.map(|v| self.env[v]);
                let (mut ap, mut bp, mut op_count) = (0u64, 0u64, 0u64);
                for idx in 0..dim {
                    let has_a = self.scan_pool[depth].a_set(idx);
                    let has_b = self.scan_pool[depth].b_set(idx);
                    let combined = match op {
                        ScanOp::And => has_a && has_b,
                        ScanOp::Or => has_a || has_b,
                    };
                    if combined {
                        self.env[vars[0]] = Some(if has_a { ap as f64 } else { -1.0 });
                        self.env[vars[1]] = Some(if has_b { bp as f64 } else { -1.0 });
                        self.env[vars[2]] = Some(op_count as f64);
                        self.env[vars[3]] = Some(idx as f64);
                        self.dense.scan_emits += 1;
                        body(self)?;
                        op_count += 1;
                    }
                    if has_a {
                        ap += 1;
                    }
                    if has_b {
                        bp += 1;
                    }
                }
                self.scan_depth = depth;
                for (v, old) in vars.iter().zip(saved) {
                    self.env[*v] = old;
                }
                Ok(())
            }
        }
    }

    /// Snapshots one bit vector into the scan pool slot at the current
    /// depth (a slice memcpy of the packed words), returning the scan
    /// dimension. Counts the entry's `scan_bits`.
    fn scan_snapshot1(&mut self, bv: Slot) -> Result<usize, RunError> {
        let depth = self.scan_depth;
        if self.scan_pool.len() <= depth {
            self.scan_pool.resize_with(depth + 1, ScanBuf::default);
        }
        let st = self.chip[bv as usize];
        if st.tag != ChipTag::Bits {
            return Err(self.unknown_chip(bv));
        }
        let nw = bit_words_for(st.len);
        let buf = &mut self.scan_pool[depth];
        buf.aw = ScanBuf::copy_into(&mut buf.a, &self.bits[st.boff..st.boff + nw]);
        self.dense.scan_bits += st.len as u64;
        Ok(st.len)
    }

    /// Snapshots both bit vectors of a `Scan2` into the scan pool slot
    /// at the current depth, returning the scan dimension (the longer
    /// of the two). Counts the entry's `scan_bits`.
    fn scan_snapshot2(&mut self, bv_a: Slot, bv_b: Slot) -> Result<usize, RunError> {
        let depth = self.scan_depth;
        if self.scan_pool.len() <= depth {
            self.scan_pool.resize_with(depth + 1, ScanBuf::default);
        }
        // Error order matches the tree engines: `a` is examined first.
        let sa = self.chip[bv_a as usize];
        if sa.tag != ChipTag::Bits {
            return Err(self.unknown_chip(bv_a));
        }
        let sb = self.chip[bv_b as usize];
        if sb.tag != ChipTag::Bits {
            return Err(self.unknown_chip(bv_b));
        }
        let dim = sa.len.max(sb.len);
        let buf = &mut self.scan_pool[depth];
        let naw = bit_words_for(sa.len);
        let nbw = bit_words_for(sb.len);
        buf.aw = ScanBuf::copy_into(&mut buf.a, &self.bits[sa.boff..sa.boff + naw]);
        buf.bw = ScanBuf::copy_into(&mut buf.b, &self.bits[sb.boff..sb.boff + nbw]);
        self.dense.scan_bits += 2 * dim as u64;
        Ok(dim)
    }
}

/// The bytecode dispatch engine: a program counter over the compiled
/// op vector, loop state in a dense frame stack, expressions evaluated
/// postfix on a value stack with the top cached in a register. No
/// recursion anywhere on the hot path (nested `RangeSimple`
/// superinstructions recurse to a constant depth bounded by
/// [`crate::bytecode::MAX_SIMPLE_RANK`]).
impl Machine {
    /// Executes the compiled op vector from the top.
    fn run_ops(&mut self, prog: &CompiledProgram) -> Result<(), RunError> {
        self.frames.clear();
        self.vstack.clear();
        self.node_stack.clear();
        self.scan_depth = 0;
        let ops = prog.ops();
        let mut pc = 0usize;
        loop {
            match &ops[pc] {
                Op::Halt => return Ok(()),
                Op::RangeSimple {
                    id,
                    var,
                    min,
                    max,
                    step,
                    body,
                    body_len,
                    reduce,
                } => {
                    pc = self.run_range_simple(
                        prog, *id, *var, *min, *max, *step, *body, *body_len, *reduce,
                    )?;
                }
                Op::Scan1Simple {
                    id,
                    bv,
                    pos_var,
                    idx_var,
                    body,
                    body_len,
                    reduce,
                } => {
                    pc = self.run_scan1_simple(
                        prog, *id, *bv, *pos_var, *idx_var, *body, *body_len, *reduce,
                    )?;
                }
                Op::Scan2Simple {
                    id,
                    op,
                    bv_a,
                    bv_b,
                    vars,
                    body,
                    body_len,
                    reduce,
                } => {
                    pc = self.run_scan2_simple(
                        prog, *id, *op, *bv_a, *bv_b, *vars, *body, *body_len, *reduce,
                    )?;
                }
                Op::EnterRange {
                    id,
                    var,
                    min,
                    max,
                    step,
                    reduce,
                    exit,
                } => {
                    pc =
                        self.enter_range(prog, pc, *id, *var, *min, *max, *step, *reduce, *exit)?;
                }
                Op::EnterScan1 {
                    id,
                    bv,
                    pos_var,
                    idx_var,
                    reduce,
                    exit,
                } => {
                    pc = self.enter_scan1(pc, *id, *bv, *pos_var, *idx_var, *reduce, *exit)?;
                }
                Op::EnterScan2 {
                    id,
                    op,
                    bv_a,
                    bv_b,
                    vars,
                    reduce,
                    exit,
                } => {
                    pc = self.enter_scan2(pc, *id, *op, *bv_a, *bv_b, *vars, *reduce, *exit)?;
                }
                Op::ReduceTail { expr } => {
                    let v = self.operand_value(prog, *expr)?;
                    self.dense.reduce_elems += 1;
                    self.dense.alu_ops += 1; // the tree-add
                    self.frames.last_mut().expect("reduce frame").acc += v;
                    pc += 1;
                }
                Op::Next { body } => {
                    pc = self.loop_next(*body, pc)?;
                }
                op => {
                    self.exec_simple_op(prog, op)?;
                    pc += 1;
                }
            }
        }
    }

    /// Executes one straight-line op (everything except loop control).
    #[cfg_attr(not(debug_assertions), inline(always))]
    #[cfg_attr(debug_assertions, inline(never))]
    fn exec_simple_op(&mut self, prog: &CompiledProgram, op: &Op) -> Result<(), RunError> {
        match op {
            Op::Alloc { slot, kind, size } => self.do_alloc(*slot, *kind, *size),
            Op::Bind { var, value } => {
                let v = self.operand_value(prog, *value)?;
                self.env[*var as usize] = Some(v);
                Ok(())
            }
            Op::Load {
                dst,
                src,
                start,
                end,
            } => {
                let s = self.operand_value(prog, *start)?;
                let e = self.operand_value(prog, *end)?;
                self.do_load(*dst, *src, s, e)
            }
            Op::Store {
                dst,
                offset,
                src,
                len,
            } => {
                let off = self.operand_value(prog, *offset)?;
                let off = index_of(off, || "store offset".to_string())?;
                let n = self.operand_value(prog, *len)?;
                let n = index_of(n, || "store len".to_string())?;
                self.do_store(*dst, off, *src, n)
            }
            Op::StreamStore {
                dst,
                offset,
                fifo,
                len,
            } => {
                let off = self.operand_value(prog, *offset)?;
                let off = index_of(off, || "stream store offset".to_string())?;
                let n = self.operand_value(prog, *len)?;
                let n = index_of(n, || "stream store len".to_string())?;
                self.do_stream_store(*dst, off, *fifo, n)
            }
            Op::StoreScalar { dst, index, value } => {
                let ix = self.operand_value(prog, *index)?;
                let ix = index_of(ix, || "scalar store index".to_string())?;
                let v = self.operand_value(prog, *value)?;
                self.do_store_scalar(*dst, ix, v)
            }
            Op::WriteMem {
                mem,
                index,
                value,
                random,
            } => {
                let ix = self.operand_value(prog, *index)?;
                let ix = index_of(ix, || self.syms.chip_name(*mem).to_string())?;
                let v = self.operand_value(prog, *value)?;
                self.write_on_chip(*mem, ix, v, *random, false)
            }
            Op::RmwAdd { mem, index, value } => {
                let ix = self.operand_value(prog, *index)?;
                let ix = index_of(ix, || self.syms.chip_name(*mem).to_string())?;
                let v = self.operand_value(prog, *value)?;
                self.write_on_chip(*mem, ix, v, true, true)
            }
            Op::SetReg { reg, value } => {
                let v = self.operand_value(prog, *value)?;
                self.do_set_reg(*reg, v)
            }
            Op::Enq { fifo, value } => {
                let v = self.operand_value(prog, *value)?;
                self.do_enq(*fifo, v)
            }
            Op::GenBitVector {
                dst,
                src,
                src_start,
                count,
                dim,
            } => {
                let n = self.operand_value(prog, *count)?;
                let n = index_of(n, || "genbv count".to_string())?;
                let d = self.operand_value(prog, *dim)?;
                let d = index_of(d, || "genbv dim".to_string())?;
                let s = self.operand_value(prog, *src_start)?;
                let s = index_of(s, || "genbv start".to_string())?;
                self.do_gen_bit_vector(*dst, *src, s, n, d)
            }
            _ => unreachable!("loop-control op in straight-line position"),
        }
    }

    /// Runs a straight-line-body `Range` loop natively: bounds evaluated
    /// once, the body ops stepped per iteration, the optional reduction
    /// folded — no frame, no per-iteration dispatch of loop control.
    #[allow(clippy::too_many_arguments)]
    fn run_range_simple(
        &mut self,
        prog: &CompiledProgram,
        id: usize,
        var: Slot,
        min: Operand,
        max: Operand,
        step: i64,
        body: OpId,
        body_len: u32,
        reduce: Option<(Slot, Operand)>,
    ) -> Result<usize, RunError> {
        let mut acc = self.read_reduce_acc(reduce.map(|(reg, _)| reg))?;
        let lo = self.operand_value(prog, min)?;
        let hi = self.operand_value(prog, max)?;
        debug_assert!(step > 0, "non-positive loop step");
        let var = var as usize;
        let saved = self.env[var];
        let ops = prog.ops();
        let end = (body + body_len) as usize;
        let fstep = step as f64;
        let mut v = lo;
        // The lowering pass tags each RangeSimple with its
        // vector-eligibility class; the op sits immediately before its
        // body, so its own pc is `body - 1`.
        let vclass = if self.vector_enabled {
            prog.vec_class(body as usize - 1)
        } else {
            VecClass::None
        };
        // Trip/fold counts accumulate in registers and flush to the
        // dense counters on every exit path — including errors — so the
        // observable statistics are identical to per-iteration bumping.
        let mut trips = 0u64;
        let mut folds = 0u64;
        let mut result: Result<(), RunError> = Ok(());
        // Empty-body reductions over a unit-stride gather shape (the
        // SpMV dot product) go through the vector tier when tagged
        // eligible; ineligible runtime state falls through to the
        // generic loop below.
        if vclass == VecClass::GatherReduce {
            if let Some((reg, expr)) = reduce {
                if let Some(r) =
                    self.try_vector_reduce(prog, id, var, saved, lo, hi, reg, expr, acc, end)
                {
                    return r;
                }
            }
        }
        // Single-statement bodies (the scatter-accumulate shape) get a
        // dedicated loop: the body op is loop-invariant, so its
        // dispatch is hoisted out of the iteration entirely.
        if body_len == 1 && reduce.is_none() {
            let op = &ops[body as usize];
            // The scatter superinstruction: a lone on-chip write whose
            // operands are hot-shape gathers. The arena makes every
            // referenced slot's region provably loop-invariant (the
            // body cannot allocate, enqueue, or regenerate), so slot
            // states hoist out of the loop and statistics batch in
            // registers.
            let vector = vclass == VecClass::Scatter;
            match *op {
                Op::RmwAdd { mem, index, value } => {
                    if let Some(r) = self.try_scatter_loop(
                        prog, id, var, saved, v, hi, fstep, mem, index, value, true, true, vector,
                        end,
                    ) {
                        return r;
                    }
                }
                Op::WriteMem {
                    mem,
                    index,
                    value,
                    random,
                } => {
                    if let Some(r) = self.try_scatter_loop(
                        prog, id, var, saved, v, hi, fstep, mem, index, value, random, false,
                        vector, end,
                    ) {
                        return r;
                    }
                }
                _ => {}
            }
            if !matches!(
                op,
                Op::RangeSimple { .. } | Op::Scan1Simple { .. } | Op::Scan2Simple { .. }
            ) {
                if v < hi {
                    self.node_stack.push(id);
                    // Fuel mirrors in a register like the trip counter
                    // and flushes on every exit path; the single-op
                    // body cannot consume fuel itself (no nested loop).
                    let mut fuel = self.fuel;
                    let interrupts = self.interrupts;
                    while v < hi {
                        if fuel == 0 {
                            result = Err(exhausted_fuel(self.fuel_cause, self.step_limit));
                            break;
                        }
                        fuel -= 1;
                        if interrupts && fuel & INTERRUPT_MASK == 0 {
                            if let Err(e) = check_interrupts(
                                self.deadline_at,
                                self.deadline_ms(),
                                self.budget.cancel.as_ref(),
                            ) {
                                result = Err(e);
                                break;
                            }
                        }
                        self.env[var] = Some(v);
                        trips += 1;
                        if let Err(e) = self.exec_simple_op(prog, op) {
                            result = Err(e);
                            break;
                        }
                        v += fstep;
                    }
                    self.fuel = fuel;
                    if result.is_ok() {
                        self.node_stack.pop();
                    }
                }
                self.dense.node_trips[id] += trips;
                result?;
                self.env[var] = saved;
                return Ok(end);
            }
        }
        // Multi-statement straight-line scatter bodies (fused
        // fill/update loops) chunk through the vector tier;
        // ineligible runtime state falls through to the generic loop.
        if vclass == VecClass::MultiScatter && reduce.is_none() {
            if let Some(r) = self.try_multi_scatter(prog, id, var, saved, v, hi, body, end) {
                return r;
            }
        }
        if v < hi {
            self.node_stack.push(id);
            // Field-based fuel here: the body can contain nested
            // `RangeSimple` superinstructions that consume fuel
            // themselves, so a register mirror would go stale.
            'iters: while v < hi {
                if let Err(e) = self.charge_step() {
                    result = Err(e);
                    break 'iters;
                }
                self.env[var] = Some(v);
                trips += 1;
                if let Err(e) = self.run_simple_body(prog, body, end) {
                    result = Err(e);
                    break 'iters;
                }
                if let Some((_, expr)) = reduce {
                    match self.operand_value(prog, expr) {
                        Ok(x) => {
                            folds += 1; // reduce_elems and the tree-add
                            acc += x;
                        }
                        Err(e) => {
                            result = Err(e);
                            break 'iters;
                        }
                    }
                }
                v += fstep;
            }
            if result.is_ok() {
                self.node_stack.pop();
            }
        }
        self.dense.node_trips[id] += trips;
        if folds > 0 {
            self.dense.reduce_elems += folds;
            self.dense.alu_ops += folds;
        }
        result?;
        self.env[var] = saved;
        self.write_reduce_acc(reduce.map(|(reg, _)| reg), acc);
        Ok(end)
    }

    /// Steps one iteration's worth of superinstruction body ops:
    /// straight-line ops dispatch directly, nested superinstructions
    /// run their own loops (constant recursion depth, capped by
    /// [`crate::bytecode::MAX_SIMPLE_RANK`]) and their body spans are
    /// skipped here.
    fn run_simple_body(
        &mut self,
        prog: &CompiledProgram,
        body: OpId,
        end: usize,
    ) -> Result<(), RunError> {
        let ops = prog.ops();
        let mut i = body as usize;
        while i < end {
            match &ops[i] {
                Op::RangeSimple {
                    id,
                    var,
                    min,
                    max,
                    step,
                    body,
                    body_len,
                    reduce,
                } => {
                    i = self.run_range_simple(
                        prog, *id, *var, *min, *max, *step, *body, *body_len, *reduce,
                    )?;
                }
                Op::Scan1Simple {
                    id,
                    bv,
                    pos_var,
                    idx_var,
                    body,
                    body_len,
                    reduce,
                } => {
                    i = self.run_scan1_simple(
                        prog, *id, *bv, *pos_var, *idx_var, *body, *body_len, *reduce,
                    )?;
                }
                Op::Scan2Simple {
                    id,
                    op,
                    bv_a,
                    bv_b,
                    vars,
                    body,
                    body_len,
                    reduce,
                } => {
                    i = self.run_scan2_simple(
                        prog, *id, *op, *bv_a, *bv_b, *vars, *body, *body_len, *reduce,
                    )?;
                }
                op => {
                    self.exec_simple_op(prog, op)?;
                    i += 1;
                }
            }
        }
        Ok(())
    }

    /// Runs a straight-line-body single bit-vector `Scan` loop
    /// natively: the vector is snapshotted once, then its set bits
    /// iterate without a frame or per-emit `Next` dispatch.
    /// Statistics, environment effects, and error order match the
    /// framed [`Op::EnterScan1`]/[`Op::Next`] protocol exactly.
    #[allow(clippy::too_many_arguments)]
    fn run_scan1_simple(
        &mut self,
        prog: &CompiledProgram,
        id: usize,
        bv: Slot,
        pos_var: Slot,
        idx_var: Slot,
        body: OpId,
        body_len: u32,
        reduce: Option<(Slot, Operand)>,
    ) -> Result<usize, RunError> {
        let mut acc = self.read_reduce_acc(reduce.map(|(reg, _)| reg))?;
        let depth = self.scan_depth;
        let dim = self.scan_snapshot1(bv)?;
        let pos_var = pos_var as usize;
        let idx_var = idx_var as usize;
        let saved = [self.env[pos_var], self.env[idx_var]];
        let end = (body + body_len) as usize;
        // Emit/fold counts accumulate in registers and flush to the
        // dense counters on every exit path — including errors — so
        // the observable statistics are identical to per-emit bumping.
        // Fuel stays field-based: the body can nest superinstructions
        // that consume fuel themselves. `emits` counts emit positions
        // *reached* (bumped before the step charge, like the tree and
        // reference walkers); `trips` counts charged steps.
        let mut emits = 0u64;
        let mut trips = 0u64;
        let mut folds = 0u64;
        let mut result: Result<(), RunError> = Ok(());
        let mut entered = false;
        let mut pos = 0u64;
        let mut idx = 0usize;
        // Vector tier: non-emitting bits consume no fuel and no
        // statistics, so jumping whole zero words at a time (one
        // trailing_zeros per 64 positions) is observably identical to
        // probing them one by one.
        let fast = self.vector_enabled;
        'emits: while idx < dim {
            if fast {
                match self.scan_pool[depth].next_a_set(idx, dim) {
                    Some(i) => idx = i,
                    None => break 'emits,
                }
            }
            if !self.scan_pool[depth].a_set(idx) {
                idx += 1;
                continue;
            }
            emits += 1;
            if let Err(e) = self.charge_step() {
                result = Err(e);
                break 'emits;
            }
            if !entered {
                entered = true;
                self.node_stack.push(id);
                self.scan_depth = depth + 1;
            }
            self.env[pos_var] = Some(pos as f64);
            self.env[idx_var] = Some(idx as f64);
            trips += 1;
            if let Err(e) = self.run_simple_body(prog, body, end) {
                result = Err(e);
                break 'emits;
            }
            if let Some((_, expr)) = reduce {
                match self.operand_value(prog, expr) {
                    Ok(x) => {
                        folds += 1; // reduce_elems and the tree-add
                        acc += x;
                    }
                    Err(e) => {
                        result = Err(e);
                        break 'emits;
                    }
                }
            }
            pos += 1;
            idx += 1;
        }
        if entered && result.is_ok() {
            self.node_stack.pop();
            self.scan_depth = depth;
        }
        self.dense.scan_emits += emits;
        self.dense.node_trips[id] += trips;
        if folds > 0 {
            self.dense.reduce_elems += folds;
            self.dense.alu_ops += folds;
        }
        result?;
        self.env[pos_var] = saved[0];
        self.env[idx_var] = saved[1];
        self.write_reduce_acc(reduce.map(|(reg, _)| reg), acc);
        Ok(end)
    }

    /// Runs a straight-line-body two-input co-iteration `Scan` loop
    /// natively (see [`Machine::run_scan1_simple`]): both vectors are
    /// snapshotted once, the combined bits emit, and the per-side
    /// position counters advance exactly as the framed
    /// [`Op::EnterScan2`]/[`Op::Next`] protocol does — the emitting
    /// index advances its positions after the body.
    #[allow(clippy::too_many_arguments)]
    fn run_scan2_simple(
        &mut self,
        prog: &CompiledProgram,
        id: usize,
        op: ScanOp,
        bv_a: Slot,
        bv_b: Slot,
        vars: [Slot; 4],
        body: OpId,
        body_len: u32,
        reduce: Option<(Slot, Operand)>,
    ) -> Result<usize, RunError> {
        let mut acc = self.read_reduce_acc(reduce.map(|(reg, _)| reg))?;
        let depth = self.scan_depth;
        let dim = self.scan_snapshot2(bv_a, bv_b)?;
        let vars = vars.map(|v| v as usize);
        let saved = vars.map(|v| self.env[v]);
        let end = (body + body_len) as usize;
        // `emits` counts emit positions *reached* (bumped before the
        // step charge, like the tree and reference walkers); `trips`
        // counts charged steps.
        let mut emits = 0u64;
        let mut trips = 0u64;
        let mut folds = 0u64;
        let mut result: Result<(), RunError> = Ok(());
        let mut entered = false;
        let (mut idx, mut ap, mut bp, mut emitted) = (0usize, 0u64, 0u64, 0u64);
        // Vector tier: skipped (non-combined) positions consume no fuel
        // and no statistics — only the side position counters advance —
        // so batching whole words with popcounts is observably
        // identical to probing one position at a time.
        let fast = self.vector_enabled;
        'emits: while idx < dim {
            if fast {
                let (next, askip, bskip) = self.scan_pool[depth].scan2_skip(op, idx, dim);
                ap += askip;
                bp += bskip;
                idx = next;
                if idx >= dim {
                    break 'emits;
                }
            }
            let has_a = self.scan_pool[depth].a_set(idx);
            let has_b = self.scan_pool[depth].b_set(idx);
            let combined = match op {
                ScanOp::And => has_a && has_b,
                ScanOp::Or => has_a || has_b,
            };
            if !combined {
                if has_a {
                    ap += 1;
                }
                if has_b {
                    bp += 1;
                }
                idx += 1;
                continue;
            }
            emits += 1;
            if let Err(e) = self.charge_step() {
                result = Err(e);
                break 'emits;
            }
            if !entered {
                entered = true;
                self.node_stack.push(id);
                self.scan_depth = depth + 1;
            }
            self.env[vars[0]] = Some(if has_a { ap as f64 } else { -1.0 });
            self.env[vars[1]] = Some(if has_b { bp as f64 } else { -1.0 });
            self.env[vars[2]] = Some(emitted as f64);
            self.env[vars[3]] = Some(idx as f64);
            trips += 1;
            if let Err(e) = self.run_simple_body(prog, body, end) {
                result = Err(e);
                break 'emits;
            }
            if let Some((_, expr)) = reduce {
                match self.operand_value(prog, expr) {
                    Ok(x) => {
                        folds += 1; // reduce_elems and the tree-add
                        acc += x;
                    }
                    Err(e) => {
                        result = Err(e);
                        break 'emits;
                    }
                }
            }
            // The emitting index advances its positions after the
            // body, exactly as the framed protocol does.
            if has_a {
                ap += 1;
            }
            if has_b {
                bp += 1;
            }
            emitted += 1;
            idx += 1;
        }
        if entered && result.is_ok() {
            self.node_stack.pop();
            self.scan_depth = depth;
        }
        self.dense.scan_emits += emits;
        self.dense.node_trips[id] += trips;
        if folds > 0 {
            self.dense.reduce_elems += folds;
            self.dense.alu_ops += folds;
        }
        result?;
        for (v, old) in vars.iter().zip(saved) {
            self.env[*v] = old;
        }
        self.write_reduce_acc(reduce.map(|(reg, _)| reg), acc);
        Ok(end)
    }

    /// Resolves an operand into a hot-loop form whose referenced slot
    /// states are loop-invariant, or `None` when the shape (or a slot's
    /// current allocation) is not eligible.
    fn hot_value(&self, prog: &CompiledProgram, o: Operand) -> Option<HotValue> {
        match o {
            Operand::Const(c) => Some(HotValue::Const(c)),
            Operand::Var(v) => Some(HotValue::Var(v)),
            Operand::Gather {
                chip, random, var, ..
            } => Some(HotValue::Gather(self.hot_gather(chip, random, var)?)),
            Operand::Fused(i) => match prog.fused()[i as usize] {
                FusedOp::BinGather { a, op, mem } => Some(HotValue::BinGather {
                    a,
                    op,
                    g: self.hot_gather(mem.chip, mem.random, mem.var)?,
                }),
                _ => None,
            },
            // The two-op `[VarConstBin, End]` expression program — the
            // lowering of `v op const` bodies like `s[j] = j * 2` —
            // evaluates without the postfix stack machine.
            Operand::Expr(e) => {
                let eops = prog.eops();
                match (eops.get(e as usize), eops.get(e as usize + 1)) {
                    (Some(&EOp::VarConstBin { var, c, op }), Some(&EOp::End)) => {
                        Some(HotValue::VarConstBin { var, c, op })
                    }
                    _ => None,
                }
            }
        }
    }

    /// A gather whose source slot is currently plain words: its region
    /// and shuffle attribution hoist out of the loop.
    fn hot_gather(&self, chip: Slot, random: bool, var: Slot) -> Option<HotGather> {
        let st = &self.chip[chip as usize];
        if st.tag != ChipTag::Words {
            return None;
        }
        Some(HotGather {
            chip,
            var,
            woff: st.woff,
            len: st.len,
            shuffle: random && st.kind == MemKind::SparseSram,
        })
    }

    /// Evaluates a hot operand, batching statistics into `c`.
    /// Evaluation order, statistics, and errors are identical to the
    /// generic [`Machine::operand_value`] path.
    #[inline(always)]
    fn hot_eval(&mut self, hv: HotValue, c: &mut HotCounters) -> Result<f64, RunError> {
        match hv {
            HotValue::Const(k) => Ok(k),
            HotValue::Var(v) => match self.env[v as usize] {
                Some(x) => Ok(x),
                None => Err(RunError::UnboundVar(self.syms.var_name(v).to_string())),
            },
            HotValue::Gather(g) => self.hot_gather_read(g, c),
            HotValue::BinGather { a, op, g } => {
                let x = match self.env[a as usize] {
                    Some(x) => x,
                    None => {
                        return Err(RunError::UnboundVar(self.syms.var_name(a).to_string()));
                    }
                };
                let r = self.hot_gather_read(g, c)?;
                c.alu_ops += 1;
                Ok(op.apply(x, r))
            }
            HotValue::VarConstBin { var, c: k, op } => {
                let a = match self.env[var as usize] {
                    Some(x) => x,
                    None => {
                        return Err(RunError::UnboundVar(self.syms.var_name(var).to_string()));
                    }
                };
                c.alu_ops += 1;
                Ok(op.apply(a, k))
            }
        }
    }

    #[inline(always)]
    fn hot_gather_read(&mut self, g: HotGather, c: &mut HotCounters) -> Result<f64, RunError> {
        let ixf = match self.env[g.var as usize] {
            Some(x) => x,
            None => {
                return Err(RunError::UnboundVar(self.syms.var_name(g.var).to_string()));
            }
        };
        let ix = index_of(ixf, || self.syms.chip_name(g.chip).to_string())?;
        if ix >= g.len {
            return Err(RunError::OutOfBounds {
                mem: self.syms.chip_name(g.chip).to_string(),
                index: ix as i64,
                len: g.len,
            });
        }
        c.sram_reads += 1;
        if g.shuffle {
            c.shuffles += 1;
        }
        Ok(self.words[g.woff + ix])
    }

    /// The scatter superinstruction executor: a whole `Range` loop whose
    /// body is one on-chip write (`WriteMem`/`RmwAdd`) with hot-shape
    /// operands — the Gustavson scatter-accumulate inner loop of SpMSpM.
    /// Destination and gather slot states are hoisted (the body cannot
    /// change any slot's allocation or region) and all statistics
    /// accumulate in registers, flushed on every exit path so the
    /// observable counts equal per-iteration bumping exactly.
    ///
    /// Returns `None` (having executed nothing) when an operand shape or
    /// a slot's current allocation is not eligible.
    #[allow(clippy::too_many_arguments)]
    fn try_scatter_loop(
        &mut self,
        prog: &CompiledProgram,
        id: usize,
        var: usize,
        saved: Option<f64>,
        v0: f64,
        hi: f64,
        fstep: f64,
        dst: Slot,
        index: Operand,
        value: Operand,
        random: bool,
        accumulate: bool,
        vector: bool,
        end: usize,
    ) -> Option<Result<usize, RunError>> {
        let dst_st = self.chip[dst as usize];
        if dst_st.tag != ChipTag::Words {
            return None;
        }
        let hindex = self.hot_value(prog, index)?;
        let hvalue = self.hot_value(prog, value)?;
        let dst_shuffle = (random || accumulate) && dst_st.kind == MemKind::SparseSram;
        // Chunked (vector-tier) run when the lowering tagged the shape
        // eligible and the runtime half of the contract holds; falls
        // through to the scalar loop otherwise.
        if vector {
            if let Some(r) = self.try_vector_scatter(
                id,
                var,
                saved,
                v0,
                hi,
                dst,
                dst_st,
                hindex,
                hvalue,
                dst_shuffle,
                accumulate,
                end,
            ) {
                return Some(r);
            }
        }
        let mut c = HotCounters::default();
        let mut swrites = 0u64;
        let mut trips = 0u64;
        let mut result: Result<(), RunError> = Ok(());
        let mut v = v0;
        // Bounds-check elision: the static analysis proved every
        // iteration of this loop writes in range (see
        // `crate::analysis::compute_elide`), and the hoisted guard
        // re-checks the proof's premises against runtime state — so a
        // stale table degrades to the checked loop below, never to an
        // unchecked out-of-bounds write.
        let elide = self.elide_enabled
            && prog.elide_at(end - 1)
            && matches!(hindex, HotValue::Var(a) if a as usize == var)
            && v0 >= 0.0
            && v0.fract() == 0.0
            && hi <= dst_st.len as f64;
        if elide && v < hi {
            self.node_stack.push(id);
            let mut fuel = self.fuel;
            let interrupts = self.interrupts;
            // Elided loop: the index is the loop variable itself —
            // integral, non-negative, and `< len` for the whole window
            // — so `index_of` and the per-access bounds check vanish.
            // Errors, statistics, and env effects are otherwise
            // identical to the checked loop below (the index operand
            // is an env read that charges nothing and cannot fail
            // while `env[var]` is bound).
            'eiters: while v < hi {
                if fuel == 0 {
                    result = Err(exhausted_fuel(self.fuel_cause, self.step_limit));
                    break 'eiters;
                }
                fuel -= 1;
                if interrupts && fuel & INTERRUPT_MASK == 0 {
                    if let Err(e) = check_interrupts(
                        self.deadline_at,
                        self.deadline_ms(),
                        self.budget.cancel.as_ref(),
                    ) {
                        result = Err(e);
                        break 'eiters;
                    }
                }
                self.env[var] = Some(v);
                trips += 1;
                let val = match self.hot_eval(hvalue, &mut c) {
                    Ok(x) => x,
                    Err(e) => {
                        result = Err(e);
                        break 'eiters;
                    }
                };
                let slot = &mut self.words[dst_st.woff + v as usize];
                if accumulate {
                    *slot += val;
                } else {
                    *slot = val;
                }
                swrites += 1;
                if dst_shuffle {
                    c.shuffles += 1;
                }
                v += fstep;
            }
            self.fuel = fuel;
            if result.is_ok() {
                self.node_stack.pop();
            }
        } else if v < hi {
            self.node_stack.push(id);
            // Fuel mirrors in a register like every other counter here,
            // flushed on all exit paths (the body is a single on-chip
            // write — it cannot consume fuel itself).
            let mut fuel = self.fuel;
            let interrupts = self.interrupts;
            'iters: while v < hi {
                if fuel == 0 {
                    result = Err(exhausted_fuel(self.fuel_cause, self.step_limit));
                    break 'iters;
                }
                fuel -= 1;
                if interrupts && fuel & INTERRUPT_MASK == 0 {
                    if let Err(e) = check_interrupts(
                        self.deadline_at,
                        self.deadline_ms(),
                        self.budget.cancel.as_ref(),
                    ) {
                        result = Err(e);
                        break 'iters;
                    }
                }
                self.env[var] = Some(v);
                trips += 1;
                // Same order as the generic RmwAdd/WriteMem op: index
                // operand, index conversion, value operand, then the
                // bounds-checked write.
                let ixf = match self.hot_eval(hindex, &mut c) {
                    Ok(x) => x,
                    Err(e) => {
                        result = Err(e);
                        break 'iters;
                    }
                };
                let ix = match index_of(ixf, || self.syms.chip_name(dst).to_string()) {
                    Ok(x) => x,
                    Err(e) => {
                        result = Err(e);
                        break 'iters;
                    }
                };
                let val = match self.hot_eval(hvalue, &mut c) {
                    Ok(x) => x,
                    Err(e) => {
                        result = Err(e);
                        break 'iters;
                    }
                };
                if ix >= dst_st.len {
                    result = Err(RunError::OutOfBounds {
                        mem: self.syms.chip_name(dst).to_string(),
                        index: ix as i64,
                        len: dst_st.len,
                    });
                    break 'iters;
                }
                let slot = &mut self.words[dst_st.woff + ix];
                if accumulate {
                    *slot += val;
                } else {
                    *slot = val;
                }
                swrites += 1;
                if dst_shuffle {
                    c.shuffles += 1;
                }
                v += fstep;
            }
            self.fuel = fuel;
            if result.is_ok() {
                self.node_stack.pop();
            }
        }
        self.dense.node_trips[id] += trips;
        self.dense.sram_reads += c.sram_reads;
        self.dense.sram_writes += swrites;
        self.dense.shuffle_accesses += c.shuffles;
        self.dense.alu_ops += c.alu_ops;
        if let Err(e) = result {
            return Some(Err(e));
        }
        self.env[var] = saved;
        Some(Ok(end))
    }

    /// Builds the lane-index plan for one scatter statement, or `None`
    /// when the index operand is not unit-stride in the loop variable
    /// or a gather stream aliases a destination region (lanes preload
    /// before the writes commit, so aliasing would reorder reads).
    fn ix_plan(&self, hindex: HotValue, var: usize, dsts: &[Slot]) -> Option<IxPlan> {
        match hindex {
            HotValue::Var(a) if a as usize == var => Some(IxPlan::Iota),
            // `v + c`: exact iff `c` is a non-negative integer small
            // enough that `v + c` stays exactly representable — the
            // same premises `crate::analysis` checks statically.
            HotValue::VarConstBin {
                var: a,
                c,
                op: BinSOp::Add,
            } if a as usize == var && c >= 0.0 && c.fract() == 0.0 && c <= 4_294_967_296.0 => {
                Some(IxPlan::OffIota(c as usize))
            }
            HotValue::Gather(g) if g.var as usize == var && !dsts.contains(&g.chip) => {
                Some(IxPlan::Stream(g))
            }
            _ => None,
        }
    }

    /// Builds the lane-value plan for one scatter statement (same
    /// eligibility contract as [`Machine::ix_plan`]). An unbound splat
    /// variable bails to the scalar loop so the UnboundVar error
    /// surfaces with scalar semantics.
    fn val_plan(&self, hvalue: HotValue, var: usize, dsts: &[Slot]) -> Option<ValPlan> {
        match hvalue {
            HotValue::Const(k) => Some(ValPlan::Splat(k)),
            HotValue::Var(a) if a as usize == var => Some(ValPlan::Iota),
            HotValue::Var(a) => Some(ValPlan::Splat(self.env[a as usize]?)),
            HotValue::VarConstBin { var: a, c, op } if a as usize == var => {
                Some(ValPlan::IotaBin { op, c })
            }
            HotValue::Gather(g) if g.var as usize == var && !dsts.contains(&g.chip) => {
                Some(ValPlan::Stream(g))
            }
            HotValue::BinGather { a, op, g }
                if g.var as usize == var && a as usize != var && !dsts.contains(&g.chip) =>
            {
                Some(ValPlan::SplatBin {
                    x: self.env[a as usize]?,
                    op,
                    g,
                })
            }
            _ => None,
        }
    }

    /// The chunked (vector-tier) scatter executor: runs the scatter
    /// superinstruction's unit-stride iterations [`vector::LANES`] at a
    /// time. Index/value streams load as whole lanes from the flat
    /// arena (bounds hoisted to one comparison per chunk), values
    /// compute per lane, and the writes commit serially in lane order —
    /// so repeated indices accumulate exactly as the scalar loop does
    /// and every f64 result is bit-identical.
    ///
    /// Identity contract with the scalar loop:
    /// - a chunk never crosses a fuel-exhaustion or interrupt-check
    ///   boundary ([`vector::burst`]); the boundary iteration runs
    ///   through the scalar step below at the identical fuel value;
    /// - a chunk with a faulting lane (negative index, out-of-bounds
    ///   destination) commits nothing and is re-run scalar from its
    ///   first iteration, so the error, the partial writes before it,
    ///   and the statistics match the scalar loop exactly;
    /// - trailing iterations short of a full chunk run scalar.
    ///
    /// Returns `None` (having executed nothing) when the runtime half
    /// of the eligibility contract fails — non-integral bounds, operand
    /// shapes that are not unit-stride in the loop variable, or a
    /// source stream aliasing the destination region (lanes preload
    /// before the writes commit, so aliasing would reorder reads).
    #[allow(clippy::too_many_arguments)]
    fn try_vector_scatter(
        &mut self,
        id: usize,
        var: usize,
        saved: Option<f64>,
        v0: f64,
        hi: f64,
        dst: Slot,
        dst_st: ChipState,
        hindex: HotValue,
        hvalue: HotValue,
        dst_shuffle: bool,
        accumulate: bool,
        end: usize,
    ) -> Option<Result<usize, RunError>> {
        const L: usize = vector::LANES;
        let (base, total) = vector::unit_trips(v0, hi)?;
        if total == 0 {
            return None; // zero-trip: the scalar loop exits instantly
        }
        let ix_plan = self.ix_plan(hindex, var, &[dst])?;
        let val_plan = self.val_plan(hvalue, var, &[dst])?;
        // Per-iteration statistic increments are compile-time constants
        // of the plan; chunks charge them in one multiply.
        let (ix_reads, ix_shuf, ix_alu) = ix_plan.stats();
        let (val_reads, val_shuf, val_alu) = val_plan.stats();
        let (reads_per, shuf_per, alu_per) = (
            ix_reads + val_reads,
            ix_shuf + val_shuf + dst_shuffle as u64,
            ix_alu + val_alu,
        );
        // Unit-stride streams stay in bounds for exactly
        // `len - base` iterations; beyond that the scalar step owns the
        // (error) semantics.
        let mut stream_cap = total;
        for g in [ix_plan.stream(), val_plan.stream()].into_iter().flatten() {
            stream_cap = stream_cap.min(g.len.saturating_sub(base) as u64);
        }
        let mut done = 0u64;
        let mut fuel = self.fuel;
        let interrupts = self.interrupts;
        let mut trips = 0u64;
        let mut swrites = 0u64;
        let mut c = HotCounters::default();
        let mut result: Result<(), RunError> = Ok(());
        let mut vec_on = true;
        self.node_stack.push(id);
        'outer: while done < total {
            if vec_on {
                let mut safe = vector::burst(stream_cap.saturating_sub(done), fuel, interrupts);
                'chunks: while safe >= L as u64 {
                    let at = base + done as usize;
                    let mut idx = [0usize; L];
                    match &ix_plan {
                        IxPlan::Iota => {
                            for (k, ix) in idx.iter_mut().enumerate() {
                                *ix = at + k;
                            }
                        }
                        IxPlan::OffIota(off) => {
                            for (k, ix) in idx.iter_mut().enumerate() {
                                *ix = at + k + off;
                            }
                        }
                        IxPlan::Stream(g) => {
                            let mut lanes = [0.0f64; L];
                            lanes.copy_from_slice(&self.words[g.woff + at..g.woff + at + L]);
                            if !vector::to_indices(&lanes, &mut idx) {
                                // Negative lane: the chunk re-runs
                                // scalar so NegativeIndex surfaces at
                                // the exact iteration and state.
                                vec_on = false;
                                break 'chunks;
                            }
                        }
                    }
                    let mut max_ix = 0usize;
                    for &ix in &idx {
                        max_ix = max_ix.max(ix);
                    }
                    if max_ix >= dst_st.len {
                        // Out-of-bounds lane: scalar re-run commits the
                        // preceding lanes and raises the exact error.
                        vec_on = false;
                        break 'chunks;
                    }
                    let mut vals = [0.0f64; L];
                    match &val_plan {
                        ValPlan::Splat(x) => vals = [*x; L],
                        ValPlan::Iota => {
                            for (k, x) in vals.iter_mut().enumerate() {
                                *x = (at + k) as f64;
                            }
                        }
                        ValPlan::IotaBin { op, c } => {
                            // Lanes are independent; per-lane apply is
                            // bit-identical to the scalar op.
                            for (k, x) in vals.iter_mut().enumerate() {
                                *x = op.apply((at + k) as f64, *c);
                            }
                        }
                        ValPlan::Stream(g) => {
                            vals.copy_from_slice(&self.words[g.woff + at..g.woff + at + L]);
                        }
                        ValPlan::SplatBin { x, op, g } => {
                            let mut lanes = [0.0f64; L];
                            lanes.copy_from_slice(&self.words[g.woff + at..g.woff + at + L]);
                            vector::bin_splat(*op, *x, &lanes, &mut vals);
                        }
                    }
                    // Serial in-lane-order commit: repeated indices
                    // within a chunk accumulate exactly as the scalar
                    // loop does.
                    let dwords = &mut self.words[dst_st.woff..dst_st.woff + dst_st.len];
                    if accumulate {
                        for k in 0..L {
                            dwords[idx[k]] += vals[k];
                        }
                    } else {
                        for k in 0..L {
                            dwords[idx[k]] = vals[k];
                        }
                    }
                    done += L as u64;
                    fuel -= L as u64;
                    safe -= L as u64;
                    trips += L as u64;
                    swrites += L as u64;
                    c.sram_reads += reads_per * L as u64;
                    c.shuffles += shuf_per * L as u64;
                    c.alu_ops += alu_per * L as u64;
                }
                if done >= total {
                    break 'outer;
                }
            }
            // Scalar step: the remainder tail, a fuel/interrupt
            // boundary, or the re-run of a faulting chunk — the body is
            // the scalar loop's, verbatim.
            if fuel == 0 {
                result = Err(exhausted_fuel(self.fuel_cause, self.step_limit));
                break 'outer;
            }
            fuel -= 1;
            if interrupts && fuel & INTERRUPT_MASK == 0 {
                if let Err(e) = check_interrupts(
                    self.deadline_at,
                    self.deadline_ms(),
                    self.budget.cancel.as_ref(),
                ) {
                    result = Err(e);
                    break 'outer;
                }
            }
            self.env[var] = Some(v0 + done as f64);
            trips += 1;
            let ixf = match self.hot_eval(hindex, &mut c) {
                Ok(x) => x,
                Err(e) => {
                    result = Err(e);
                    break 'outer;
                }
            };
            let ix = match index_of(ixf, || self.syms.chip_name(dst).to_string()) {
                Ok(x) => x,
                Err(e) => {
                    result = Err(e);
                    break 'outer;
                }
            };
            let val = match self.hot_eval(hvalue, &mut c) {
                Ok(x) => x,
                Err(e) => {
                    result = Err(e);
                    break 'outer;
                }
            };
            if ix >= dst_st.len {
                result = Err(RunError::OutOfBounds {
                    mem: self.syms.chip_name(dst).to_string(),
                    index: ix as i64,
                    len: dst_st.len,
                });
                break 'outer;
            }
            let slot = &mut self.words[dst_st.woff + ix];
            if accumulate {
                *slot += val;
            } else {
                *slot = val;
            }
            swrites += 1;
            if dst_shuffle {
                c.shuffles += 1;
            }
            done += 1;
        }
        self.fuel = fuel;
        if result.is_ok() {
            self.node_stack.pop();
        }
        self.dense.node_trips[id] += trips;
        self.dense.sram_reads += c.sram_reads;
        self.dense.sram_writes += swrites;
        self.dense.shuffle_accesses += c.shuffles;
        self.dense.alu_ops += c.alu_ops;
        if let Err(e) = result {
            return Some(Err(e));
        }
        self.env[var] = saved;
        Some(Ok(end))
    }

    /// The chunked multi-scatter executor: a `RangeSimple` whose body
    /// is several on-chip writes (`WriteMem`/`RmwAdd`), each with
    /// hot-shape operands — the fused fill/update bodies that
    /// [`VecClass::MultiScatter`] admits. Every statement's lanes are
    /// validated (and staged) before any statement commits, so a
    /// faulting chunk re-runs scalar from its first iteration with no
    /// partial writes; the commit is statement-major, which is
    /// byte-identical to the scalar loop's iteration-major order
    /// because destinations are pairwise distinct and disjoint from
    /// every gather source (both re-checked here at runtime, mirroring
    /// the static classification in [`crate::analysis`]).
    ///
    /// The scalar step reproduces one generic
    /// [`Machine::run_simple_body`] iteration — same op order, same
    /// statistics, same error identity — with the loop-invariant slot
    /// states hoisted (the body cannot allocate, enqueue, or bind, so
    /// hoisting is sound, and it cannot consume fuel, so the register
    /// fuel mirror is exact). Returns `None` (having executed nothing)
    /// when runtime state is ineligible, leaving the generic loop to
    /// run.
    #[allow(clippy::too_many_arguments)]
    fn try_multi_scatter(
        &mut self,
        prog: &CompiledProgram,
        id: usize,
        var: usize,
        saved: Option<f64>,
        v0: f64,
        hi: f64,
        body: OpId,
        end: usize,
    ) -> Option<Result<usize, RunError>> {
        const L: usize = vector::LANES;
        let (base, total) = vector::unit_trips(v0, hi)?;
        if total == 0 {
            return None; // zero-trip: the generic loop exits instantly
        }
        let ops = prog.ops();
        let mut dsts: Vec<Slot> = Vec::with_capacity(end - body as usize);
        for op in &ops[body as usize..end] {
            match *op {
                Op::WriteMem { mem, .. } | Op::RmwAdd { mem, .. } => {
                    // Pairwise-distinct destinations keep the
                    // statement-major commit order sound.
                    if dsts.contains(&mem) {
                        return None;
                    }
                    dsts.push(mem);
                }
                _ => return None,
            }
        }
        let mut stmts: Vec<ScatterStmt> = Vec::with_capacity(dsts.len());
        let mut stream_cap = total;
        let (mut reads_per, mut shuf_per, mut alu_per) = (0u64, 0u64, 0u64);
        for op in &ops[body as usize..end] {
            let (dst, index, value, random, accumulate) = match *op {
                Op::WriteMem {
                    mem,
                    index,
                    value,
                    random,
                } => (mem, index, value, random, false),
                Op::RmwAdd { mem, index, value } => (mem, index, value, true, true),
                _ => unreachable!("body shape checked above"),
            };
            let st = self.chip[dst as usize];
            if st.tag != ChipTag::Words {
                return None;
            }
            let hindex = self.hot_value(prog, index)?;
            let hvalue = self.hot_value(prog, value)?;
            let ix_plan = self.ix_plan(hindex, var, &dsts)?;
            let val_plan = self.val_plan(hvalue, var, &dsts)?;
            let dst_shuffle = (random || accumulate) && st.kind == MemKind::SparseSram;
            let (ixr, ixs, ixa) = ix_plan.stats();
            let (vr, vs, va) = val_plan.stats();
            reads_per += ixr + vr;
            shuf_per += ixs + vs + dst_shuffle as u64;
            alu_per += ixa + va;
            // Unit-stride streams stay in bounds for exactly
            // `len - base` iterations; beyond that the scalar step
            // owns the (error) semantics.
            for g in [ix_plan.stream(), val_plan.stream()].into_iter().flatten() {
                stream_cap = stream_cap.min(g.len.saturating_sub(base) as u64);
            }
            stmts.push(ScatterStmt {
                dst,
                woff: st.woff,
                len: st.len,
                hindex,
                hvalue,
                ix_plan,
                val_plan,
                accumulate,
                dst_shuffle,
            });
        }
        let nstmts = stmts.len() as u64;
        // Per-statement lane staging, allocated once per loop entry.
        let mut lanes: Vec<([usize; L], [f64; L])> = vec![([0; L], [0.0; L]); stmts.len()];
        let mut done = 0u64;
        let mut fuel = self.fuel;
        let interrupts = self.interrupts;
        let mut trips = 0u64;
        let mut swrites = 0u64;
        let mut c = HotCounters::default();
        let mut result: Result<(), RunError> = Ok(());
        let mut vec_on = true;
        self.node_stack.push(id);
        'outer: while done < total {
            if vec_on {
                let mut safe = vector::burst(stream_cap.saturating_sub(done), fuel, interrupts);
                'chunks: while safe >= L as u64 {
                    let at = base + done as usize;
                    for (s, (idx, vals)) in stmts.iter().zip(lanes.iter_mut()) {
                        match &s.ix_plan {
                            IxPlan::Iota => {
                                for (k, ix) in idx.iter_mut().enumerate() {
                                    *ix = at + k;
                                }
                            }
                            IxPlan::OffIota(off) => {
                                for (k, ix) in idx.iter_mut().enumerate() {
                                    *ix = at + k + off;
                                }
                            }
                            IxPlan::Stream(g) => {
                                let mut raw = [0.0f64; L];
                                raw.copy_from_slice(&self.words[g.woff + at..g.woff + at + L]);
                                if !vector::to_indices(&raw, idx) {
                                    // Negative lane: the chunk re-runs
                                    // scalar so NegativeIndex surfaces
                                    // at the exact iteration and state.
                                    vec_on = false;
                                    break 'chunks;
                                }
                            }
                        }
                        let mut max_ix = 0usize;
                        for &ix in idx.iter() {
                            max_ix = max_ix.max(ix);
                        }
                        if max_ix >= s.len {
                            // Out-of-bounds lane: scalar re-run raises
                            // the exact error at the exact iteration.
                            vec_on = false;
                            break 'chunks;
                        }
                        match &s.val_plan {
                            ValPlan::Splat(x) => *vals = [*x; L],
                            ValPlan::Iota => {
                                for (k, x) in vals.iter_mut().enumerate() {
                                    *x = (at + k) as f64;
                                }
                            }
                            ValPlan::IotaBin { op, c } => {
                                for (k, x) in vals.iter_mut().enumerate() {
                                    *x = op.apply((at + k) as f64, *c);
                                }
                            }
                            ValPlan::Stream(g) => {
                                vals.copy_from_slice(&self.words[g.woff + at..g.woff + at + L]);
                            }
                            ValPlan::SplatBin { x, op, g } => {
                                let mut raw = [0.0f64; L];
                                raw.copy_from_slice(&self.words[g.woff + at..g.woff + at + L]);
                                vector::bin_splat(*op, *x, &raw, vals);
                            }
                        }
                    }
                    // Statement-major commit, serial in lane order
                    // within each statement.
                    for (s, (idx, vals)) in stmts.iter().zip(lanes.iter()) {
                        let dwords = &mut self.words[s.woff..s.woff + s.len];
                        if s.accumulate {
                            for k in 0..L {
                                dwords[idx[k]] += vals[k];
                            }
                        } else {
                            for k in 0..L {
                                dwords[idx[k]] = vals[k];
                            }
                        }
                    }
                    done += L as u64;
                    fuel -= L as u64;
                    safe -= L as u64;
                    trips += L as u64;
                    swrites += nstmts * L as u64;
                    c.sram_reads += reads_per * L as u64;
                    c.shuffles += shuf_per * L as u64;
                    c.alu_ops += alu_per * L as u64;
                }
                if done >= total {
                    break 'outer;
                }
            }
            // Scalar step: the remainder tail, a fuel/interrupt
            // boundary, or the re-run of a faulting chunk — one full
            // iteration of the generic body, statement by statement.
            if fuel == 0 {
                result = Err(exhausted_fuel(self.fuel_cause, self.step_limit));
                break 'outer;
            }
            fuel -= 1;
            if interrupts && fuel & INTERRUPT_MASK == 0 {
                if let Err(e) = check_interrupts(
                    self.deadline_at,
                    self.deadline_ms(),
                    self.budget.cancel.as_ref(),
                ) {
                    result = Err(e);
                    break 'outer;
                }
            }
            self.env[var] = Some(v0 + done as f64);
            trips += 1;
            for s in &stmts {
                // Same order as the generic WriteMem/RmwAdd op: index
                // operand, index conversion, value operand, then the
                // bounds-checked write.
                let ixf = match self.hot_eval(s.hindex, &mut c) {
                    Ok(x) => x,
                    Err(e) => {
                        result = Err(e);
                        break 'outer;
                    }
                };
                let ix = match index_of(ixf, || self.syms.chip_name(s.dst).to_string()) {
                    Ok(x) => x,
                    Err(e) => {
                        result = Err(e);
                        break 'outer;
                    }
                };
                let val = match self.hot_eval(s.hvalue, &mut c) {
                    Ok(x) => x,
                    Err(e) => {
                        result = Err(e);
                        break 'outer;
                    }
                };
                if ix >= s.len {
                    result = Err(RunError::OutOfBounds {
                        mem: self.syms.chip_name(s.dst).to_string(),
                        index: ix as i64,
                        len: s.len,
                    });
                    break 'outer;
                }
                let slot = &mut self.words[s.woff + ix];
                if s.accumulate {
                    *slot += val;
                } else {
                    *slot = val;
                }
                swrites += 1;
                if s.dst_shuffle {
                    c.shuffles += 1;
                }
            }
            done += 1;
        }
        self.fuel = fuel;
        if result.is_ok() {
            self.node_stack.pop();
        }
        self.dense.node_trips[id] += trips;
        self.dense.sram_reads += c.sram_reads;
        self.dense.sram_writes += swrites;
        self.dense.shuffle_accesses += c.shuffles;
        self.dense.alu_ops += c.alu_ops;
        if let Err(e) = result {
            return Some(Err(e));
        }
        self.env[var] = saved;
        Some(Ok(end))
    }

    /// The chunked (vector-tier) gather-reduce executor: an empty-body
    /// `RangeSimple` whose reduce operand is a unit-stride gather shape
    /// — a plain stream sum, `x op stream[v]`, or the SpMV dot product
    /// `vals[v] op x[crd[v]]`. Streams load as whole lanes (bounds
    /// hoisted per chunk), the data-dependent outer gather converts and
    /// bounds-checks its indices per lane, the binary op applies per
    /// lane (bit-exact — lanes are independent), and the *fold into the
    /// accumulator stays serial in lane order*, so the f64 sum is
    /// bit-identical to the scalar loop.
    ///
    /// Fuel/interrupt boundaries, faulting chunks, and remainder tails
    /// follow the same identity contract as
    /// [`Machine::try_vector_scatter`]; the scalar step evaluates the
    /// operand through the generic [`Machine::operand_value`] path.
    /// Returns `None` when runtime state is ineligible (non-integral
    /// bounds, a referenced slot not currently plain words, an unbound
    /// splat variable), leaving the generic loop to run.
    #[allow(clippy::too_many_arguments)]
    fn try_vector_reduce(
        &mut self,
        prog: &CompiledProgram,
        id: usize,
        var: usize,
        saved: Option<f64>,
        lo: f64,
        hi: f64,
        reg: Slot,
        expr: Operand,
        acc0: f64,
        end: usize,
    ) -> Option<Result<usize, RunError>> {
        const L: usize = vector::LANES;
        let (base, total) = vector::unit_trips(lo, hi)?;
        if total == 0 {
            return None; // zero-trip: the generic loop exits instantly
        }
        enum RedPlan {
            /// Σ stream[v].
            Stream(HotGather),
            /// Σ (x op stream[v]) with loop-invariant `x`.
            SplatBin { x: f64, op: BinSOp, g: HotGather },
            /// Σ (lhs[v] op outer[inner[v]]) — the SpMV dot product.
            IndBin {
                l: HotGather,
                op: BinSOp,
                i: HotGather,
                o: HotGather,
            },
        }
        let plan = match expr {
            Operand::Gather {
                chip,
                random,
                var: gv,
                ..
            } => RedPlan::Stream(self.hot_gather(chip, random, gv)?),
            Operand::Fused(fi) => match prog.fused()[fi as usize] {
                FusedOp::BinGather { a, op, mem } => RedPlan::SplatBin {
                    x: self.env[a as usize]?,
                    op,
                    g: self.hot_gather(mem.chip, mem.random, mem.var)?,
                },
                FusedOp::BinGatherInd {
                    lhs,
                    op,
                    inner,
                    outer,
                } => RedPlan::IndBin {
                    l: self.hot_gather(lhs.chip, lhs.random, lhs.var)?,
                    op,
                    i: self.hot_gather(inner.chip, inner.random, inner.var)?,
                    o: self.hot_gather(outer.chip, outer.random, outer.var)?,
                },
                _ => return None,
            },
            _ => return None,
        };
        let (reads_per, shuf_per, alu_per) = match &plan {
            RedPlan::Stream(g) => (1u64, g.shuffle as u64, 0u64),
            RedPlan::SplatBin { g, .. } => (1, g.shuffle as u64, 1),
            RedPlan::IndBin { l, i, o, .. } => {
                (3, l.shuffle as u64 + i.shuffle as u64 + o.shuffle as u64, 1)
            }
        };
        let mut stream_cap = total;
        match &plan {
            RedPlan::Stream(g) | RedPlan::SplatBin { g, .. } => {
                stream_cap = stream_cap.min(g.len.saturating_sub(base) as u64);
            }
            RedPlan::IndBin { l, i, .. } => {
                stream_cap = stream_cap
                    .min(l.len.saturating_sub(base) as u64)
                    .min(i.len.saturating_sub(base) as u64);
            }
        }
        let mut acc = acc0;
        let mut done = 0u64;
        let mut fuel = self.fuel;
        let interrupts = self.interrupts;
        let mut trips = 0u64;
        let mut folds = 0u64;
        let mut c = HotCounters::default();
        let mut result: Result<(), RunError> = Ok(());
        let mut vec_on = true;
        self.node_stack.push(id);
        'outer: while done < total {
            if vec_on {
                let mut safe = vector::burst(stream_cap.saturating_sub(done), fuel, interrupts);
                'chunks: while safe >= L as u64 {
                    let at = base + done as usize;
                    let mut m = [0.0f64; L];
                    match &plan {
                        RedPlan::Stream(g) => {
                            m.copy_from_slice(&self.words[g.woff + at..g.woff + at + L]);
                        }
                        RedPlan::SplatBin { x, op, g } => {
                            let mut lanes = [0.0f64; L];
                            lanes.copy_from_slice(&self.words[g.woff + at..g.woff + at + L]);
                            vector::bin_splat(*op, *x, &lanes, &mut m);
                        }
                        RedPlan::IndBin { l, op, i, o } => {
                            let mut lv = [0.0f64; L];
                            lv.copy_from_slice(&self.words[l.woff + at..l.woff + at + L]);
                            let mut iv = [0.0f64; L];
                            iv.copy_from_slice(&self.words[i.woff + at..i.woff + at + L]);
                            let mut idx = [0usize; L];
                            if !vector::to_indices(&iv, &mut idx) {
                                vec_on = false; // scalar re-run raises NegativeIndex
                                break 'chunks;
                            }
                            let mut max_ix = 0usize;
                            for &ix in &idx {
                                max_ix = max_ix.max(ix);
                            }
                            if max_ix >= o.len {
                                vec_on = false; // scalar re-run raises OutOfBounds
                                break 'chunks;
                            }
                            let mut rv = [0.0f64; L];
                            for k in 0..L {
                                rv[k] = self.words[o.woff + idx[k]];
                            }
                            vector::bin_lanes(*op, &lv, &rv, &mut m);
                        }
                    }
                    // The reduction itself stays serial in lane order:
                    // bit-identical f64 summation.
                    for &x in &m {
                        acc += x;
                    }
                    done += L as u64;
                    fuel -= L as u64;
                    safe -= L as u64;
                    trips += L as u64;
                    folds += L as u64;
                    c.sram_reads += reads_per * L as u64;
                    c.shuffles += shuf_per * L as u64;
                    c.alu_ops += alu_per * L as u64;
                }
                if done >= total {
                    break 'outer;
                }
            }
            // Scalar step (tail / boundary / faulting-chunk re-run):
            // per-iteration fuel semantics plus the generic operand
            // path, exactly as the generic reduce loop.
            if fuel == 0 {
                result = Err(exhausted_fuel(self.fuel_cause, self.step_limit));
                break 'outer;
            }
            fuel -= 1;
            if interrupts && fuel & INTERRUPT_MASK == 0 {
                if let Err(e) = check_interrupts(
                    self.deadline_at,
                    self.deadline_ms(),
                    self.budget.cancel.as_ref(),
                ) {
                    result = Err(e);
                    break 'outer;
                }
            }
            self.env[var] = Some(lo + done as f64);
            trips += 1;
            match self.operand_value(prog, expr) {
                Ok(x) => {
                    folds += 1;
                    acc += x;
                }
                Err(e) => {
                    result = Err(e);
                    break 'outer;
                }
            }
            done += 1;
        }
        self.fuel = fuel;
        if result.is_ok() {
            self.node_stack.pop();
        }
        self.dense.node_trips[id] += trips;
        self.dense.sram_reads += c.sram_reads;
        self.dense.shuffle_accesses += c.shuffles;
        self.dense.alu_ops += c.alu_ops;
        if folds > 0 {
            self.dense.reduce_elems += folds;
            self.dense.alu_ops += folds;
        }
        if let Err(e) = result {
            return Some(Err(e));
        }
        self.env[var] = saved;
        self.write_reduce_acc(Some(reg), acc);
        Some(Ok(end))
    }

    /// Fetches a statement operand: immediates inline, fused compound
    /// shapes from the side table, expression programs through the
    /// postfix interpreter.
    #[cfg_attr(not(debug_assertions), inline(always))]
    #[cfg_attr(debug_assertions, inline(never))]
    fn operand_value(&mut self, prog: &CompiledProgram, o: Operand) -> Result<f64, RunError> {
        match o {
            Operand::Const(c) => Ok(c),
            Operand::Var(v) => match self.env[v as usize] {
                Some(x) => Ok(x),
                None => Err(RunError::UnboundVar(self.syms.var_name(v).to_string())),
            },
            Operand::Gather {
                chip,
                dram,
                random,
                var,
            } => {
                let ix = match self.env[var as usize] {
                    Some(x) => x,
                    None => {
                        return Err(RunError::UnboundVar(self.syms.var_name(var).to_string()));
                    }
                };
                self.read_mem_value(chip, dram, ix, random)
            }
            Operand::Fused(i) => self.fused_value(&prog.fused()[i as usize]),
            Operand::Expr(e) => self.eval_ops(prog, e),
        }
    }

    /// Reads one `mem[env[var]]` reference of a fused shape.
    #[inline(always)]
    fn gather_value(&mut self, g: GatherRef) -> Result<f64, RunError> {
        let ix = match self.env[g.var as usize] {
            Some(x) => x,
            None => {
                return Err(RunError::UnboundVar(self.syms.var_name(g.var).to_string()));
            }
        };
        self.read_mem_value(g.chip, g.dram, ix, g.random)
    }

    /// Evaluates a fused compound operand, reproducing the unfused
    /// evaluation order (stats and error identity included) exactly.
    #[cfg_attr(not(debug_assertions), inline(always))]
    #[cfg_attr(debug_assertions, inline(never))]
    fn fused_value(&mut self, f: &FusedOp) -> Result<f64, RunError> {
        match *f {
            FusedOp::GatherOffset { mem, c, op } => {
                let x = match self.env[mem.var as usize] {
                    Some(x) => x,
                    None => {
                        return Err(RunError::UnboundVar(
                            self.syms.var_name(mem.var).to_string(),
                        ));
                    }
                };
                self.dense.alu_ops += 1;
                self.read_mem_value(mem.chip, mem.dram, op.apply(x, c), mem.random)
            }
            FusedOp::BinGather { a, op, mem } => {
                let x = match self.env[a as usize] {
                    Some(x) => x,
                    None => {
                        return Err(RunError::UnboundVar(self.syms.var_name(a).to_string()));
                    }
                };
                let v = self.gather_value(mem)?;
                self.dense.alu_ops += 1;
                Ok(op.apply(x, v))
            }
            FusedOp::BinGatherInd {
                lhs,
                op,
                inner,
                outer,
            } => {
                let l = self.gather_value(lhs)?;
                let ix = self.gather_value(inner)?;
                let r = self.read_mem_value(outer.chip, outer.dram, ix, outer.random)?;
                self.dense.alu_ops += 1;
                Ok(op.apply(l, r))
            }
        }
    }

    /// Evaluates one postfix expression program starting at `start`.
    ///
    /// ALU-op counts are accumulated in a register and flushed to the
    /// dense counters on every exit path (including errors), so the
    /// observable statistics are identical to per-op bumping.
    #[cfg_attr(not(debug_assertions), inline(always))]
    #[cfg_attr(debug_assertions, inline(never))]
    fn eval_ops(&mut self, prog: &CompiledProgram, start: u32) -> Result<f64, RunError> {
        let mut alu = 0u64;
        let r = self.eval_ops_inner(prog, start, &mut alu);
        self.dense.alu_ops += alu;
        r
    }

    #[cfg_attr(not(debug_assertions), inline(always))]
    #[cfg_attr(debug_assertions, inline(never))]
    fn eval_ops_inner(
        &mut self,
        prog: &CompiledProgram,
        start: u32,
        alu: &mut u64,
    ) -> Result<f64, RunError> {
        // Top-of-stack caching: the logical stack top lives in `tos`;
        // `vstack` holds everything below it (plus one junk word from
        // the first push, discarded by the truncate at `End`). Ops with
        // one input and one output never touch the memory stack.
        let base = self.vstack.len();
        let mut tos = 0.0f64;
        let eops = prog.eops();
        let mut pc = start as usize;
        loop {
            match eops[pc] {
                EOp::Const(c) => {
                    self.vstack.push(tos);
                    tos = c;
                    pc += 1;
                }
                EOp::Var(v) => match self.env[v as usize] {
                    Some(x) => {
                        self.vstack.push(tos);
                        tos = x;
                        pc += 1;
                    }
                    None => {
                        return Err(RunError::UnboundVar(self.syms.var_name(v).to_string()));
                    }
                },
                EOp::RegRead(r) => {
                    let v = self.reg_value(r)?;
                    self.vstack.push(tos);
                    tos = v;
                    pc += 1;
                }
                EOp::Deq(f) => {
                    let v = self.deq_value(f)?;
                    self.vstack.push(tos);
                    tos = v;
                    pc += 1;
                }
                EOp::ReadMem { chip, dram, random } => {
                    tos = self.read_mem_value(chip, dram, tos, random)?;
                    pc += 1;
                }
                EOp::Neg => {
                    *alu += 1;
                    tos = -tos;
                    pc += 1;
                }
                EOp::Binary(op) => {
                    let a = self.vstack.pop().expect("lhs on stack");
                    *alu += 1;
                    tos = op.apply(a, tos);
                    pc += 1;
                }
                EOp::VarReadMem {
                    chip,
                    dram,
                    random,
                    var,
                } => {
                    let ix = match self.env[var as usize] {
                        Some(x) => x,
                        None => {
                            return Err(RunError::UnboundVar(self.syms.var_name(var).to_string()));
                        }
                    };
                    let v = self.read_mem_value(chip, dram, ix, random)?;
                    self.vstack.push(tos);
                    tos = v;
                    pc += 1;
                }
                EOp::VarBinGather {
                    a,
                    op,
                    chip,
                    dram,
                    random,
                    ivar,
                } => {
                    let x = match self.env[a as usize] {
                        Some(x) => x,
                        None => {
                            return Err(RunError::UnboundVar(self.syms.var_name(a).to_string()));
                        }
                    };
                    let ix = match self.env[ivar as usize] {
                        Some(x) => x,
                        None => {
                            return Err(RunError::UnboundVar(self.syms.var_name(ivar).to_string()));
                        }
                    };
                    let v = self.read_mem_value(chip, dram, ix, random)?;
                    *alu += 1;
                    self.vstack.push(tos);
                    tos = op.apply(x, v);
                    pc += 1;
                }
                EOp::VarConstBin { var, c, op } => {
                    let a = match self.env[var as usize] {
                        Some(x) => x,
                        None => {
                            return Err(RunError::UnboundVar(self.syms.var_name(var).to_string()));
                        }
                    };
                    *alu += 1;
                    self.vstack.push(tos);
                    tos = op.apply(a, c);
                    pc += 1;
                }
                EOp::BranchFalse { target } => {
                    let c = tos;
                    tos = self.vstack.pop().expect("stack below condition");
                    *alu += 1;
                    // Both sides are wires in hardware; evaluating only
                    // the taken side mirrors the tree walker's mux and
                    // avoids spurious OOB on the masked side.
                    pc = if c != 0.0 { pc + 1 } else { target as usize };
                }
                EOp::Jump { target } => pc = target as usize,
                EOp::End => {
                    self.vstack.truncate(base);
                    return Ok(tos);
                }
            }
        }
    }

    /// Reads the accumulator register at loop entry when the loop is a
    /// `Reduce` (the error ordering the tree walker has: a missing
    /// register is reported before the counter bounds are evaluated).
    fn read_reduce_acc(&self, reduce: Option<Slot>) -> Result<f64, RunError> {
        match reduce {
            None => Ok(0.0),
            Some(reg) => self.reg_value(reg),
        }
    }

    /// Writes the accumulator back at loop exit. Silently skips a slot
    /// that is no longer a register, as the tree walker does.
    fn write_reduce_acc(&mut self, reduce: Option<Slot>, acc: f64) {
        if let Some(reg) = reduce {
            let st = self.chip[reg as usize];
            if st.tag == ChipTag::Reg {
                self.words[st.woff] = acc;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enter_range(
        &mut self,
        prog: &CompiledProgram,
        pc: usize,
        id: usize,
        var: Slot,
        min: Operand,
        max: Operand,
        step: i64,
        reduce: Option<Slot>,
        exit: OpId,
    ) -> Result<usize, RunError> {
        let acc = self.read_reduce_acc(reduce)?;
        let lo = self.operand_value(prog, min)?;
        let hi = self.operand_value(prog, max)?;
        debug_assert!(step > 0, "non-positive loop step");
        let saved = self.env[var as usize];
        if lo < hi {
            self.charge_step()?;
            self.env[var as usize] = Some(lo);
            self.dense.node_trips[id] += 1;
            self.frames.push(Frame {
                node: id,
                reduce,
                acc,
                state: FrameState::Range {
                    var,
                    saved,
                    v: lo,
                    hi,
                    step: step as f64,
                },
            });
            Ok(pc + 1)
        } else {
            self.write_reduce_acc(reduce, acc);
            Ok(exit as usize)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enter_scan1(
        &mut self,
        pc: usize,
        id: usize,
        bv: Slot,
        pos_var: Slot,
        idx_var: Slot,
        reduce: Option<Slot>,
        exit: OpId,
    ) -> Result<usize, RunError> {
        let acc = self.read_reduce_acc(reduce)?;
        let depth = self.scan_depth;
        let dim = self.scan_snapshot1(bv)?;
        let saved = [self.env[pos_var as usize], self.env[idx_var as usize]];
        let mut idx = 0usize;
        while idx < dim && !self.scan_pool[depth].a_set(idx) {
            idx += 1;
        }
        if idx < dim {
            // `scan_emits` counts the emit position being *reached* —
            // even when the step charge then aborts — while
            // `node_trips` counts charged steps, matching the tree and
            // reference walkers exactly.
            self.dense.scan_emits += 1;
            self.charge_step()?;
            self.scan_depth = depth + 1;
            self.env[pos_var as usize] = Some(0.0);
            self.env[idx_var as usize] = Some(idx as f64);
            self.dense.node_trips[id] += 1;
            self.frames.push(Frame {
                node: id,
                reduce,
                acc,
                state: FrameState::Scan1 {
                    depth,
                    dim,
                    idx,
                    pos: 0,
                    pos_var,
                    idx_var,
                    saved,
                },
            });
            Ok(pc + 1)
        } else {
            self.write_reduce_acc(reduce, acc);
            Ok(exit as usize)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enter_scan2(
        &mut self,
        pc: usize,
        id: usize,
        op: ScanOp,
        bv_a: Slot,
        bv_b: Slot,
        vars: [Slot; 4],
        reduce: Option<Slot>,
        exit: OpId,
    ) -> Result<usize, RunError> {
        let acc = self.read_reduce_acc(reduce)?;
        let depth = self.scan_depth;
        let dim = self.scan_snapshot2(bv_a, bv_b)?;
        let saved = vars.map(|v| self.env[v as usize]);
        let (mut idx, mut ap, mut bp) = (0usize, 0u64, 0u64);
        while idx < dim {
            let has_a = self.scan_pool[depth].a_set(idx);
            let has_b = self.scan_pool[depth].b_set(idx);
            let combined = match op {
                ScanOp::And => has_a && has_b,
                ScanOp::Or => has_a || has_b,
            };
            if combined {
                // Emit reached before the charge; trip after (see
                // [`Machine::enter_scan1`]).
                self.dense.scan_emits += 1;
                self.charge_step()?;
                self.scan_depth = depth + 1;
                self.env[vars[0] as usize] = Some(if has_a { ap as f64 } else { -1.0 });
                self.env[vars[1] as usize] = Some(if has_b { bp as f64 } else { -1.0 });
                self.env[vars[2] as usize] = Some(0.0);
                self.env[vars[3] as usize] = Some(idx as f64);
                self.dense.node_trips[id] += 1;
                self.frames.push(Frame {
                    node: id,
                    reduce,
                    acc,
                    state: FrameState::Scan2 {
                        depth,
                        dim,
                        idx,
                        ap,
                        bp,
                        emitted: 0,
                        op,
                        vars,
                        saved,
                    },
                });
                return Ok(pc + 1);
            }
            if has_a {
                ap += 1;
            }
            if has_b {
                bp += 1;
            }
            idx += 1;
        }
        self.write_reduce_acc(reduce, acc);
        Ok(exit as usize)
    }

    /// Advances the innermost loop frame: returns the body pc for the
    /// next iteration (charging one fuel step per continuation), or
    /// pops the frame (restoring loop variables and writing back a
    /// reduction) and returns the fall-through pc.
    fn loop_next(&mut self, body: OpId, pc: usize) -> Result<usize, RunError> {
        let deadline_ms = self.deadline_ms();
        let Machine {
            frames,
            env,
            dense,
            scan_pool,
            scan_depth,
            chip,
            words,
            fuel,
            fuel_cause,
            step_limit,
            interrupts,
            deadline_at,
            budget,
            ..
        } = self;
        let (cause, limit, intr, dl) = (*fuel_cause, *step_limit, *interrupts, *deadline_at);
        let cancel = budget.cancel.as_ref();
        let frame = frames.last_mut().expect("active frame");
        match &mut frame.state {
            FrameState::Range {
                var, v, hi, step, ..
            } => {
                *v += *step;
                if *v < *hi {
                    charge_step_parts(fuel, cause, limit, intr, dl, deadline_ms, cancel)?;
                    env[*var as usize] = Some(*v);
                    dense.node_trips[frame.node] += 1;
                    return Ok(body as usize);
                }
            }
            FrameState::Scan1 {
                depth,
                dim,
                idx,
                pos,
                pos_var,
                idx_var,
                ..
            } => {
                let buf = &scan_pool[*depth];
                *pos += 1;
                *idx += 1;
                while *idx < *dim && !buf.a_set(*idx) {
                    *idx += 1;
                }
                if *idx < *dim {
                    // Emit reached before the charge; trip after (see
                    // [`Machine::enter_scan1`]).
                    dense.scan_emits += 1;
                    charge_step_parts(fuel, cause, limit, intr, dl, deadline_ms, cancel)?;
                    env[*pos_var as usize] = Some(*pos as f64);
                    env[*idx_var as usize] = Some(*idx as f64);
                    dense.node_trips[frame.node] += 1;
                    return Ok(body as usize);
                }
            }
            FrameState::Scan2 {
                depth,
                dim,
                idx,
                ap,
                bp,
                emitted,
                op,
                vars,
                ..
            } => {
                let buf = &scan_pool[*depth];
                // The emitting index advances its positions after the
                // body, exactly as the tree walkers do.
                if buf.a_set(*idx) {
                    *ap += 1;
                }
                if buf.b_set(*idx) {
                    *bp += 1;
                }
                *emitted += 1;
                *idx += 1;
                while *idx < *dim {
                    let has_a = buf.a_set(*idx);
                    let has_b = buf.b_set(*idx);
                    let combined = match op {
                        ScanOp::And => has_a && has_b,
                        ScanOp::Or => has_a || has_b,
                    };
                    if combined {
                        // Emit reached before the charge; trip after
                        // (see [`Machine::enter_scan1`]).
                        dense.scan_emits += 1;
                        charge_step_parts(fuel, cause, limit, intr, dl, deadline_ms, cancel)?;
                        env[vars[0] as usize] = Some(if has_a { *ap as f64 } else { -1.0 });
                        env[vars[1] as usize] = Some(if has_b { *bp as f64 } else { -1.0 });
                        env[vars[2] as usize] = Some(*emitted as f64);
                        env[vars[3] as usize] = Some(*idx as f64);
                        dense.node_trips[frame.node] += 1;
                        return Ok(body as usize);
                    }
                    if has_a {
                        *ap += 1;
                    }
                    if has_b {
                        *bp += 1;
                    }
                    *idx += 1;
                }
            }
        }
        // Loop finished: restore the counter-bound variables, release
        // the scan snapshot depth, write back a reduction accumulator.
        let frame = frames.pop().expect("active frame");
        match frame.state {
            FrameState::Range { var, saved, .. } => env[var as usize] = saved,
            FrameState::Scan1 {
                depth,
                pos_var,
                idx_var,
                saved,
                ..
            } => {
                *scan_depth = depth;
                env[pos_var as usize] = saved[0];
                env[idx_var as usize] = saved[1];
            }
            FrameState::Scan2 {
                depth, vars, saved, ..
            } => {
                *scan_depth = depth;
                for (v, old) in vars.iter().zip(saved) {
                    env[*v as usize] = old;
                }
            }
        }
        if let Some(reg) = frame.reduce {
            let st = chip[reg as usize];
            if st.tag == ChipTag::Reg {
                words[st.woff] = frame.acc;
            }
        }
        Ok(pc + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Counter, MemDecl, SExpr, SpatialStmt};
    use crate::reference::ReferenceMachine;

    /// Runs `program` on all three engines (bytecode, resolved tree,
    /// string-keyed reference) with the given DRAM inputs and asserts
    /// byte-identical DRAM contents plus identical statistics (or
    /// identical errors).
    fn assert_engines_agree(program: &SpatialProgram, writes: &[(&str, Vec<f64>)]) -> ExecStats {
        let mut fast = Machine::new(program);
        let mut reference = ReferenceMachine::new(program);
        for (name, data) in writes {
            fast.write_dram(name, data).unwrap();
            reference.write_dram(name, data).unwrap();
        }
        let mut tree = fast.clone();
        let fast_result = fast.run(program);
        let tree_result = tree.run_tree(program);
        let ref_result = reference.run(program);
        assert_eq!(fast_result, tree_result, "bytecode vs tree results diverge");
        assert_eq!(fast_result, ref_result, "run results diverge");
        for d in &program.drams {
            let a = fast.dram(&d.name).unwrap();
            let t = tree.dram(&d.name).unwrap();
            let b = reference.dram(&d.name).unwrap();
            let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let t_bits: Vec<u64> = t.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a_bits, t_bits, "DRAM {} bytecode vs tree diverges", d.name);
            assert_eq!(a_bits, b_bits, "DRAM {} diverges", d.name);
        }
        assert_eq!(fast.stats(), tree.stats(), "bytecode vs tree stats diverge");
        assert_eq!(fast.stats(), reference.stats(), "stats diverge");
        fast_result.unwrap_or_else(|_| fast.stats().clone())
    }

    #[test]
    fn doc_example_doubles_vector() {
        let mut p = SpatialProgram::new("double");
        p.add_dram("x", 4);
        p.add_dram("y", 4);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("xs", MemKind::Sram, 4)));
        p.accel.push(SpatialStmt::Load {
            dst: "xs".into(),
            src: "x".into(),
            start: SExpr::Const(0.0),
            end: SExpr::Const(4.0),
            par: 1,
        });
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(4.0)),
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "y".into(),
                index: SExpr::var("i"),
                value: SExpr::mul(SExpr::read("xs", SExpr::var("i")), SExpr::Const(2.0)),
            }],
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        m.write_dram("x", &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let stats = m.run(&p).unwrap();
        assert_eq!(m.dram("y").unwrap(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(stats.trips(0), 4);
        assert_eq!(stats.dram_reads["x"], 4);
        assert_eq!(stats.dram_random_writes, 4);
        assert_engines_agree(&p, &[("x", vec![1.0, 2.0, 3.0, 4.0])]);
    }

    #[test]
    fn reduce_accumulates() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc", MemKind::Reg, 1)));
        p.accel.push(SpatialStmt::Reduce {
            id: 0,
            reg: "acc".into(),
            counter: Counter::range_to("i", SExpr::Const(5.0)),
            par: 1,
            body: vec![],
            expr: SExpr::var("i"),
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::RegRead("acc".into()),
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 10.0);
        assert_eq!(m.stats().reduce_elems, 5);
        assert_eq!(m.stats().trips(0), 5);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn load_to_sram_and_fifo() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("d", 4);
        p.add_dram("out", 4);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 4)));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 16)));
        p.accel.push(SpatialStmt::Load {
            dst: "s".into(),
            src: "d".into(),
            start: SExpr::Const(1.0),
            end: SExpr::Const(3.0),
            par: 1,
        });
        p.accel.push(SpatialStmt::Load {
            dst: "f".into(),
            src: "d".into(),
            start: SExpr::Const(0.0),
            end: SExpr::Const(2.0),
            par: 1,
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read("s", SExpr::Const(0.0)),
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(1.0),
            value: SExpr::Deq("f".into()),
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(2.0),
            value: SExpr::Deq("f".into()),
        });
        let mut m = Machine::new(&p);
        m.write_dram("d", &[1.0, 2.0, 3.0, 4.0]).unwrap();
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..3], &[2.0, 1.0, 2.0]);
        assert_eq!(m.stats().dram_reads["d"], 4);
        assert_eq!(m.stats().fifo_deqs, 2);
        assert_engines_agree(&p, &[("d", vec![1.0, 2.0, 3.0, 4.0])]);
    }

    #[test]
    fn fifo_underflow_detected() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 4)));
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Deq("f".into()),
        });
        let mut m = Machine::new(&p);
        assert_eq!(m.run(&p), Err(RunError::FifoUnderflow("f".into())));
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn scan1_visits_set_bits() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 8);
        p.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "bv",
            MemKind::BitVector,
            8,
        )));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("crd", MemKind::Fifo, 8)));
        for c in [1.0, 4.0, 6.0] {
            p.accel.push(SpatialStmt::Enq {
                fifo: "crd".into(),
                value: SExpr::Const(c),
            });
        }
        p.accel.push(SpatialStmt::GenBitVector {
            dst: "bv".into(),
            src: "crd".into(),
            src_start: SExpr::Const(0.0),
            count: SExpr::Const(3.0),
            dim: SExpr::Const(8.0),
        });
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan1 {
                bv: "bv".into(),
                pos_var: "p".into(),
                idx_var: "i".into(),
            },
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::var("p"),
                value: SExpr::var("i"),
            }],
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..3], &[1.0, 4.0, 6.0]);
        assert_eq!(m.stats().scan_emits, 3);
        assert_eq!(m.stats().scan_bits, 8);
        assert_engines_agree(&p, &[]);
    }

    /// The worked example of Fig. 7: A crd {1,2,5}, B crd {0,2,3,8},
    /// union produces out crd {0,1,2,3,5,8} with the pattern indices
    /// shown in the figure (X rendered as -1).
    #[test]
    fn scan2_union_matches_fig7() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out_crd", 9);
        p.add_dram("out_tuples", 16);
        for (bv, coords) in [
            ("bvA", vec![1.0, 2.0, 5.0]),
            ("bvB", vec![0.0, 2.0, 3.0, 8.0]),
        ] {
            p.accel
                .push(SpatialStmt::Alloc(MemDecl::new(bv, MemKind::BitVector, 9)));
            let fifo = format!("{bv}_crd");
            p.accel
                .push(SpatialStmt::Alloc(MemDecl::new(&fifo, MemKind::Fifo, 9)));
            for c in &coords {
                p.accel.push(SpatialStmt::Enq {
                    fifo: fifo.clone(),
                    value: SExpr::Const(*c),
                });
            }
            p.accel.push(SpatialStmt::GenBitVector {
                dst: bv.into(),
                src: fifo,
                src_start: SExpr::Const(0.0),
                count: SExpr::Const(coords.len() as f64),
                dim: SExpr::Const(9.0),
            });
        }
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan2 {
                op: ScanOp::Or,
                bv_a: "bvA".into(),
                bv_b: "bvB".into(),
                a_pos_var: "pA".into(),
                b_pos_var: "pB".into(),
                out_pos_var: "pO".into(),
                idx_var: "i".into(),
            },
            par: 1,
            body: vec![
                SpatialStmt::StoreScalar {
                    dst: "out_crd".into(),
                    index: SExpr::var("pO"),
                    value: SExpr::var("i"),
                },
                SpatialStmt::StoreScalar {
                    dst: "out_tuples".into(),
                    index: SExpr::mul(SExpr::var("pO"), SExpr::Const(2.0)),
                    value: SExpr::var("pA"),
                },
                SpatialStmt::StoreScalar {
                    dst: "out_tuples".into(),
                    index: SExpr::add(
                        SExpr::mul(SExpr::var("pO"), SExpr::Const(2.0)),
                        SExpr::Const(1.0),
                    ),
                    value: SExpr::var("pB"),
                },
            ],
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(
            &m.dram("out_crd").unwrap()[..6],
            &[0.0, 1.0, 2.0, 3.0, 5.0, 8.0]
        );
        assert_eq!(
            &m.dram("out_tuples").unwrap()[..12],
            &[
                -1.0, 0.0, // i=0: only B
                0.0, -1.0, // i=1: only A
                1.0, 1.0, // i=2: both
                -1.0, 2.0, // i=3: only B
                2.0, -1.0, // i=5: only A
                -1.0, 3.0, // i=8: only B
            ]
        );
        assert_eq!(m.stats().scan_emits, 6);
        assert_engines_agree(&p, &[]);
    }

    /// Regression for the per-loop-entry bit-vector clone: a scan nested
    /// inside a `Foreach` re-enters once per outer iteration over a
    /// large dimension. The epoch-stamped snapshot pool must reproduce
    /// the reference engine's clone semantics (and stats) exactly.
    #[test]
    fn scan_reentry_over_large_dimension_matches_reference() {
        const DIM: usize = 1 << 14;
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "bv",
            MemKind::BitVector,
            DIM,
        )));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("crd", MemKind::Fifo, 8)));
        let coords = [1.0, 7.0, (DIM - 2) as f64];
        for c in coords {
            p.accel.push(SpatialStmt::Enq {
                fifo: "crd".into(),
                value: SExpr::Const(c),
            });
        }
        p.accel.push(SpatialStmt::GenBitVector {
            dst: "bv".into(),
            src: "crd".into(),
            src_start: SExpr::Const(0.0),
            count: SExpr::Const(coords.len() as f64),
            dim: SExpr::Const(DIM as f64),
        });
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc", MemKind::Reg, 1)));
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("r", SExpr::Const(3.0)),
            par: 1,
            body: vec![SpatialStmt::Reduce {
                id: 1,
                reg: "acc".into(),
                counter: Counter::Scan1 {
                    bv: "bv".into(),
                    pos_var: "p".into(),
                    idx_var: "i".into(),
                },
                par: 1,
                body: vec![],
                expr: SExpr::var("i"),
            }],
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::RegRead("acc".into()),
        });
        p.assign_ids();
        let stats = assert_engines_agree(&p, &[]);
        assert_eq!(stats.scan_bits, 3 * DIM as u64, "three re-entries");
        assert_eq!(stats.scan_emits, 9);
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        let per_entry: f64 = coords.iter().sum();
        assert_eq!(m.dram("out").unwrap()[0], 3.0 * per_entry);
    }

    /// The scanned bit vector is regenerated inside the loop body; the
    /// active scan must keep iterating its entry-time snapshot, exactly
    /// like the engines that cloned the bits at entry.
    #[test]
    fn scan_snapshot_survives_mid_loop_regeneration() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 8);
        p.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "bv",
            MemKind::BitVector,
            8,
        )));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("crd", MemKind::Fifo, 8)));
        for c in [1.0, 4.0, 6.0] {
            p.accel.push(SpatialStmt::Enq {
                fifo: "crd".into(),
                value: SExpr::Const(c),
            });
        }
        p.accel.push(SpatialStmt::GenBitVector {
            dst: "bv".into(),
            src: "crd".into(),
            src_start: SExpr::Const(0.0),
            count: SExpr::Const(3.0),
            dim: SExpr::Const(8.0),
        });
        // Each iteration records its index, then clobbers the scanned
        // bit vector with {0}.
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan1 {
                bv: "bv".into(),
                pos_var: "p".into(),
                idx_var: "i".into(),
            },
            par: 1,
            body: vec![
                SpatialStmt::StoreScalar {
                    dst: "out".into(),
                    index: SExpr::var("p"),
                    value: SExpr::var("i"),
                },
                SpatialStmt::Enq {
                    fifo: "crd".into(),
                    value: SExpr::Const(0.0),
                },
                SpatialStmt::GenBitVector {
                    dst: "bv".into(),
                    src: "crd".into(),
                    src_start: SExpr::Const(0.0),
                    count: SExpr::Const(1.0),
                    dim: SExpr::Const(8.0),
                },
            ],
        });
        // A second scan sees the regenerated {0}.
        p.accel.push(SpatialStmt::Foreach {
            id: 1,
            counter: Counter::Scan1 {
                bv: "bv".into(),
                pos_var: "q".into(),
                idx_var: "j".into(),
            },
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::add(SExpr::var("q"), SExpr::Const(4.0)),
                value: SExpr::add(SExpr::var("j"), SExpr::Const(100.0)),
            }],
        });
        p.assign_ids();
        let stats = assert_engines_agree(&p, &[]);
        assert_eq!(stats.trips(0), 3, "first scan iterates its snapshot");
        assert_eq!(stats.trips(1), 1, "second scan sees the new bits");
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..5], &[1.0, 4.0, 6.0, 0.0, 100.0]);
    }

    /// Nested scans allocate distinct snapshot-pool depths.
    #[test]
    fn nested_scans_use_distinct_pool_depths() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 64);
        for (bv, coords) in [("bvA", vec![2.0, 5.0]), ("bvB", vec![1.0, 3.0, 4.0])] {
            p.accel
                .push(SpatialStmt::Alloc(MemDecl::new(bv, MemKind::BitVector, 8)));
            let fifo = format!("{bv}_crd");
            p.accel
                .push(SpatialStmt::Alloc(MemDecl::new(&fifo, MemKind::Fifo, 8)));
            for c in &coords {
                p.accel.push(SpatialStmt::Enq {
                    fifo: fifo.clone(),
                    value: SExpr::Const(*c),
                });
            }
            p.accel.push(SpatialStmt::GenBitVector {
                dst: bv.into(),
                src: fifo,
                src_start: SExpr::Const(0.0),
                count: SExpr::Const(coords.len() as f64),
                dim: SExpr::Const(8.0),
            });
        }
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan1 {
                bv: "bvA".into(),
                pos_var: "pa".into(),
                idx_var: "ia".into(),
            },
            par: 1,
            body: vec![SpatialStmt::Foreach {
                id: 1,
                counter: Counter::Scan1 {
                    bv: "bvB".into(),
                    pos_var: "pb".into(),
                    idx_var: "ib".into(),
                },
                par: 1,
                body: vec![SpatialStmt::StoreScalar {
                    dst: "out".into(),
                    index: SExpr::add(
                        SExpr::mul(SExpr::var("ia"), SExpr::Const(8.0)),
                        SExpr::var("ib"),
                    ),
                    value: SExpr::add(SExpr::var("pa"), SExpr::var("pb")),
                }],
            }],
        });
        p.assign_ids();
        let stats = assert_engines_agree(&p, &[]);
        assert_eq!(stats.trips(0), 2);
        assert_eq!(stats.trips(1), 6);
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        // Outer idx 5 (pos 1), inner idx 4 (pos 2) -> out[5*8+4] = 3.
        assert_eq!(m.dram("out").unwrap()[5 * 8 + 4], 3.0);
    }

    #[test]
    fn rmw_add_into_sparse_sram_counts_shuffle() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "acc",
            MemKind::SparseSram,
            4,
        )));
        for v in [1.5, 1.0] {
            p.accel.push(SpatialStmt::RmwAdd {
                mem: "acc".into(),
                index: SExpr::Const(2.0),
                value: SExpr::Const(v),
            });
        }
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read("acc", SExpr::Const(2.0)),
        });
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 2.5);
        assert_eq!(m.stats().shuffle_accesses, 2);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn sparse_dram_random_read() {
        let mut p = SpatialProgram::new("t");
        p.add_sparse_dram("x", 8);
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read_random("x", SExpr::Const(2.0)),
        });
        let mut m = Machine::new(&p);
        m.write_dram("x", &[0.0, 10.0, 20.0]).unwrap();
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 20.0);
        assert_eq!(m.stats().dram_random_reads, 1);
        assert_eq!(m.dram_kind("x"), Some(MemKind::SparseDram));
        assert_engines_agree(&p, &[("x", vec![0.0, 10.0, 20.0])]);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("d", 2);
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read("d", SExpr::Const(5.0)),
        });
        let mut m = Machine::new(&p);
        let err = m.run(&p).unwrap_err();
        assert!(matches!(err, RunError::OutOfBounds { .. }));
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn stream_store_drains_fifo() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 8);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 8)));
        for v in [5.0, 6.0, 7.0] {
            p.accel.push(SpatialStmt::Enq {
                fifo: "f".into(),
                value: SExpr::Const(v),
            });
        }
        p.accel.push(SpatialStmt::StreamStore {
            dst: "out".into(),
            offset: SExpr::Const(2.0),
            fifo: "f".into(),
            len: SExpr::Const(3.0),
        });
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[2..5], &[5.0, 6.0, 7.0]);
        assert_eq!(m.stats().dram_writes["out"], 3);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn nested_foreach_trips_recorded() {
        let mut p = SpatialProgram::new("t");
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(3.0)),
            par: 2,
            body: vec![SpatialStmt::Foreach {
                id: 1,
                counter: Counter::range_to("j", SExpr::Const(4.0)),
                par: 1,
                body: vec![],
            }],
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        let stats = m.run(&p).unwrap();
        assert_eq!(stats.trips(0), 3);
        assert_eq!(stats.trips(1), 12);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn alloc_in_loop_resets() {
        // A register allocated inside a loop body starts at zero each
        // iteration.
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 4);
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(3.0)),
            par: 1,
            body: vec![
                SpatialStmt::Alloc(MemDecl::new("r", MemKind::Reg, 1)),
                SpatialStmt::SetReg {
                    reg: "r".into(),
                    value: SExpr::add(SExpr::RegRead("r".into()), SExpr::var("i")),
                },
                SpatialStmt::StoreScalar {
                    dst: "out".into(),
                    index: SExpr::var("i"),
                    value: SExpr::RegRead("r".into()),
                },
            ],
        });
        p.assign_ids();
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..3], &[0.0, 1.0, 2.0]);
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn unbound_var_reported() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::var("ghost"),
        });
        let mut m = Machine::new(&p);
        assert_eq!(m.run(&p), Err(RunError::UnboundVar("ghost".into())));
        assert_engines_agree(&p, &[]);
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::add(SExpr::Const(1.0), SExpr::Const(2.0)),
        });
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.stats().alu_ops, 1);
        let stats = m.run(&p).unwrap();
        assert_eq!(stats.alu_ops, 2);
        assert_eq!(stats.dram_random_writes, 2);
    }

    #[test]
    fn run_relinks_a_different_program() {
        let mut p1 = SpatialProgram::new("a");
        p1.add_dram("x", 2);
        p1.accel.push(SpatialStmt::StoreScalar {
            dst: "x".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Const(7.0),
        });
        // Same DRAM, different statement — and a reference to a DRAM the
        // machine never allocated.
        let mut p2 = SpatialProgram::new("b");
        p2.add_dram("x", 2);
        p2.accel.push(SpatialStmt::StoreScalar {
            dst: "x".into(),
            index: SExpr::Const(1.0),
            value: SExpr::Const(9.0),
        });
        let mut m = Machine::new(&p1);
        m.run(&p1).unwrap();
        m.run(&p2).unwrap();
        assert_eq!(m.dram("x").unwrap(), &[7.0, 9.0]);

        let mut p3 = SpatialProgram::new("c");
        p3.add_dram("ghost", 2);
        p3.accel.push(SpatialStmt::StoreScalar {
            dst: "ghost".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Const(1.0),
        });
        // `ghost` was not declared when the machine was built: its slots
        // exist after re-linking but carry no storage, like the
        // reference engine's behavior.
        assert_eq!(m.run(&p3), Err(RunError::UnknownMemory("ghost".into())));
    }

    #[test]
    fn write_dram_usize_converts_in_place() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("pos", 4);
        let mut m = Machine::new(&p);
        m.write_dram_usize("pos", &[0, 2, 5]).unwrap();
        assert_eq!(&m.dram("pos").unwrap()[..3], &[0.0, 2.0, 5.0]);
        assert_eq!(m.dram_usize("pos").unwrap(), vec![0, 2, 5, 0]);
        let mut buf = Vec::new();
        m.read_dram_usize_into("pos", 2, &mut buf).unwrap();
        assert_eq!(buf, vec![0, 2]);
        assert_eq!(
            m.read_dram_usize_into("pos", 9, &mut buf),
            Err(RunError::OutOfBounds {
                mem: "pos".into(),
                index: 9,
                len: 4,
            })
        );
        assert!(buf.is_empty(), "failed read leaves the buffer empty");
        assert!(m.write_dram_usize("ghost", &[1]).is_err());
    }

    #[test]
    fn zero_length_load_still_creates_stats_entry() {
        // The reference engine creates a dram_reads entry even for a
        // zero-word load; the fold must reproduce that.
        let mut p = SpatialProgram::new("t");
        p.add_dram("d", 4);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 4)));
        p.accel.push(SpatialStmt::Load {
            dst: "s".into(),
            src: "d".into(),
            start: SExpr::Const(2.0),
            end: SExpr::Const(2.0),
            par: 1,
        });
        let stats = assert_engines_agree(&p, &[]);
        assert_eq!(stats.dram_reads.get("d"), Some(&0));
    }

    // --- FIFO ring-buffer representation -----------------------------

    /// Interleaved enqueues and dequeues force the ring's read/write
    /// positions to wrap around its region several times; ordering and
    /// statistics must match the unbounded reference queue exactly.
    #[test]
    fn fifo_ring_wraparound_preserves_order() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 16);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 4)));
        let mut out_ix = 0.0;
        // Three rounds of (enq 3, deq 2) leave one element behind per
        // round; with capacity 4 the write position wraps every round.
        for round in 0..3 {
            for k in 0..3 {
                p.accel.push(SpatialStmt::Enq {
                    fifo: "f".into(),
                    value: SExpr::Const((10 * round + k) as f64),
                });
            }
            for _ in 0..2 {
                p.accel.push(SpatialStmt::StoreScalar {
                    dst: "out".into(),
                    index: SExpr::Const(out_ix),
                    value: SExpr::Deq("f".into()),
                });
                out_ix += 1.0;
            }
        }
        // Drain the three leftovers.
        p.accel.push(SpatialStmt::StreamStore {
            dst: "out".into(),
            offset: SExpr::Const(out_ix),
            fifo: "f".into(),
            len: SExpr::Const(3.0),
        });
        let stats = assert_engines_agree(&p, &[]);
        assert_eq!(stats.fifo_enqs, 9);
        assert_eq!(stats.fifo_deqs, 9);
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(
            &m.dram("out").unwrap()[..9],
            &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0, 20.0, 21.0, 22.0],
            "FIFO order across wraparounds"
        );
    }

    /// Enqueuing past the declared capacity must not fail: the queue is
    /// unbounded (like the reference `VecDeque`) and the ring grows by
    /// relocating to a larger arena region, carrying its contents.
    #[test]
    fn fifo_enqueue_past_declared_capacity_grows() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 16);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 2)));
        // Wrap first so the relocation has to linearize a split ring.
        p.accel.push(SpatialStmt::Enq {
            fifo: "f".into(),
            value: SExpr::Const(99.0),
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(15.0),
            value: SExpr::Deq("f".into()),
        });
        for v in 0..9 {
            p.accel.push(SpatialStmt::Enq {
                fifo: "f".into(),
                value: SExpr::Const(v as f64),
            });
        }
        p.accel.push(SpatialStmt::StreamStore {
            dst: "out".into(),
            offset: SExpr::Const(0.0),
            fifo: "f".into(),
            len: SExpr::Const(9.0),
        });
        let stats = assert_engines_agree(&p, &[]);
        assert_eq!(stats.fifo_enqs, 10);
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        let expect: Vec<f64> = (0..9).map(f64::from).collect();
        assert_eq!(&m.dram("out").unwrap()[..9], &expect[..]);
    }

    /// Dequeue-from-empty after the ring has wrapped reports the same
    /// `FifoUnderflow` (and drained state) as the reference engine.
    #[test]
    fn fifo_underflow_after_wraparound() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 8);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 2)));
        for round in 0..2 {
            p.accel.push(SpatialStmt::Enq {
                fifo: "f".into(),
                value: SExpr::Const(round as f64),
            });
            p.accel.push(SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::Const(round as f64),
                value: SExpr::Deq("f".into()),
            });
        }
        // Queue is now empty; one more dequeue underflows.
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(7.0),
            value: SExpr::Deq("f".into()),
        });
        let mut m = Machine::new(&p);
        assert_eq!(m.run(&p), Err(RunError::FifoUnderflow("f".into())));
        assert_engines_agree(&p, &[]);
    }

    /// Draining more than the queue holds underflows and leaves the
    /// FIFO drained, exactly like the reference engine's pop-until-
    /// empty failure.
    #[test]
    fn fifo_stream_store_underflow_drains() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 8);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 4)));
        p.accel.push(SpatialStmt::Enq {
            fifo: "f".into(),
            value: SExpr::Const(1.0),
        });
        p.accel.push(SpatialStmt::StreamStore {
            dst: "out".into(),
            offset: SExpr::Const(0.0),
            fifo: "f".into(),
            len: SExpr::Const(3.0),
        });
        let mut m = Machine::new(&p);
        assert_eq!(m.run(&p), Err(RunError::FifoUnderflow("f".into())));
        assert_engines_agree(&p, &[]);
    }

    // --- Bit-vector arena growth -------------------------------------

    /// `GenBitVector` with a dimension larger than the declared
    /// allocation grows the slot's bitset region; the following scan
    /// sees the full dimension, matching the old `Vec<bool>` resize.
    #[test]
    fn bitvector_grows_past_declared_dimension() {
        const DIM: usize = 200; // declared 8, grown to 200 (4 words)
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 8);
        p.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "bv",
            MemKind::BitVector,
            8,
        )));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("crd", MemKind::Fifo, 8)));
        let coords = [1.0, 64.0, (DIM - 1) as f64];
        for c in coords {
            p.accel.push(SpatialStmt::Enq {
                fifo: "crd".into(),
                value: SExpr::Const(c),
            });
        }
        p.accel.push(SpatialStmt::GenBitVector {
            dst: "bv".into(),
            src: "crd".into(),
            src_start: SExpr::Const(0.0),
            count: SExpr::Const(coords.len() as f64),
            dim: SExpr::Const(DIM as f64),
        });
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan1 {
                bv: "bv".into(),
                pos_var: "p".into(),
                idx_var: "i".into(),
            },
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::var("p"),
                value: SExpr::var("i"),
            }],
        });
        p.assign_ids();
        let stats = assert_engines_agree(&p, &[]);
        assert_eq!(stats.scan_bits, DIM as u64, "scan sees the grown dim");
        assert_eq!(stats.scan_emits, 3);
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..3], &coords[..]);
    }

    // --- Re-linking over the arena -----------------------------------

    /// On-chip state written by one program survives re-linking to a
    /// second program that reads it without re-allocating — matching
    /// the reference engine's persistent name-keyed map.
    #[test]
    fn relink_preserves_on_chip_state() {
        let mut p1 = SpatialProgram::new("a");
        p1.add_dram("out", 4);
        p1.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 4)));
        p1.accel
            .push(SpatialStmt::Alloc(MemDecl::new("r", MemKind::Reg, 1)));
        p1.accel.push(SpatialStmt::WriteMem {
            mem: "s".into(),
            index: SExpr::Const(2.0),
            value: SExpr::Const(7.0),
            random: false,
        });
        p1.accel.push(SpatialStmt::SetReg {
            reg: "r".into(),
            value: SExpr::Const(3.5),
        });
        // p2 reads both without allocating; it also allocates a *larger*
        // SRAM under a new name, forcing fresh arena regions.
        let mut p2 = SpatialProgram::new("b");
        p2.add_dram("out", 4);
        p2.accel
            .push(SpatialStmt::Alloc(MemDecl::new("big", MemKind::Sram, 64)));
        p2.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read("s", SExpr::Const(2.0)),
        });
        p2.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(1.0),
            value: SExpr::RegRead("r".into()),
        });
        let mut m = Machine::new(&p1);
        let mut reference = ReferenceMachine::new(&p1);
        m.run(&p1).unwrap();
        reference.run(&p1).unwrap();
        m.run(&p2).unwrap();
        reference.run(&p2).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..2], &[7.0, 3.5]);
        assert_eq!(m.dram("out").unwrap(), reference.dram("out").unwrap());
        assert_eq!(m.stats(), reference.stats());
    }

    /// Re-linking to a program that re-allocates an existing slot with
    /// a larger size than the original layout reserved grows the region
    /// at the end of the arena.
    #[test]
    fn relink_grows_slot_beyond_original_layout() {
        let mut p1 = SpatialProgram::new("a");
        p1.add_dram("out", 4);
        p1.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 2)));
        let mut p2 = SpatialProgram::new("b");
        p2.add_dram("out", 4);
        p2.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 32)));
        p2.accel.push(SpatialStmt::WriteMem {
            mem: "s".into(),
            index: SExpr::Const(31.0),
            value: SExpr::Const(5.0),
            random: false,
        });
        p2.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read("s", SExpr::Const(31.0)),
        });
        let mut m = Machine::new(&p1);
        m.run(&p1).unwrap();
        m.run(&p2).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 5.0);
    }

    /// Alternating runs between two programs must not grow the arenas
    /// per relink: once every slot has a region satisfying both
    /// layouts, re-linking appends nothing.
    #[test]
    fn relink_alternation_reaches_arena_fixed_point() {
        let mut p1 = SpatialProgram::new("a");
        p1.add_dram("out", 4);
        p1.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s1", MemKind::Sram, 16)));
        p1.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "bv1",
            MemKind::BitVector,
            128,
        )));
        let mut p2 = SpatialProgram::new("b");
        p2.add_dram("out", 4);
        p2.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s2", MemKind::Sram, 32)));
        p2.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f2", MemKind::Fifo, 8)));
        let mut m = Machine::new(&p1);
        m.run(&p1).unwrap();
        m.run(&p2).unwrap();
        let words = m.words.len();
        let bits = m.bits.len();
        for _ in 0..4 {
            m.run(&p1).unwrap();
            m.run(&p2).unwrap();
        }
        assert_eq!(m.words.len(), words, "word arena grew across relinks");
        assert_eq!(m.bits.len(), bits, "bitset arena grew across relinks");
    }

    // --- Snapshot / restore ------------------------------------------

    /// Checkpoint regression: run a first phase, snapshot, finish, then
    /// restore and finish again — the replay must produce byte-identical
    /// DRAM images and identical statistics, proving the snapshot
    /// captures all mid-execution state (on-chip arenas, FIFO ring
    /// positions, bindings, and the dense counters).
    #[test]
    fn snapshot_restore_replays_identically() {
        // Phase 1: load, scatter into SparseSRAM, leave a FIFO with a
        // wrapped ring, a bound variable, and a register mid-flight.
        let mut p1 = SpatialProgram::new("phase1");
        p1.add_dram("in", 8);
        p1.add_dram("out", 16);
        p1.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "s",
            MemKind::SparseSram,
            8,
        )));
        p1.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 2)));
        p1.accel
            .push(SpatialStmt::Alloc(MemDecl::new("r", MemKind::Reg, 1)));
        p1.accel.push(SpatialStmt::Load {
            dst: "s".into(),
            src: "in".into(),
            start: SExpr::Const(0.0),
            end: SExpr::Const(8.0),
            par: 1,
        });
        for v in [4.0, 5.0, 6.0] {
            p1.accel.push(SpatialStmt::Enq {
                fifo: "f".into(),
                value: SExpr::Const(v),
            });
        }
        p1.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(15.0),
            value: SExpr::Deq("f".into()),
        });
        p1.accel.push(SpatialStmt::SetReg {
            reg: "r".into(),
            value: SExpr::Const(2.5),
        });
        p1.accel.push(SpatialStmt::Bind {
            var: "v".into(),
            value: SExpr::Const(3.0),
        });
        // Phase 2: consume all of that state.
        let mut p2 = SpatialProgram::new("phase2");
        p2.add_dram("in", 8);
        p2.add_dram("out", 16);
        p2.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(4.0)),
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::var("i"),
                value: SExpr::mul(
                    SExpr::read("s", SExpr::var("i")),
                    SExpr::RegRead("r".into()),
                ),
            }],
        });
        p2.accel.push(SpatialStmt::StreamStore {
            dst: "out".into(),
            offset: SExpr::Const(4.0),
            fifo: "f".into(),
            len: SExpr::Const(2.0),
        });
        p2.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(6.0),
            value: SExpr::var("v"),
        });
        p2.assign_ids();

        let mut m = Machine::new(&p1);
        m.write_dram("in", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .unwrap();
        m.run(&p1).unwrap();
        let checkpoint = m.snapshot();
        let stats1 = m.run(&p2).unwrap();
        let dram1: Vec<u64> = m.dram("out").unwrap().iter().map(|v| v.to_bits()).collect();
        // Finish again from the checkpoint: byte-identical replay.
        m.restore(&checkpoint);
        let stats2 = m.run(&p2).unwrap();
        let dram2: Vec<u64> = m.dram("out").unwrap().iter().map(|v| v.to_bits()).collect();
        assert_eq!(dram1, dram2, "replayed DRAM must be byte-identical");
        assert_eq!(stats1, stats2, "replayed statistics must be identical");
        // Sanity: phase 2 really consumed phase-1 state.
        assert_eq!(
            &m.dram("out").unwrap()[..7],
            &[
                2.5, 5.0, 7.5, 10.0, // s[i] * r
                5.0, 6.0, // FIFO leftovers
                3.0  // bound var
            ]
        );
    }

    /// The snapshot is a deep copy: mutations after `snapshot()` do not
    /// leak into it, and `restore` rewinds DRAM too.
    #[test]
    fn snapshot_is_isolated_from_later_mutation() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 2);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Const(1.0),
        });
        let mut m = Machine::new(&p);
        let before = m.snapshot();
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 1.0);
        assert_eq!(m.stats().dram_random_writes, 1);
        m.restore(&before);
        assert_eq!(m.dram("out").unwrap()[0], 0.0, "DRAM rewound");
        assert_eq!(m.stats().dram_random_writes, 0, "stats rewound");
    }
}
