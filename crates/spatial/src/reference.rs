//! The original string-keyed tree-walking interpreter, kept as the
//! executable *reference semantics* for the Spatial IR.
//!
//! [`ReferenceMachine`] is the engine the resolved-slot interpreter
//! ([`crate::Machine`]) is differentially tested against: both must
//! produce byte-identical DRAM contents and identical [`ExecStats`] on
//! every program. It walks the [`SpatialProgram`] tree directly and keys
//! every memory, register, FIFO, and variable access by name through
//! `HashMap<String, _>` lookups — simple and obviously faithful to the
//! documented semantics, but roughly an order of magnitude slower, which
//! is why the production path links programs through
//! [`crate::resolve`] first. `cargo bench --bench interp` measures the
//! two engines against each other.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use crate::faults;
use crate::interp::{
    check_interrupts, exhausted_fuel, BudgetResource, ExecStats, FuelCause, RunBudget, RunError,
    INTERRUPT_MASK,
};
use crate::ir::{Counter, MemDecl, MemKind, SExpr, ScanOp, SpatialProgram, SpatialStmt};

#[derive(Debug, Clone)]
enum Mem {
    Words(Vec<f64>),
    Fifo(VecDeque<f64>),
    Reg(f64),
    Bits(Vec<bool>),
}

/// The machine state a program executes against: DRAM plus on-chip
/// memories, variable bindings, and statistics.
///
/// # Example
///
/// ```
/// use stardust_spatial::{ReferenceMachine, SpatialProgram, SpatialStmt, SExpr, Counter, MemKind};
/// use stardust_spatial::ir::MemDecl;
///
/// // y[i] = x[i] * 2 over a 4-element DRAM vector.
/// let mut p = SpatialProgram::new("double");
/// p.add_dram("x", 4);
/// p.add_dram("y", 4);
/// p.accel.push(SpatialStmt::Alloc(MemDecl::new("xs", MemKind::Sram, 4)));
/// p.accel.push(SpatialStmt::Load {
///     dst: "xs".into(), src: "x".into(),
///     start: SExpr::Const(0.0), end: SExpr::Const(4.0), par: 1,
/// });
/// p.accel.push(SpatialStmt::Foreach {
///     id: 0,
///     counter: Counter::range_to("i", SExpr::Const(4.0)),
///     par: 1,
///     body: vec![SpatialStmt::StoreScalar {
///         dst: "y".into(),
///         index: SExpr::var("i"),
///         value: SExpr::mul(SExpr::read("xs", SExpr::var("i")), SExpr::Const(2.0)),
///     }],
/// });
/// p.assign_ids();
///
/// let mut m = ReferenceMachine::new(&p);
/// m.write_dram("x", &[1.0, 2.0, 3.0, 4.0]).unwrap();
/// m.run(&p).unwrap();
/// assert_eq!(m.dram("y").unwrap(), &[2.0, 4.0, 6.0, 8.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceMachine {
    drams: HashMap<String, Vec<f64>>,
    dram_kinds: HashMap<String, MemKind>,
    on_chip: HashMap<String, Mem>,
    on_chip_kinds: HashMap<String, MemKind>,
    env: HashMap<String, f64>,
    stats: ExecStats,
    node_stack: Vec<usize>,
    budget: RunBudget,
    fuel: u64,
    fuel_cause: FuelCause,
    step_limit: u64,
    dram_fuel: u64,
    alloc_fuel: u64,
    deadline_at: Option<Instant>,
    interrupts: bool,
}

impl ReferenceMachine {
    /// Creates a machine with zeroed DRAM arrays sized per the program's
    /// declarations.
    pub fn new(program: &SpatialProgram) -> Self {
        let mut drams = HashMap::new();
        let mut dram_kinds = HashMap::new();
        for d in &program.drams {
            drams.insert(d.name.clone(), vec![0.0; d.size]);
            dram_kinds.insert(d.name.clone(), d.kind);
        }
        ReferenceMachine {
            drams,
            dram_kinds,
            on_chip: HashMap::new(),
            on_chip_kinds: HashMap::new(),
            env: HashMap::new(),
            stats: ExecStats::default(),
            node_stack: Vec::new(),
            budget: RunBudget::default(),
            fuel: u64::MAX,
            fuel_cause: FuelCause::Budget,
            step_limit: u64::MAX,
            dram_fuel: u64::MAX,
            alloc_fuel: u64::MAX,
            deadline_at: None,
            interrupts: false,
        }
    }

    /// Sets the resource budget armed at the next [`ReferenceMachine::run`].
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
    }

    /// The configured resource budget.
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Arms the countdown fields from the configured budget and any
    /// installed [`crate::faults`] plan — the same min-folding as
    /// [`crate::Machine`], so the completes-or-aborts predicate is
    /// engine-identical.
    fn arm_budget(&mut self) {
        let plan = faults::active();
        let mut fuel = self.budget.max_steps.unwrap_or(u64::MAX);
        let mut cause = FuelCause::Budget;
        if let Some(p) = &plan {
            if let Some(n) = p.max_steps {
                fuel = fuel.min(n);
            }
            if let Some(n) = p.error_at_step {
                if n <= fuel {
                    fuel = n;
                    cause = FuelCause::InjectedError;
                }
            }
            if let Some(n) = p.panic_at_step {
                if n <= fuel {
                    fuel = n;
                    cause = FuelCause::InjectedPanic;
                }
            }
        }
        self.fuel = fuel;
        self.fuel_cause = cause;
        self.step_limit = fuel;
        self.dram_fuel = self.budget.max_dram_words.unwrap_or(u64::MAX);
        self.alloc_fuel = plan.as_ref().and_then(|p| p.fail_alloc).unwrap_or(u64::MAX);
        self.deadline_at = self.budget.deadline.map(|d| Instant::now() + d);
        self.interrupts = self.deadline_at.is_some() || self.budget.cancel.is_some();
    }

    /// Charges one interpreter step — called once per loop-body
    /// execution, exactly the `node_trips` bump sites.
    fn charge_step(&mut self) -> Result<(), RunError> {
        if self.fuel == 0 {
            return Err(exhausted_fuel(self.fuel_cause, self.step_limit));
        }
        self.fuel -= 1;
        if self.interrupts && self.fuel & INTERRUPT_MASK == 0 {
            check_interrupts(
                self.deadline_at,
                self.budget
                    .deadline
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
                self.budget.cancel.as_ref(),
            )?;
        }
        Ok(())
    }

    /// Charges `words` against the DRAM-word budget.
    fn charge_dram(&mut self, words: u64) -> Result<(), RunError> {
        match self.dram_fuel.checked_sub(words) {
            Some(rest) => {
                self.dram_fuel = rest;
                Ok(())
            }
            None => Err(RunError::BudgetExceeded {
                resource: BudgetResource::DramWords,
                limit: self.budget.max_dram_words.unwrap_or(0),
            }),
        }
    }

    /// Overwrites the head of a DRAM array with `data`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::UnknownMemory`] or [`RunError::OutOfBounds`] when
    /// the array is missing or too small.
    pub fn write_dram(&mut self, name: &str, data: &[f64]) -> Result<(), RunError> {
        let arr = self
            .drams
            .get_mut(name)
            .ok_or_else(|| RunError::UnknownMemory(name.to_string()))?;
        if data.len() > arr.len() {
            return Err(RunError::OutOfBounds {
                mem: name.to_string(),
                index: data.len() as i64,
                len: arr.len(),
            });
        }
        arr[..data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Writes an integer array (e.g. a `pos`/`crd` sub-array) into DRAM.
    ///
    /// # Errors
    ///
    /// Same as [`ReferenceMachine::write_dram`].
    pub fn write_dram_usize(&mut self, name: &str, data: &[usize]) -> Result<(), RunError> {
        let as_f: Vec<f64> = data.iter().map(|&x| x as f64).collect();
        self.write_dram(name, &as_f)
    }

    /// Reads a DRAM array.
    pub fn dram(&self, name: &str) -> Option<&[f64]> {
        self.drams.get(name).map(Vec::as_slice)
    }

    /// The declared kind of a DRAM array.
    pub fn dram_kind(&self, name: &str) -> Option<MemKind> {
        self.dram_kinds.get(name).copied()
    }

    /// Reads a DRAM array as integers (rounding).
    pub fn dram_usize(&self, name: &str) -> Option<Vec<usize>> {
        self.drams
            .get(name)
            .map(|v| v.iter().map(|&x| x.round() as usize).collect())
    }

    /// The statistics gathered so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Executes the program's Accel block.
    ///
    /// # Errors
    ///
    /// Returns the first [`RunError`] encountered.
    pub fn run(&mut self, program: &SpatialProgram) -> Result<ExecStats, RunError> {
        self.arm_budget();
        for stmt in &program.accel {
            self.exec(stmt)?;
        }
        Ok(self.stats.clone())
    }

    fn current_node(&self) -> Option<usize> {
        self.node_stack.last().copied()
    }

    fn note_dram_read(&mut self, dram: &str, words: u64) -> Result<(), RunError> {
        self.charge_dram(words)?;
        *self.stats.dram_reads.entry(dram.to_string()).or_default() += words;
        if let Some(n) = self.current_node() {
            ExecStats::bump_node(&mut self.stats.node_dram_read_words, n, words);
        }
        Ok(())
    }

    fn note_dram_write(&mut self, dram: &str, words: u64) -> Result<(), RunError> {
        self.charge_dram(words)?;
        *self.stats.dram_writes.entry(dram.to_string()).or_default() += words;
        if let Some(n) = self.current_node() {
            ExecStats::bump_node(&mut self.stats.node_dram_write_words, n, words);
        }
        Ok(())
    }

    fn index_of(&self, v: f64, context: &str) -> Result<usize, RunError> {
        if v < 0.0 {
            return Err(RunError::NegativeIndex {
                context: context.to_string(),
                value: v,
            });
        }
        Ok(v.round() as usize)
    }

    fn eval(&mut self, e: &SExpr) -> Result<f64, RunError> {
        match e {
            SExpr::Const(c) => Ok(*c),
            SExpr::Var(v) => self
                .env
                .get(v)
                .copied()
                .ok_or_else(|| RunError::UnboundVar(v.clone())),
            SExpr::RegRead(r) => match self.on_chip.get(r) {
                Some(Mem::Reg(v)) => Ok(*v),
                _ => Err(RunError::UnknownMemory(r.clone())),
            },
            SExpr::Deq(fifo) => {
                self.stats.fifo_deqs += 1;
                match self.on_chip.get_mut(fifo) {
                    Some(Mem::Fifo(q)) => q
                        .pop_front()
                        .ok_or_else(|| RunError::FifoUnderflow(fifo.clone())),
                    _ => Err(RunError::UnknownMemory(fifo.clone())),
                }
            }
            SExpr::ReadMem { mem, index, random } => {
                let ix = self.eval(index)?;
                let ix = self.index_of(ix, mem)?;
                // On-chip first, then DRAM (SparseDram random reads).
                if let Some(kind) = self.on_chip_kinds.get(mem).copied() {
                    let m = self.on_chip.get(mem).expect("kind implies presence");
                    let v = match m {
                        Mem::Words(w) => *w.get(ix).ok_or(RunError::OutOfBounds {
                            mem: mem.clone(),
                            index: ix as i64,
                            len: w.len(),
                        })?,
                        _ => return Err(RunError::UnknownMemory(mem.clone())),
                    };
                    self.stats.sram_reads += 1;
                    if *random && kind == MemKind::SparseSram {
                        self.stats.shuffle_accesses += 1;
                    }
                    Ok(v)
                } else if let Some(arr) = self.drams.get(mem) {
                    let v = *arr.get(ix).ok_or(RunError::OutOfBounds {
                        mem: mem.clone(),
                        index: ix as i64,
                        len: arr.len(),
                    })?;
                    self.charge_dram(1)?;
                    self.stats.dram_random_reads += 1;
                    Ok(v)
                } else {
                    Err(RunError::UnknownMemory(mem.clone()))
                }
            }
            SExpr::Neg(inner) => {
                let v = self.eval(inner)?;
                self.stats.alu_ops += 1;
                Ok(-v)
            }
            SExpr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                self.stats.alu_ops += 1;
                Ok(op.apply(a, b))
            }
            SExpr::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.eval(cond)?;
                self.stats.alu_ops += 1;
                // Both sides are evaluated in hardware (they are wires);
                // evaluate lazily here only to avoid spurious OOB on the
                // untaken side, which a mux masks out.
                if c != 0.0 {
                    self.eval(if_true)
                } else {
                    self.eval(if_false)
                }
            }
        }
    }

    fn alloc(&mut self, decl: &MemDecl) -> Result<(), RunError> {
        if self.alloc_fuel == 0 {
            self.alloc_fuel = u64::MAX;
            faults::consume_alloc();
            return Err(RunError::InjectedFault {
                site: format!("alloc {}", decl.name),
            });
        }
        self.alloc_fuel -= 1;
        let mem = match decl.kind {
            MemKind::Sram | MemKind::SparseSram => Mem::Words(vec![0.0; decl.size]),
            MemKind::Fifo => Mem::Fifo(VecDeque::new()),
            MemKind::Reg => Mem::Reg(0.0),
            MemKind::BitVector => Mem::Bits(vec![false; decl.size]),
            MemKind::Dram | MemKind::SparseDram => {
                // DRAM is declared at program level, not allocated in Accel.
                return Err(RunError::UnknownMemory(decl.name.clone()));
            }
        };
        self.on_chip.insert(decl.name.clone(), mem);
        self.on_chip_kinds.insert(decl.name.clone(), decl.kind);
        Ok(())
    }

    fn write_on_chip(
        &mut self,
        mem: &str,
        ix: usize,
        value: f64,
        random: bool,
        accumulate: bool,
    ) -> Result<(), RunError> {
        let kind = self
            .on_chip_kinds
            .get(mem)
            .copied()
            .ok_or_else(|| RunError::UnknownMemory(mem.to_string()))?;
        match self.on_chip.get_mut(mem) {
            Some(Mem::Words(w)) => {
                let len = w.len();
                let slot = w.get_mut(ix).ok_or(RunError::OutOfBounds {
                    mem: mem.to_string(),
                    index: ix as i64,
                    len,
                })?;
                if accumulate {
                    *slot += value;
                } else {
                    *slot = value;
                }
                self.stats.sram_writes += 1;
                if (random || accumulate) && kind == MemKind::SparseSram {
                    self.stats.shuffle_accesses += 1;
                }
                Ok(())
            }
            _ => Err(RunError::UnknownMemory(mem.to_string())),
        }
    }

    fn exec(&mut self, stmt: &SpatialStmt) -> Result<(), RunError> {
        match stmt {
            SpatialStmt::Comment(_) => Ok(()),
            SpatialStmt::Alloc(decl) => self.alloc(decl),
            SpatialStmt::Bind { var, value } => {
                let v = self.eval(value)?;
                self.env.insert(var.clone(), v);
                Ok(())
            }
            SpatialStmt::Load {
                dst,
                src,
                start,
                end,
                ..
            } => {
                let s = self.eval(start)?;
                let e = self.eval(end)?;
                let s = self.index_of(s, "load start")?;
                let e = self.index_of(e, "load end")?;
                if s > e {
                    return Err(RunError::NegativeIndex {
                        context: format!("load length (start {s} beyond end {e})"),
                        value: e as f64 - s as f64,
                    });
                }
                let arr = self
                    .drams
                    .get(src)
                    .ok_or_else(|| RunError::UnknownMemory(src.clone()))?;
                if e > arr.len() {
                    return Err(RunError::OutOfBounds {
                        mem: src.clone(),
                        index: e as i64,
                        len: arr.len(),
                    });
                }
                let data: Vec<f64> = arr[s..e].to_vec();
                self.note_dram_read(src, (e - s) as u64)?;
                match self.on_chip.get_mut(dst) {
                    Some(Mem::Words(w)) => {
                        if data.len() > w.len() {
                            return Err(RunError::OutOfBounds {
                                mem: dst.clone(),
                                index: data.len() as i64,
                                len: w.len(),
                            });
                        }
                        w[..data.len()].copy_from_slice(&data);
                        self.stats.sram_writes += data.len() as u64;
                        Ok(())
                    }
                    Some(Mem::Fifo(q)) => {
                        self.stats.fifo_enqs += data.len() as u64;
                        q.extend(data);
                        Ok(())
                    }
                    _ => Err(RunError::UnknownMemory(dst.clone())),
                }
            }
            SpatialStmt::Store {
                dst,
                offset,
                src,
                len,
                ..
            } => {
                let off = self.eval(offset)?;
                let off = self.index_of(off, "store offset")?;
                let n = self.eval(len)?;
                let n = self.index_of(n, "store len")?;
                let data: Vec<f64> = match self.on_chip.get(src) {
                    Some(Mem::Words(w)) => {
                        if n > w.len() {
                            return Err(RunError::OutOfBounds {
                                mem: src.clone(),
                                index: n as i64,
                                len: w.len(),
                            });
                        }
                        w[..n].to_vec()
                    }
                    _ => return Err(RunError::UnknownMemory(src.clone())),
                };
                self.stats.sram_reads += n as u64;
                let arr = self
                    .drams
                    .get_mut(dst)
                    .ok_or_else(|| RunError::UnknownMemory(dst.clone()))?;
                if off + n > arr.len() {
                    return Err(RunError::OutOfBounds {
                        mem: dst.clone(),
                        index: (off + n) as i64,
                        len: arr.len(),
                    });
                }
                arr[off..off + n].copy_from_slice(&data);
                self.note_dram_write(dst, n as u64)?;
                Ok(())
            }
            SpatialStmt::StreamStore {
                dst,
                offset,
                fifo,
                len,
            } => {
                let off = self.eval(offset)?;
                let off = self.index_of(off, "stream store offset")?;
                let n = self.eval(len)?;
                let n = self.index_of(n, "stream store len")?;
                let mut data = Vec::with_capacity(n);
                match self.on_chip.get_mut(fifo) {
                    Some(Mem::Fifo(q)) => {
                        for _ in 0..n {
                            data.push(
                                q.pop_front()
                                    .ok_or_else(|| RunError::FifoUnderflow(fifo.clone()))?,
                            );
                        }
                    }
                    _ => return Err(RunError::UnknownMemory(fifo.clone())),
                }
                self.stats.fifo_deqs += n as u64;
                let arr = self
                    .drams
                    .get_mut(dst)
                    .ok_or_else(|| RunError::UnknownMemory(dst.clone()))?;
                if off + n > arr.len() {
                    return Err(RunError::OutOfBounds {
                        mem: dst.clone(),
                        index: (off + n) as i64,
                        len: arr.len(),
                    });
                }
                arr[off..off + n].copy_from_slice(&data);
                self.note_dram_write(dst, n as u64)?;
                Ok(())
            }
            SpatialStmt::StoreScalar { dst, index, value } => {
                let ix = self.eval(index)?;
                let ix = self.index_of(ix, "scalar store index")?;
                let v = self.eval(value)?;
                self.charge_dram(1)?;
                let arr = self
                    .drams
                    .get_mut(dst)
                    .ok_or_else(|| RunError::UnknownMemory(dst.clone()))?;
                let len = arr.len();
                let slot = arr.get_mut(ix).ok_or(RunError::OutOfBounds {
                    mem: dst.clone(),
                    index: ix as i64,
                    len,
                })?;
                *slot = v;
                self.stats.dram_random_writes += 1;
                Ok(())
            }
            SpatialStmt::WriteMem {
                mem,
                index,
                value,
                random,
            } => {
                let ix = self.eval(index)?;
                let ix = self.index_of(ix, mem)?;
                let v = self.eval(value)?;
                self.write_on_chip(mem, ix, v, *random, false)
            }
            SpatialStmt::RmwAdd { mem, index, value } => {
                let ix = self.eval(index)?;
                let ix = self.index_of(ix, mem)?;
                let v = self.eval(value)?;
                self.write_on_chip(mem, ix, v, true, true)
            }
            SpatialStmt::SetReg { reg, value } => {
                let v = self.eval(value)?;
                match self.on_chip.get_mut(reg) {
                    Some(Mem::Reg(r)) => {
                        *r = v;
                        Ok(())
                    }
                    _ => Err(RunError::UnknownMemory(reg.clone())),
                }
            }
            SpatialStmt::Enq { fifo, value } => {
                let v = self.eval(value)?;
                match self.on_chip.get_mut(fifo) {
                    Some(Mem::Fifo(q)) => {
                        q.push_back(v);
                        self.stats.fifo_enqs += 1;
                        Ok(())
                    }
                    _ => Err(RunError::UnknownMemory(fifo.clone())),
                }
            }
            SpatialStmt::GenBitVector {
                dst,
                src,
                src_start,
                count,
                dim,
            } => {
                let n = self.eval(count)?;
                let n = self.index_of(n, "genbv count")?;
                let d = self.eval(dim)?;
                let d = self.index_of(d, "genbv dim")?;
                let s = self.eval(src_start)?;
                let s = self.index_of(s, "genbv start")?;
                // Gather coordinates from the source memory.
                let coords: Vec<usize> = match self.on_chip.get_mut(src) {
                    Some(Mem::Fifo(q)) => {
                        let mut out = Vec::with_capacity(n);
                        for _ in 0..n {
                            let v = q
                                .pop_front()
                                .ok_or_else(|| RunError::FifoUnderflow(src.clone()))?;
                            out.push(v.round() as usize);
                        }
                        self.stats.fifo_deqs += n as u64;
                        out
                    }
                    Some(Mem::Words(w)) => {
                        if s + n > w.len() {
                            return Err(RunError::OutOfBounds {
                                mem: src.clone(),
                                index: (s + n) as i64,
                                len: w.len(),
                            });
                        }
                        self.stats.sram_reads += n as u64;
                        w[s..s + n].iter().map(|&v| v.round() as usize).collect()
                    }
                    _ => return Err(RunError::UnknownMemory(src.clone())),
                };
                match self.on_chip.get_mut(dst) {
                    Some(Mem::Bits(bits)) => {
                        if bits.len() < d {
                            bits.resize(d, false);
                        }
                        bits.iter_mut().for_each(|b| *b = false);
                        for c in coords {
                            if c >= bits.len() {
                                return Err(RunError::OutOfBounds {
                                    mem: dst.clone(),
                                    index: c as i64,
                                    len: bits.len(),
                                });
                            }
                            bits[c] = true;
                        }
                        self.stats.bv_gen_bits += d as u64;
                        Ok(())
                    }
                    _ => Err(RunError::UnknownMemory(dst.clone())),
                }
            }
            SpatialStmt::Foreach {
                id, counter, body, ..
            } => {
                self.node_stack.push(*id);
                let result = self.run_counter(counter, |m| {
                    m.charge_step()?;
                    ExecStats::bump_node(&mut m.stats.node_trips, *id, 1);
                    for s in body {
                        m.exec(s)?;
                    }
                    Ok(())
                });
                self.node_stack.pop();
                result
            }
            SpatialStmt::Reduce {
                id,
                reg,
                counter,
                body,
                expr,
                ..
            } => {
                self.node_stack.push(*id);
                let mut acc = match self.on_chip.get(reg) {
                    Some(Mem::Reg(v)) => *v,
                    _ => {
                        self.node_stack.pop();
                        return Err(RunError::UnknownMemory(reg.clone()));
                    }
                };
                let result = self.run_counter(counter, |m| {
                    m.charge_step()?;
                    ExecStats::bump_node(&mut m.stats.node_trips, *id, 1);
                    for s in body {
                        m.exec(s)?;
                    }
                    let v = m.eval(expr)?;
                    m.stats.reduce_elems += 1;
                    m.stats.alu_ops += 1; // the tree-add
                    acc += v;
                    Ok(())
                });
                self.node_stack.pop();
                result?;
                if let Some(Mem::Reg(r)) = self.on_chip.get_mut(reg) {
                    *r = acc;
                }
                Ok(())
            }
        }
    }

    fn run_counter(
        &mut self,
        counter: &Counter,
        mut body: impl FnMut(&mut ReferenceMachine) -> Result<(), RunError>,
    ) -> Result<(), RunError> {
        match counter {
            Counter::Range {
                var,
                min,
                max,
                step,
            } => {
                let lo = self.eval(min)?;
                let hi = self.eval(max)?;
                let step = *step;
                debug_assert!(step > 0, "non-positive loop step");
                let saved = self.env.get(var).copied();
                let mut v = lo;
                while v < hi {
                    self.env.insert(var.clone(), v);
                    body(self)?;
                    v += step as f64;
                }
                restore(&mut self.env, var, saved);
                Ok(())
            }
            Counter::Scan1 {
                bv,
                pos_var,
                idx_var,
            } => {
                let bits = match self.on_chip.get(bv) {
                    Some(Mem::Bits(b)) => b.clone(),
                    _ => return Err(RunError::UnknownMemory(bv.clone())),
                };
                self.stats.scan_bits += bits.len() as u64;
                let saved_pos = self.env.get(pos_var).copied();
                let saved_idx = self.env.get(idx_var).copied();
                let mut pos = 0u64;
                for (idx, set) in bits.iter().enumerate() {
                    if *set {
                        self.env.insert(pos_var.clone(), pos as f64);
                        self.env.insert(idx_var.clone(), idx as f64);
                        self.stats.scan_emits += 1;
                        body(self)?;
                        pos += 1;
                    }
                }
                restore(&mut self.env, pos_var, saved_pos);
                restore(&mut self.env, idx_var, saved_idx);
                Ok(())
            }
            Counter::Scan2 {
                op,
                bv_a,
                bv_b,
                a_pos_var,
                b_pos_var,
                out_pos_var,
                idx_var,
            } => {
                let a = match self.on_chip.get(bv_a) {
                    Some(Mem::Bits(b)) => b.clone(),
                    _ => return Err(RunError::UnknownMemory(bv_a.clone())),
                };
                let b = match self.on_chip.get(bv_b) {
                    Some(Mem::Bits(bb)) => bb.clone(),
                    _ => return Err(RunError::UnknownMemory(bv_b.clone())),
                };
                let dim = a.len().max(b.len());
                self.stats.scan_bits += 2 * dim as u64;
                let saved: Vec<(String, Option<f64>)> =
                    [a_pos_var, b_pos_var, out_pos_var, idx_var]
                        .iter()
                        .map(|v| ((*v).clone(), self.env.get(*v).copied()))
                        .collect();
                let (mut ap, mut bp, mut op_count) = (0u64, 0u64, 0u64);
                for idx in 0..dim {
                    let has_a = a.get(idx).copied().unwrap_or(false);
                    let has_b = b.get(idx).copied().unwrap_or(false);
                    let combined = match op {
                        ScanOp::And => has_a && has_b,
                        ScanOp::Or => has_a || has_b,
                    };
                    if combined {
                        self.env
                            .insert(a_pos_var.clone(), if has_a { ap as f64 } else { -1.0 });
                        self.env
                            .insert(b_pos_var.clone(), if has_b { bp as f64 } else { -1.0 });
                        self.env.insert(out_pos_var.clone(), op_count as f64);
                        self.env.insert(idx_var.clone(), idx as f64);
                        self.stats.scan_emits += 1;
                        body(self)?;
                        op_count += 1;
                    }
                    if has_a {
                        ap += 1;
                    }
                    if has_b {
                        bp += 1;
                    }
                }
                for (v, old) in saved {
                    restore(&mut self.env, &v, old);
                }
                Ok(())
            }
        }
    }
}

fn restore(env: &mut HashMap<String, f64>, var: &str, saved: Option<f64>) {
    match saved {
        Some(v) => {
            env.insert(var.to_string(), v);
        }
        None => {
            env.remove(var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinSOp, MemDecl};

    fn empty_program() -> SpatialProgram {
        SpatialProgram::new("t")
    }

    #[test]
    fn bind_and_eval_arithmetic() {
        let p = empty_program();
        let mut m = ReferenceMachine::new(&p);
        m.exec(&SpatialStmt::Bind {
            var: "x".into(),
            value: SExpr::Const(3.0),
        })
        .unwrap();
        let v = m
            .eval(&SExpr::bin(BinSOp::Mul, SExpr::var("x"), SExpr::Const(4.0)))
            .unwrap();
        assert_eq!(v, 12.0);
        assert_eq!(m.stats().alu_ops, 1);
    }

    #[test]
    fn load_to_sram_and_fifo() {
        let mut p = empty_program();
        p.add_dram("d", 4);
        let mut m = ReferenceMachine::new(&p);
        m.write_dram("d", &[1.0, 2.0, 3.0, 4.0]).unwrap();
        m.exec(&SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 4)))
            .unwrap();
        m.exec(&SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 16)))
            .unwrap();
        m.exec(&SpatialStmt::Load {
            dst: "s".into(),
            src: "d".into(),
            start: SExpr::Const(1.0),
            end: SExpr::Const(3.0),
            par: 1,
        })
        .unwrap();
        m.exec(&SpatialStmt::Load {
            dst: "f".into(),
            src: "d".into(),
            start: SExpr::Const(0.0),
            end: SExpr::Const(2.0),
            par: 1,
        })
        .unwrap();
        assert_eq!(m.eval(&SExpr::read("s", SExpr::Const(0.0))).unwrap(), 2.0);
        assert_eq!(m.eval(&SExpr::Deq("f".into())).unwrap(), 1.0);
        assert_eq!(m.eval(&SExpr::Deq("f".into())).unwrap(), 2.0);
        assert_eq!(m.stats().dram_reads["d"], 4);
    }

    #[test]
    fn fifo_underflow_detected() {
        let p = empty_program();
        let mut m = ReferenceMachine::new(&p);
        m.exec(&SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 4)))
            .unwrap();
        assert_eq!(
            m.eval(&SExpr::Deq("f".into())),
            Err(RunError::FifoUnderflow("f".into()))
        );
    }

    #[test]
    fn reduce_accumulates() {
        let mut p = empty_program();
        p.add_dram("out", 1);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc", MemKind::Reg, 1)));
        p.accel.push(SpatialStmt::Reduce {
            id: 0,
            reg: "acc".into(),
            counter: Counter::range_to("i", SExpr::Const(5.0)),
            par: 1,
            body: vec![],
            expr: SExpr::var("i"),
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::RegRead("acc".into()),
        });
        p.assign_ids();
        let mut m = ReferenceMachine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 10.0);
        assert_eq!(m.stats().reduce_elems, 5);
        assert_eq!(m.stats().trips(0), 5);
    }

    #[test]
    fn scan1_visits_set_bits() {
        let p = empty_program();
        let mut m = ReferenceMachine::new(&p);
        m.exec(&SpatialStmt::Alloc(MemDecl::new(
            "bv",
            MemKind::BitVector,
            8,
        )))
        .unwrap();
        m.exec(&SpatialStmt::Alloc(MemDecl::new("crd", MemKind::Fifo, 8)))
            .unwrap();
        for c in [1.0, 4.0, 6.0] {
            m.exec(&SpatialStmt::Enq {
                fifo: "crd".into(),
                value: SExpr::Const(c),
            })
            .unwrap();
        }
        m.exec(&SpatialStmt::GenBitVector {
            dst: "bv".into(),
            src: "crd".into(),
            src_start: SExpr::Const(0.0),
            count: SExpr::Const(3.0),
            dim: SExpr::Const(8.0),
        })
        .unwrap();
        m.exec(&SpatialStmt::Alloc(MemDecl::new("out", MemKind::Sram, 8)))
            .unwrap();
        m.exec(&SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan1 {
                bv: "bv".into(),
                pos_var: "p".into(),
                idx_var: "i".into(),
            },
            par: 1,
            body: vec![SpatialStmt::WriteMem {
                mem: "out".into(),
                index: SExpr::var("p"),
                value: SExpr::var("i"),
                random: false,
            }],
        })
        .unwrap();
        let out = match m.on_chip.get("out") {
            Some(Mem::Words(w)) => w.clone(),
            _ => panic!(),
        };
        assert_eq!(&out[..3], &[1.0, 4.0, 6.0]);
        assert_eq!(m.stats().scan_emits, 3);
        assert_eq!(m.stats().scan_bits, 8);
    }

    /// The worked example of Fig. 7: A crd {1,2,5}, B crd {0,2,3,8},
    /// union produces out crd {0,1,2,3,5,8} with the pattern indices shown
    /// in the figure.
    #[test]
    fn scan2_union_matches_fig7() {
        let p = empty_program();
        let mut m = ReferenceMachine::new(&p);
        for (bv, coords) in [
            ("bvA", vec![1.0, 2.0, 5.0]),
            ("bvB", vec![0.0, 2.0, 3.0, 8.0]),
        ] {
            m.exec(&SpatialStmt::Alloc(MemDecl::new(bv, MemKind::BitVector, 9)))
                .unwrap();
            let fifo = format!("{bv}_crd");
            m.exec(&SpatialStmt::Alloc(MemDecl::new(&fifo, MemKind::Fifo, 9)))
                .unwrap();
            for c in &coords {
                m.exec(&SpatialStmt::Enq {
                    fifo: fifo.clone(),
                    value: SExpr::Const(*c),
                })
                .unwrap();
            }
            m.exec(&SpatialStmt::GenBitVector {
                dst: bv.into(),
                src: fifo,
                src_start: SExpr::Const(0.0),
                count: SExpr::Const(coords.len() as f64),
                dim: SExpr::Const(9.0),
            })
            .unwrap();
        }
        m.exec(&SpatialStmt::Alloc(MemDecl::new(
            "out_crd",
            MemKind::Sram,
            9,
        )))
        .unwrap();
        m.exec(&SpatialStmt::Alloc(MemDecl::new(
            "tuples",
            MemKind::Fifo,
            64,
        )))
        .unwrap();
        m.exec(&SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan2 {
                op: ScanOp::Or,
                bv_a: "bvA".into(),
                bv_b: "bvB".into(),
                a_pos_var: "pA".into(),
                b_pos_var: "pB".into(),
                out_pos_var: "pO".into(),
                idx_var: "i".into(),
            },
            par: 1,
            body: vec![
                SpatialStmt::WriteMem {
                    mem: "out_crd".into(),
                    index: SExpr::var("pO"),
                    value: SExpr::var("i"),
                    random: false,
                },
                SpatialStmt::Enq {
                    fifo: "tuples".into(),
                    value: SExpr::var("pA"),
                },
                SpatialStmt::Enq {
                    fifo: "tuples".into(),
                    value: SExpr::var("pB"),
                },
            ],
        })
        .unwrap();
        let out = match m.on_chip.get("out_crd") {
            Some(Mem::Words(w)) => w.clone(),
            _ => panic!(),
        };
        assert_eq!(&out[..6], &[0.0, 1.0, 2.0, 3.0, 5.0, 8.0]);
        // Pattern indices from Fig. 7 (X rendered as -1):
        // (X,0) (0,X) (1,1) (X,2) (2,X) (X,3) — wait, the figure lists
        // (A,B) pairs per output: (X,0),(0,X),(1,1),(X,2),(2,X),(X,3).
        let tuples = match m.on_chip.get("tuples") {
            Some(Mem::Fifo(q)) => q.iter().copied().collect::<Vec<_>>(),
            _ => panic!(),
        };
        assert_eq!(
            tuples,
            vec![
                -1.0, 0.0, // i=0: only B
                0.0, -1.0, // i=1: only A
                1.0, 1.0, // i=2: both
                -1.0, 2.0, // i=3: only B
                2.0, -1.0, // i=5: only A
                -1.0, 3.0, // i=8: only B
            ]
        );
        assert_eq!(m.stats().scan_emits, 6);
    }

    #[test]
    fn scan2_intersection() {
        let p = empty_program();
        let mut m = ReferenceMachine::new(&p);
        for (bv, coords) in [("bvA", vec![1usize, 2, 5]), ("bvB", vec![0, 2, 5, 7])] {
            m.exec(&SpatialStmt::Alloc(MemDecl::new(bv, MemKind::BitVector, 8)))
                .unwrap();
            match m.on_chip.get_mut(bv) {
                Some(Mem::Bits(b)) => {
                    for &c in &coords {
                        b[c] = true;
                    }
                }
                _ => panic!(),
            }
        }
        let mut emitted = Vec::new();
        m.run_counter(
            &Counter::Scan2 {
                op: ScanOp::And,
                bv_a: "bvA".into(),
                bv_b: "bvB".into(),
                a_pos_var: "pA".into(),
                b_pos_var: "pB".into(),
                out_pos_var: "pO".into(),
                idx_var: "i".into(),
            },
            |m| {
                emitted.push((
                    m.env["pA"] as i64,
                    m.env["pB"] as i64,
                    m.env["pO"] as i64,
                    m.env["i"] as i64,
                ));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(emitted, vec![(1, 1, 0, 2), (2, 2, 1, 5)]);
    }

    #[test]
    fn rmw_add_into_sparse_sram_counts_shuffle() {
        let p = empty_program();
        let mut m = ReferenceMachine::new(&p);
        m.exec(&SpatialStmt::Alloc(MemDecl::new(
            "acc",
            MemKind::SparseSram,
            4,
        )))
        .unwrap();
        m.exec(&SpatialStmt::RmwAdd {
            mem: "acc".into(),
            index: SExpr::Const(2.0),
            value: SExpr::Const(1.5),
        })
        .unwrap();
        m.exec(&SpatialStmt::RmwAdd {
            mem: "acc".into(),
            index: SExpr::Const(2.0),
            value: SExpr::Const(1.0),
        })
        .unwrap();
        assert_eq!(m.eval(&SExpr::read("acc", SExpr::Const(2.0))).unwrap(), 2.5);
        assert_eq!(m.stats().shuffle_accesses, 2);
    }

    #[test]
    fn sparse_dram_random_read() {
        let mut p = empty_program();
        p.add_sparse_dram("x", 8);
        let mut m = ReferenceMachine::new(&p);
        m.write_dram("x", &[0.0, 10.0, 20.0]).unwrap();
        let v = m.eval(&SExpr::read_random("x", SExpr::Const(2.0))).unwrap();
        assert_eq!(v, 20.0);
        assert_eq!(m.stats().dram_random_reads, 1);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut p = empty_program();
        p.add_dram("d", 2);
        let mut m = ReferenceMachine::new(&p);
        let err = m.eval(&SExpr::read("d", SExpr::Const(5.0))).unwrap_err();
        assert!(matches!(err, RunError::OutOfBounds { .. }));
    }

    #[test]
    fn stream_store_drains_fifo() {
        let mut p = empty_program();
        p.add_dram("out", 8);
        let mut m = ReferenceMachine::new(&p);
        m.exec(&SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 8)))
            .unwrap();
        for v in [5.0, 6.0, 7.0] {
            m.exec(&SpatialStmt::Enq {
                fifo: "f".into(),
                value: SExpr::Const(v),
            })
            .unwrap();
        }
        m.exec(&SpatialStmt::StreamStore {
            dst: "out".into(),
            offset: SExpr::Const(2.0),
            fifo: "f".into(),
            len: SExpr::Const(3.0),
        })
        .unwrap();
        assert_eq!(&m.dram("out").unwrap()[2..5], &[5.0, 6.0, 7.0]);
        assert_eq!(m.stats().dram_writes["out"], 3);
    }

    #[test]
    fn nested_foreach_trips_recorded() {
        let mut p = empty_program();
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(3.0)),
            par: 2,
            body: vec![SpatialStmt::Foreach {
                id: 1,
                counter: Counter::range_to("j", SExpr::Const(4.0)),
                par: 1,
                body: vec![],
            }],
        });
        p.assign_ids();
        let mut m = ReferenceMachine::new(&p);
        let stats = m.run(&p).unwrap();
        assert_eq!(stats.trips(0), 3);
        assert_eq!(stats.trips(1), 12);
    }

    #[test]
    fn alloc_in_loop_resets() {
        // A register allocated inside a loop body starts at zero each
        // iteration.
        let mut p = empty_program();
        p.add_dram("out", 4);
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(3.0)),
            par: 1,
            body: vec![
                SpatialStmt::Alloc(MemDecl::new("r", MemKind::Reg, 1)),
                SpatialStmt::SetReg {
                    reg: "r".into(),
                    value: SExpr::add(SExpr::RegRead("r".into()), SExpr::var("i")),
                },
                SpatialStmt::StoreScalar {
                    dst: "out".into(),
                    index: SExpr::var("i"),
                    value: SExpr::RegRead("r".into()),
                },
            ],
        });
        p.assign_ids();
        let mut m = ReferenceMachine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..3], &[0.0, 1.0, 2.0]);
    }
}
