//! The Spatial IR: memories, scalar expressions, counters, and patterns.
//!
//! The constructs here mirror the Spatial subset that Stardust's lowering
//! emits (paper Fig. 9 and Fig. 11): explicit memory declarations across
//! the DRAM/SRAM/FIFO/register hierarchy, counter-indexed `Foreach` /
//! `Reduce` parallel patterns with explicit parallelization factors, bulk
//! loads/stores between memory regions, and the declarative-sparse `Scan`
//! patterns over packed bit vectors that Capstan provides for compressed
//! iteration and co-iteration.

use std::fmt;

/// The physical memory types of the Spatial/Capstan hierarchy that the
/// Stardust memory analysis binds tensor sub-arrays to (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Off-chip DRAM with dense (bulk, streaming) access, host-initialized.
    Dram,
    /// Off-chip DRAM accessed via random single-element requests (no
    /// identifiable working set to bring on-chip).
    SparseDram,
    /// On-chip scratchpad (PMU) with affine access patterns.
    Sram,
    /// On-chip scratchpad with random (data-dependent) accesses and reuse;
    /// served through the shuffle network when accessed across lanes.
    SparseSram,
    /// Streaming FIFO buffer (PMU-backed); strictly in-order.
    Fifo,
    /// A scalar pipeline register.
    Reg,
    /// A packed bit-vector stream holding compressed coordinate
    /// information (Fig. 7).
    BitVector,
}

impl MemKind {
    /// Returns `true` for the off-chip kinds.
    pub fn is_off_chip(self) -> bool {
        matches!(self, MemKind::Dram | MemKind::SparseDram)
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Dram => write!(f, "DRAM"),
            MemKind::SparseDram => write!(f, "SparseDRAM"),
            MemKind::Sram => write!(f, "SRAM"),
            MemKind::SparseSram => write!(f, "SparseSRAM"),
            MemKind::Fifo => write!(f, "FIFO"),
            MemKind::Reg => write!(f, "Reg"),
            MemKind::BitVector => write!(f, "BitVector"),
        }
    }
}

/// A memory declaration (off-chip array or on-chip buffer).
#[derive(Debug, Clone, PartialEq)]
pub struct MemDecl {
    /// Unique name, e.g. `B2_pos` or `B_vals_dram`.
    pub name: String,
    /// Physical memory kind.
    pub kind: MemKind,
    /// Capacity in 32-bit words (bit vectors: capacity in bits).
    pub size: usize,
}

impl MemDecl {
    /// Creates a declaration.
    pub fn new(name: impl Into<String>, kind: MemKind, size: usize) -> Self {
        MemDecl {
            name: name.into(),
            kind,
            size,
        }
    }
}

/// Binary scalar operators available in a PCU stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinSOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division (used for position arithmetic).
    Div,
    /// Remainder (used for position arithmetic of fused loops).
    Mod,
}

impl BinSOp {
    /// Applies the operator.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinSOp::Add => a + b,
            BinSOp::Sub => a - b,
            BinSOp::Mul => a * b,
            BinSOp::Div => {
                debug_assert!(b != 0.0, "division by zero in Spatial expression");
                (a / b).trunc()
            }
            BinSOp::Mod => {
                debug_assert!(b != 0.0, "mod by zero in Spatial expression");
                a - (a / b).trunc() * b
            }
        }
    }
}

impl fmt::Display for BinSOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinSOp::Add => write!(f, "+"),
            BinSOp::Sub => write!(f, "-"),
            BinSOp::Mul => write!(f, "*"),
            BinSOp::Div => write!(f, "/"),
            BinSOp::Mod => write!(f, "%"),
        }
    }
}

/// A scalar expression evaluated inside a pattern body.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// A bound variable (loop counter, `val` binding, or scan index).
    Var(String),
    /// A literal constant.
    Const(f64),
    /// Reads `mem[index]`. `random` marks data-dependent (gather) accesses,
    /// which Capstan serves through the shuffle network when the memory is
    /// a [`MemKind::SparseSram`], or as single-element requests for
    /// [`MemKind::SparseDram`].
    ReadMem {
        /// Memory name (SRAM, SparseSRAM, or SparseDRAM).
        mem: String,
        /// Word index.
        index: Box<SExpr>,
        /// Whether the access pattern is data-dependent.
        random: bool,
    },
    /// Dequeues one element from a FIFO (consumed exactly once per
    /// innermost iteration).
    Deq(String),
    /// Reads a register.
    RegRead(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinSOp,
        /// Left operand.
        lhs: Box<SExpr>,
        /// Right operand.
        rhs: Box<SExpr>,
    },
    /// Negation.
    Neg(Box<SExpr>),
    /// `if cond != 0 { if_true } else { if_false }` — used for union
    /// co-iteration where one side may be absent (Fig. 7's `X` entries).
    Select {
        /// Condition (nonzero = true).
        cond: Box<SExpr>,
        /// Value when the condition holds.
        if_true: Box<SExpr>,
        /// Value otherwise.
        if_false: Box<SExpr>,
    },
}

impl SExpr {
    /// Variable reference.
    pub fn var(name: impl Into<String>) -> SExpr {
        SExpr::Var(name.into())
    }

    /// Affine (streamed) memory read.
    pub fn read(mem: impl Into<String>, index: SExpr) -> SExpr {
        SExpr::ReadMem {
            mem: mem.into(),
            index: Box::new(index),
            random: false,
        }
    }

    /// Random-access (gather) memory read.
    pub fn read_random(mem: impl Into<String>, index: SExpr) -> SExpr {
        SExpr::ReadMem {
            mem: mem.into(),
            index: Box::new(index),
            random: true,
        }
    }

    /// `lhs op rhs`.
    pub fn bin(op: BinSOp, lhs: SExpr, rhs: SExpr) -> SExpr {
        SExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: SExpr, rhs: SExpr) -> SExpr {
        SExpr::bin(BinSOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: SExpr, rhs: SExpr) -> SExpr {
        SExpr::bin(BinSOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: SExpr, rhs: SExpr) -> SExpr {
        SExpr::bin(BinSOp::Mul, lhs, rhs)
    }

    /// Selection between two values.
    pub fn select(cond: SExpr, if_true: SExpr, if_false: SExpr) -> SExpr {
        SExpr::Select {
            cond: Box::new(cond),
            if_true: Box::new(if_true),
            if_false: Box::new(if_false),
        }
    }

    /// Counts ALU operations in this expression (one per binary op, neg, or
    /// select) — the input to PCU stage packing.
    pub fn alu_ops(&self) -> usize {
        match self {
            SExpr::Var(_) | SExpr::Const(_) | SExpr::RegRead(_) | SExpr::Deq(_) => 0,
            SExpr::ReadMem { index, .. } => index.alu_ops(),
            SExpr::Neg(e) => 1 + e.alu_ops(),
            SExpr::Binary { lhs, rhs, .. } => 1 + lhs.alu_ops() + rhs.alu_ops(),
            SExpr::Select {
                cond,
                if_true,
                if_false,
            } => 1 + cond.alu_ops() + if_true.alu_ops() + if_false.alu_ops(),
        }
    }

    /// Visits every memory read in the expression.
    pub fn visit_reads<'a>(&'a self, f: &mut impl FnMut(&'a str, bool)) {
        match self {
            SExpr::Var(_) | SExpr::Const(_) | SExpr::RegRead(_) => {}
            SExpr::Deq(fifo) => f(fifo, false),
            SExpr::ReadMem { mem, index, random } => {
                f(mem, *random);
                index.visit_reads(f);
            }
            SExpr::Neg(e) => e.visit_reads(f),
            SExpr::Binary { lhs, rhs, .. } => {
                lhs.visit_reads(f);
                rhs.visit_reads(f);
            }
            SExpr::Select {
                cond,
                if_true,
                if_false,
            } => {
                cond.visit_reads(f);
                if_true.visit_reads(f);
                if_false.visit_reads(f);
            }
        }
    }
}

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Var(v) => write!(f, "{v}"),
            SExpr::Const(c) => {
                if c.fract() == 0.0 && c.abs() < 1e15 {
                    write!(f, "{}", *c as i64)
                } else {
                    write!(f, "{c}")
                }
            }
            SExpr::ReadMem { mem, index, .. } => write!(f, "{mem}({index})"),
            SExpr::Deq(fifo) => write!(f, "{fifo}.deq"),
            SExpr::RegRead(r) => write!(f, "{r}"),
            SExpr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            SExpr::Neg(e) => write!(f, "(-{e})"),
            SExpr::Select {
                cond,
                if_true,
                if_false,
            } => write!(f, "mux({cond}, {if_true}, {if_false})"),
        }
    }
}

/// Bit-vector combination mode of a two-input scanner (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanOp {
    /// Logical AND: intersection (multiplication).
    And,
    /// Logical OR: union (addition).
    Or,
}

impl fmt::Display for ScanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanOp::And => write!(f, "and"),
            ScanOp::Or => write!(f, "or"),
        }
    }
}

/// The counter of a `Foreach`/`Reduce` pattern: dense range, single
/// bit-vector scan, or two-input co-iteration scan (Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub enum Counter {
    /// `min until max by step` with a counter variable — uncompressed
    /// iteration.
    Range {
        /// Bound loop variable.
        var: String,
        /// Inclusive lower bound.
        min: SExpr,
        /// Exclusive upper bound.
        max: SExpr,
        /// Step (usually 1).
        step: i64,
    },
    /// `Scan(par, len, bv.deq)`: iterate the set bits of one bit vector,
    /// binding the running position and the dense index.
    Scan1 {
        /// The scanned bit vector.
        bv: String,
        /// Bound variable: position among set bits (0, 1, 2, ...).
        pos_var: String,
        /// Bound variable: the dense coordinate of the set bit.
        idx_var: String,
    },
    /// `Scan(par, len, bvA.deq, bvB.deq)`: co-iterate two bit vectors under
    /// AND/OR, binding per-operand positions (−1 when absent, Fig. 7's `X`),
    /// the output position, and the dense coordinate.
    Scan2 {
        /// Combination operator.
        op: ScanOp,
        /// First bit vector.
        bv_a: String,
        /// Second bit vector.
        bv_b: String,
        /// Bound: position within A's set bits, −1 if A lacks the bit.
        a_pos_var: String,
        /// Bound: position within B's set bits, −1 if B lacks the bit.
        b_pos_var: String,
        /// Bound: position within the combined output.
        out_pos_var: String,
        /// Bound: dense coordinate.
        idx_var: String,
    },
}

impl Counter {
    /// Convenience constructor for `0 until max by 1`.
    pub fn range_to(var: impl Into<String>, max: SExpr) -> Counter {
        Counter::Range {
            var: var.into(),
            min: SExpr::Const(0.0),
            max,
            step: 1,
        }
    }

    /// The variables this counter binds in its body.
    pub fn bound_vars(&self) -> Vec<&str> {
        match self {
            Counter::Range { var, .. } => vec![var],
            Counter::Scan1 {
                pos_var, idx_var, ..
            } => vec![pos_var, idx_var],
            Counter::Scan2 {
                a_pos_var,
                b_pos_var,
                out_pos_var,
                idx_var,
                ..
            } => vec![a_pos_var, b_pos_var, out_pos_var, idx_var],
        }
    }
}

/// A statement of the Accel block.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialStmt {
    /// On-chip memory allocation (SRAM/SparseSRAM/FIFO/Reg/BitVector); the
    /// allocation is scoped to the enclosing pattern body iteration.
    Alloc(MemDecl),
    /// Bulk load `dst load src(start::end par p)` from DRAM into an on-chip
    /// memory (SRAM or FIFO).
    Load {
        /// Destination on-chip memory.
        dst: String,
        /// Source DRAM array.
        src: String,
        /// First word index.
        start: SExpr,
        /// One-past-last word index.
        end: SExpr,
        /// Load parallelization factor.
        par: usize,
    },
    /// Bulk store from an on-chip SRAM into DRAM.
    Store {
        /// Destination DRAM array.
        dst: String,
        /// Word offset into the destination.
        offset: SExpr,
        /// Source SRAM.
        src: String,
        /// Number of words.
        len: SExpr,
        /// Store parallelization factor.
        par: usize,
    },
    /// `dram stream_store_vec(offset, fifo, len)`: drain a FIFO to DRAM
    /// (Fig. 11, line 42).
    StreamStore {
        /// Destination DRAM array.
        dst: String,
        /// Word offset.
        offset: SExpr,
        /// Source FIFO.
        fifo: String,
        /// Number of elements to drain.
        len: SExpr,
    },
    /// Single-element DRAM write (`dram(i) = v`), a random store.
    StoreScalar {
        /// Destination DRAM array.
        dst: String,
        /// Word index.
        index: SExpr,
        /// Stored value.
        value: SExpr,
    },
    /// `val var = expr` binding.
    Bind {
        /// Bound name.
        var: String,
        /// Bound value.
        value: SExpr,
    },
    /// `Foreach(counter par p) { body }`.
    Foreach {
        /// Unique node id (assigned by [`SpatialProgram::assign_ids`]).
        id: usize,
        /// Iteration space.
        counter: Counter,
        /// Parallelization factor.
        par: usize,
        /// Body statements.
        body: Vec<SpatialStmt>,
    },
    /// `Reduce(reg)(counter par p) { expr } { _ + _ }` — maps to Capstan's
    /// PCU reduction tree. Body statements (binds, deqs) run per iteration
    /// before `expr` is accumulated into `reg`.
    Reduce {
        /// Unique node id.
        id: usize,
        /// Accumulator register.
        reg: String,
        /// Iteration space.
        counter: Counter,
        /// Parallelization factor.
        par: usize,
        /// Per-iteration setup statements.
        body: Vec<SpatialStmt>,
        /// The reduced expression.
        expr: SExpr,
    },
    /// Write to an on-chip memory: `mem(index) = value`.
    WriteMem {
        /// Destination memory.
        mem: String,
        /// Word index.
        index: SExpr,
        /// Stored value.
        value: SExpr,
        /// Whether the access is data-dependent (scatter).
        random: bool,
    },
    /// Atomic read-modify-write add: `mem(index) += value` (Capstan's
    /// on-chip memory atomics).
    RmwAdd {
        /// Destination memory.
        mem: String,
        /// Word index.
        index: SExpr,
        /// Added value.
        value: SExpr,
    },
    /// Write a register.
    SetReg {
        /// Register name.
        reg: String,
        /// Stored value.
        value: SExpr,
    },
    /// Enqueue into a FIFO.
    Enq {
        /// Destination FIFO.
        fifo: String,
        /// Enqueued value.
        value: SExpr,
    },
    /// Generate a packed bit vector from a stream of coordinates
    /// (`Gen BV` in Fig. 7). Reads `count` coordinates from `src` (a FIFO
    /// or SRAM starting at `src_start`) and sets those bits.
    GenBitVector {
        /// Destination bit vector.
        dst: String,
        /// Source memory holding coordinates.
        src: String,
        /// Starting word within `src` (ignored for FIFOs).
        src_start: SExpr,
        /// Number of coordinates.
        count: SExpr,
        /// Bit-vector length (the dimension size).
        dim: SExpr,
    },
    /// A free-form comment carried into printed output.
    Comment(String),
}

impl SpatialStmt {
    /// Visits this statement and all nested statements, pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SpatialStmt)) {
        f(self);
        match self {
            SpatialStmt::Foreach { body, .. } | SpatialStmt::Reduce { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }
}

/// A complete Spatial program: host-visible DRAM declarations, global
/// configuration constants (from `environment`), and the Accel block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpatialProgram {
    /// Kernel name (e.g. `sddmm`).
    pub name: String,
    /// Global configuration constants (`innerPar`, `outerPar`, ...).
    pub consts: Vec<(String, i64)>,
    /// Off-chip arrays, initialized by the host.
    pub drams: Vec<MemDecl>,
    /// The Accel block body.
    pub accel: Vec<SpatialStmt>,
}

impl SpatialProgram {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        SpatialProgram {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares a DRAM array.
    pub fn add_dram(&mut self, name: impl Into<String>, size: usize) {
        self.drams.push(MemDecl::new(name, MemKind::Dram, size));
    }

    /// Declares a randomly accessed DRAM array.
    pub fn add_sparse_dram(&mut self, name: impl Into<String>, size: usize) {
        self.drams
            .push(MemDecl::new(name, MemKind::SparseDram, size));
    }

    /// Declares a configuration constant.
    pub fn add_const(&mut self, name: impl Into<String>, value: i64) {
        self.consts.push((name.into(), value));
    }

    /// Looks up a configuration constant.
    pub fn config(&self, name: &str) -> Option<i64> {
        self.consts
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Assigns unique ids to every `Foreach`/`Reduce` node (stable
    /// pre-order numbering). Call once after construction.
    pub fn assign_ids(&mut self) {
        let mut next = 0usize;
        fn go(stmts: &mut [SpatialStmt], next: &mut usize) {
            for s in stmts {
                match s {
                    SpatialStmt::Foreach { id, body, .. } => {
                        *id = *next;
                        *next += 1;
                        go(body, next);
                    }
                    SpatialStmt::Reduce { id, body, .. } => {
                        *id = *next;
                        *next += 1;
                        go(body, next);
                    }
                    _ => {}
                }
            }
        }
        go(&mut self.accel, &mut next);
    }

    /// Visits every statement in the Accel block, pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SpatialStmt)) {
        for s in &self.accel {
            s.visit(f);
        }
    }

    /// Total number of `Foreach`/`Reduce` pattern nodes.
    pub fn pattern_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if matches!(s, SpatialStmt::Foreach { .. } | SpatialStmt::Reduce { .. }) {
                n += 1;
            }
        });
        n
    }

    /// All on-chip allocations in the program.
    pub fn on_chip_allocs(&self) -> Vec<&MemDecl> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if let SpatialStmt::Alloc(d) = s {
                out.push(d);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sexpr_builders_and_ops() {
        let e = SExpr::mul(
            SExpr::add(SExpr::var("a"), SExpr::Const(2.0)),
            SExpr::var("b"),
        );
        assert_eq!(e.alu_ops(), 2);
        assert_eq!(e.to_string(), "((a + 2) * b)");
    }

    #[test]
    fn binsop_apply() {
        assert_eq!(BinSOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinSOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinSOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinSOp::Div.apply(7.0, 2.0), 3.0);
        assert_eq!(BinSOp::Mod.apply(7.0, 2.0), 1.0);
    }

    #[test]
    fn select_counts_ops_and_prints() {
        let e = SExpr::select(SExpr::var("has"), SExpr::var("x"), SExpr::Const(0.0));
        assert_eq!(e.alu_ops(), 1);
        assert_eq!(e.to_string(), "mux(has, x, 0)");
    }

    #[test]
    fn visit_reads_finds_gathers() {
        let e = SExpr::mul(
            SExpr::read("C_vals", SExpr::var("k")),
            SExpr::read_random("x_vals", SExpr::var("j")),
        );
        let mut reads = Vec::new();
        e.visit_reads(&mut |m, r| reads.push((m.to_string(), r)));
        assert_eq!(
            reads,
            vec![("C_vals".to_string(), false), ("x_vals".to_string(), true)]
        );
    }

    #[test]
    fn counter_bound_vars() {
        let c = Counter::range_to("i", SExpr::Const(4.0));
        assert_eq!(c.bound_vars(), vec!["i"]);
        let s = Counter::Scan2 {
            op: ScanOp::Or,
            bv_a: "bvA".into(),
            bv_b: "bvB".into(),
            a_pos_var: "pA".into(),
            b_pos_var: "pB".into(),
            out_pos_var: "pO".into(),
            idx_var: "j".into(),
        };
        assert_eq!(s.bound_vars(), vec!["pA", "pB", "pO", "j"]);
    }

    #[test]
    fn program_ids_are_preorder() {
        let mut p = SpatialProgram::new("t");
        p.accel.push(SpatialStmt::Foreach {
            id: 99,
            counter: Counter::range_to("i", SExpr::Const(2.0)),
            par: 1,
            body: vec![SpatialStmt::Reduce {
                id: 99,
                reg: "r".into(),
                counter: Counter::range_to("j", SExpr::Const(2.0)),
                par: 1,
                body: vec![],
                expr: SExpr::Const(1.0),
            }],
        });
        p.assign_ids();
        let mut ids = Vec::new();
        p.visit(&mut |s| match s {
            SpatialStmt::Foreach { id, .. } | SpatialStmt::Reduce { id, .. } => ids.push(*id),
            _ => {}
        });
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(p.pattern_count(), 2);
    }

    #[test]
    fn config_last_binding_wins() {
        let mut p = SpatialProgram::new("t");
        p.add_const("ip", 16);
        p.add_const("ip", 8);
        assert_eq!(p.config("ip"), Some(8));
        assert_eq!(p.config("op"), None);
    }

    #[test]
    fn memkind_display_and_offchip() {
        assert!(MemKind::Dram.is_off_chip());
        assert!(MemKind::SparseDram.is_off_chip());
        assert!(!MemKind::Sram.is_off_chip());
        assert_eq!(MemKind::Fifo.to_string(), "FIFO");
        assert_eq!(MemKind::BitVector.to_string(), "BitVector");
    }

    #[test]
    fn on_chip_allocs_collected() {
        let mut p = SpatialProgram::new("t");
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("b", MemKind::Sram, 64)));
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(2.0)),
            par: 1,
            body: vec![SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 16))],
        });
        let names: Vec<_> = p.on_chip_allocs().iter().map(|d| d.name.clone()).collect();
        assert_eq!(names, vec!["b", "f"]);
    }
}
