//! The resolution ("link") pass: from names to dense slots.
//!
//! A [`crate::SpatialProgram`] refers to every memory, register, FIFO,
//! and loop variable by `String` name. Executing that form directly means
//! a `HashMap<String, _>` probe — hashing the name — for *every* variable
//! read, memory access, and statistics bump in the hot interpreter loop.
//! TACO-lineage compilers get their speed precisely by resolving symbolic
//! names to dense offsets before entering the kernel; this module does
//! the same for the Spatial interpreter.
//!
//! [`resolve`] interns every name into one of three dense `u32` slot
//! namespaces held by a [`SymbolTable`]:
//!
//! - **DRAM slots** for off-chip arrays (declaration order first, so the
//!   slot of the `n`-th declared DRAM is `n`),
//! - **chip slots** for on-chip memories (SRAM, SparseSRAM, FIFO,
//!   registers, bit vectors),
//! - **var slots** for `val` bindings and counter-bound variables.
//!
//! Every [`crate::SExpr`] tree is compiled into a flat, arena-allocated
//! [`ResolvedExpr`] form whose children are `u32` indices into one
//! per-program arena, and every statement becomes a [`ResolvedStmt`]
//! carrying pre-computed slot ids. The executing [`crate::Machine`] then
//! replaces all of its name-keyed maps with `Vec`-indexed state, and the
//! interpreter's inner loop never hashes a string.
//!
//! Resolution is *total*: names that are referenced but never declared
//! still get slots, and the error the old engine raised at touch time
//! (`UnknownMemory`) is reproduced at runtime when the slot's state is
//! found unallocated. This keeps the pass infallible and the runtime
//! semantics byte-identical to [`crate::ReferenceMachine`].

use std::collections::HashMap;

use crate::ir::{BinSOp, Counter, MemKind, SExpr, ScanOp, SpatialProgram, SpatialStmt};

/// Index of a node in a [`ResolvedProgram`]'s expression arena.
pub type ExprId = u32;

/// A dense id in one of the three slot namespaces.
pub type Slot = u32;

/// Interner mapping names to dense slots, with reverse lookup for error
/// reporting.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    dram_ids: HashMap<String, Slot>,
    dram_names: Vec<String>,
    chip_ids: HashMap<String, Slot>,
    chip_names: Vec<String>,
    var_ids: HashMap<String, Slot>,
    var_names: Vec<String>,
}

fn intern(ids: &mut HashMap<String, Slot>, names: &mut Vec<String>, name: &str) -> Slot {
    if let Some(&s) = ids.get(name) {
        return s;
    }
    let slot = names.len() as Slot;
    names.push(name.to_string());
    ids.insert(name.to_string(), slot);
    slot
}

impl SymbolTable {
    /// Interns a DRAM array name.
    pub fn dram(&mut self, name: &str) -> Slot {
        intern(&mut self.dram_ids, &mut self.dram_names, name)
    }

    /// Interns an on-chip memory name.
    pub fn chip(&mut self, name: &str) -> Slot {
        intern(&mut self.chip_ids, &mut self.chip_names, name)
    }

    /// Interns a variable name.
    pub fn var(&mut self, name: &str) -> Slot {
        intern(&mut self.var_ids, &mut self.var_names, name)
    }

    /// Looks up an already-interned DRAM name.
    pub fn dram_slot(&self, name: &str) -> Option<Slot> {
        self.dram_ids.get(name).copied()
    }

    /// The name behind a DRAM slot.
    pub fn dram_name(&self, slot: Slot) -> &str {
        &self.dram_names[slot as usize]
    }

    /// The name behind a chip slot.
    pub fn chip_name(&self, slot: Slot) -> &str {
        &self.chip_names[slot as usize]
    }

    /// The name behind a variable slot.
    pub fn var_name(&self, slot: Slot) -> &str {
        &self.var_names[slot as usize]
    }

    /// Number of interned DRAM names.
    pub fn dram_count(&self) -> usize {
        self.dram_names.len()
    }

    /// Number of interned on-chip names.
    pub fn chip_count(&self) -> usize {
        self.chip_names.len()
    }

    /// Number of interned variable names.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }
}

/// A scalar expression with all names resolved to slots and all children
/// resolved to arena indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResolvedExpr {
    /// A literal constant.
    Const(f64),
    /// A bound variable.
    Var(Slot),
    /// A register read.
    RegRead(Slot),
    /// A FIFO dequeue.
    Deq(Slot),
    /// `mem[index]`, carrying both possible resolutions of the name: the
    /// on-chip slot (checked first, as the engine does) and the DRAM slot
    /// (the SparseDRAM random-read fallback).
    ReadMem {
        /// On-chip slot of the name.
        chip: Slot,
        /// DRAM slot of the same name.
        dram: Slot,
        /// Word index expression.
        index: ExprId,
        /// Whether the access is data-dependent.
        random: bool,
    },
    /// Negation.
    Neg(ExprId),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinSOp,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
    },
    /// Two-way mux.
    Select {
        /// Condition (nonzero = true).
        cond: ExprId,
        /// Value when the condition holds.
        if_true: ExprId,
        /// Value otherwise.
        if_false: ExprId,
    },
}

/// A counter with resolved slots.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedCounter {
    /// Dense `min until max by step`.
    Range {
        /// Bound loop variable slot.
        var: Slot,
        /// Inclusive lower bound.
        min: ExprId,
        /// Exclusive upper bound.
        max: ExprId,
        /// Step.
        step: i64,
    },
    /// Single bit-vector scan.
    Scan1 {
        /// Scanned bit vector (chip slot).
        bv: Slot,
        /// Position variable slot.
        pos_var: Slot,
        /// Dense-index variable slot.
        idx_var: Slot,
    },
    /// Two-input co-iteration scan.
    Scan2 {
        /// Combination operator.
        op: ScanOp,
        /// First bit vector (chip slot).
        bv_a: Slot,
        /// Second bit vector (chip slot).
        bv_b: Slot,
        /// A-position variable slot.
        a_pos_var: Slot,
        /// B-position variable slot.
        b_pos_var: Slot,
        /// Output-position variable slot.
        out_pos_var: Slot,
        /// Dense-index variable slot.
        idx_var: Slot,
    },
}

/// A statement with all names resolved to slots and all expressions
/// compiled into the arena.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedStmt {
    /// On-chip allocation. Off-chip kinds are kept so the runtime can
    /// reproduce the engine's `UnknownMemory` rejection of DRAM allocs
    /// inside `Accel`.
    Alloc {
        /// Chip slot being allocated.
        slot: Slot,
        /// Declared kind.
        kind: MemKind,
        /// Capacity in words (bits for bit vectors).
        size: usize,
    },
    /// `val var = expr`.
    Bind {
        /// Bound variable slot.
        var: Slot,
        /// Value expression.
        value: ExprId,
    },
    /// Bulk DRAM → on-chip load.
    Load {
        /// Destination chip slot.
        dst: Slot,
        /// Source DRAM slot.
        src: Slot,
        /// First word index.
        start: ExprId,
        /// One-past-last word index.
        end: ExprId,
    },
    /// Bulk on-chip → DRAM store.
    Store {
        /// Destination DRAM slot.
        dst: Slot,
        /// Word offset into the destination.
        offset: ExprId,
        /// Source chip slot.
        src: Slot,
        /// Number of words.
        len: ExprId,
    },
    /// FIFO → DRAM drain.
    StreamStore {
        /// Destination DRAM slot.
        dst: Slot,
        /// Word offset.
        offset: ExprId,
        /// Source FIFO chip slot.
        fifo: Slot,
        /// Number of elements.
        len: ExprId,
    },
    /// Single-element DRAM write.
    StoreScalar {
        /// Destination DRAM slot.
        dst: Slot,
        /// Word index.
        index: ExprId,
        /// Stored value.
        value: ExprId,
    },
    /// On-chip write.
    WriteMem {
        /// Destination chip slot.
        mem: Slot,
        /// Word index.
        index: ExprId,
        /// Stored value.
        value: ExprId,
        /// Whether the access is data-dependent.
        random: bool,
    },
    /// On-chip atomic add.
    RmwAdd {
        /// Destination chip slot.
        mem: Slot,
        /// Word index.
        index: ExprId,
        /// Added value.
        value: ExprId,
    },
    /// Register write.
    SetReg {
        /// Register chip slot.
        reg: Slot,
        /// Stored value.
        value: ExprId,
    },
    /// FIFO enqueue.
    Enq {
        /// Destination FIFO chip slot.
        fifo: Slot,
        /// Enqueued value.
        value: ExprId,
    },
    /// Bit-vector generation from a coordinate stream.
    GenBitVector {
        /// Destination bit-vector chip slot.
        dst: Slot,
        /// Source chip slot (FIFO or SRAM).
        src: Slot,
        /// Starting word within `src`.
        src_start: ExprId,
        /// Number of coordinates.
        count: ExprId,
        /// Bit-vector length.
        dim: ExprId,
    },
    /// Counter-driven loop.
    Foreach {
        /// Pattern node id (for trip statistics).
        id: usize,
        /// Iteration space.
        counter: ResolvedCounter,
        /// Body statements.
        body: Vec<ResolvedStmt>,
    },
    /// Counter-driven reduction into a register.
    Reduce {
        /// Pattern node id.
        id: usize,
        /// Accumulator register chip slot.
        reg: Slot,
        /// Iteration space.
        counter: ResolvedCounter,
        /// Per-iteration setup statements.
        body: Vec<ResolvedStmt>,
        /// The reduced expression.
        expr: ExprId,
    },
}

/// A resolved DRAM declaration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedDram {
    /// DRAM slot (equals declaration index for a fresh symbol table).
    pub slot: Slot,
    /// Memory kind (`Dram` or `SparseDram`).
    pub kind: MemKind,
    /// Capacity in words.
    pub size: usize,
}

/// Static arena region of one on-chip slot: where the slot's storage
/// lives inside the machine's flat word arena (`f64` words: SRAM,
/// FIFO rings, registers) and flat bitset arena (`u64` words holding
/// packed bit vectors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChipRegion {
    /// First word of the slot's region in the word arena.
    pub word_off: usize,
    /// Reserved words: the largest `Alloc` the program performs on the
    /// slot (1 for registers, at least 1 for FIFO rings).
    pub word_cap: usize,
    /// First `u64` of the slot's region in the bitset arena.
    pub bit_off: usize,
    /// Reserved `u64` words, covering the largest bit-vector `Alloc`.
    pub bit_words: usize,
}

/// The static on-chip memory layout of a program: one region per chip
/// slot, packed into two flat arenas. The executing machine allocates
/// both arenas once at bind time; `Alloc` statements then reduce to
/// resetting a pre-assigned region — no per-slot heap allocation on
/// the hot path. Slots the program never allocates get empty regions
/// (the runtime reproduces the `UnknownMemory` error at touch time),
/// and dynamic growth past a region's extent (FIFO overflow,
/// `GenBitVector` beyond the declared dimension) relocates the slot to
/// the end of the arena at runtime.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArenaLayout {
    /// Region per chip slot, indexed by slot id.
    pub chips: Vec<ChipRegion>,
    /// Total word-arena length in `f64` words.
    pub words: usize,
    /// Total bitset-arena length in `u64` words.
    pub bit_words: usize,
}

/// Number of `u64` words needed to hold `bits` packed bits.
#[inline]
pub const fn bit_words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

impl ArenaLayout {
    /// Computes the layout for all `Alloc` statements in `body`,
    /// covering `chip_count` slots. Each slot's word/bit extents are
    /// the maxima over every `Alloc` targeting it (one name may be
    /// re-allocated with different sizes or even kinds).
    fn compute(body: &[ResolvedStmt], chip_count: usize) -> ArenaLayout {
        let mut word_need = vec![0usize; chip_count];
        let mut bit_need = vec![0usize; chip_count];
        fn scan(stmts: &[ResolvedStmt], word_need: &mut [usize], bit_need: &mut [usize]) {
            for s in stmts {
                match s {
                    ResolvedStmt::Alloc { slot, kind, size } => {
                        let slot = *slot as usize;
                        match kind {
                            MemKind::Sram | MemKind::SparseSram => {
                                word_need[slot] = word_need[slot].max(*size);
                            }
                            // A FIFO ring needs at least one word so the
                            // wrap arithmetic is well-defined; declared
                            // capacity is only a reservation (the queue
                            // itself is unbounded and grows by
                            // relocation).
                            MemKind::Fifo => {
                                word_need[slot] = word_need[slot].max((*size).max(1));
                            }
                            MemKind::Reg => {
                                word_need[slot] = word_need[slot].max(1);
                            }
                            MemKind::BitVector => {
                                bit_need[slot] = bit_need[slot].max(bit_words_for(*size));
                            }
                            // Rejected at runtime; no on-chip storage.
                            MemKind::Dram | MemKind::SparseDram => {}
                        }
                    }
                    ResolvedStmt::Foreach { body, .. } | ResolvedStmt::Reduce { body, .. } => {
                        scan(body, word_need, bit_need);
                    }
                    _ => {}
                }
            }
        }
        scan(body, &mut word_need, &mut bit_need);
        let mut layout = ArenaLayout {
            chips: Vec::with_capacity(chip_count),
            words: 0,
            bit_words: 0,
        };
        for slot in 0..chip_count {
            let region = ChipRegion {
                word_off: layout.words,
                // Round every word region up to a whole vector chunk
                // (crate::vector::LANES). With all regions starting on
                // a lane boundary, the vector tier's whole-lane loads
                // and stores on the flat arena are uniformly aligned
                // relative to the arena start, and a chunked read never
                // spills into the next slot's region.
                word_cap: word_need[slot].next_multiple_of(crate::vector::LANES),
                bit_off: layout.bit_words,
                bit_words: bit_need[slot],
            };
            layout.words += region.word_cap;
            layout.bit_words += region.bit_words;
            layout.chips.push(region);
        }
        layout
    }
}

/// Static placement of one DRAM slot inside the machine's flat DRAM
/// arena. The arena is split into two segments: a read-only **input**
/// prefix holding every declared array the program never writes
/// (shareable across machines behind an `Arc`, copy-on-write), and an
/// **output** suffix holding every array targeted by a `Store`,
/// `StreamStore`, or `StoreScalar` (owned per machine, zero-filled at
/// bind time). `offset` is relative to the start of the region's
/// segment, not the whole arena.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramRegion {
    /// Whether the program declares this slot (referenced-but-undeclared
    /// slots stay unmapped and reproduce `UnknownMemory` at touch time).
    pub mapped: bool,
    /// Whether the program writes this slot (output-segment residency).
    pub written: bool,
    /// Declared memory kind (`Dram` or `SparseDram`).
    pub kind: MemKind,
    /// First word of the region within its segment.
    pub offset: usize,
    /// Declared capacity in words.
    pub size: usize,
}

impl DramRegion {
    /// The region of a referenced-but-undeclared DRAM slot.
    pub const UNMAPPED: DramRegion = DramRegion {
        mapped: false,
        written: false,
        kind: MemKind::Dram,
        offset: 0,
        size: 0,
    };
}

/// The static DRAM layout of a program: one [`DramRegion`] per DRAM
/// slot, packed into an input segment (read-only prefix) and an output
/// segment (written suffix). Computed once at link time so binding a
/// dataset never resolves a name or decides placement at runtime.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DramLayout {
    /// Region per DRAM slot, indexed by slot id.
    pub drams: Vec<DramRegion>,
    /// Total words of the read-only input segment.
    pub input_words: usize,
    /// Total words of the written output segment.
    pub output_words: usize,
}

impl DramLayout {
    /// Computes the layout: declaration sizes/kinds (last declaration of
    /// a name wins, matching machine construction), written-slot
    /// classification from the statement tree, and packed per-segment
    /// offsets in slot order.
    fn compute(drams: &[ResolvedDram], body: &[ResolvedStmt], dram_count: usize) -> DramLayout {
        let mut regions = vec![DramRegion::UNMAPPED; dram_count];
        for d in drams {
            let r = &mut regions[d.slot as usize];
            r.mapped = true;
            r.kind = d.kind;
            r.size = d.size;
        }
        fn scan(stmts: &[ResolvedStmt], written: &mut [bool]) {
            for s in stmts {
                match s {
                    ResolvedStmt::Store { dst, .. }
                    | ResolvedStmt::StreamStore { dst, .. }
                    | ResolvedStmt::StoreScalar { dst, .. } => written[*dst as usize] = true,
                    ResolvedStmt::Foreach { body, .. } | ResolvedStmt::Reduce { body, .. } => {
                        scan(body, written);
                    }
                    _ => {}
                }
            }
        }
        let mut written = vec![false; dram_count];
        scan(body, &mut written);
        let mut layout = DramLayout {
            drams: Vec::new(),
            input_words: 0,
            output_words: 0,
        };
        for (slot, r) in regions.iter_mut().enumerate() {
            r.written = written[slot];
            if r.mapped {
                if r.written {
                    r.offset = layout.output_words;
                    layout.output_words += r.size;
                } else {
                    r.offset = layout.input_words;
                    layout.input_words += r.size;
                }
            }
        }
        layout.drams = regions;
        layout
    }
}

/// A fully linked program: slot-resolved statements over a flat
/// expression arena.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResolvedProgram {
    /// Off-chip declarations in program order.
    pub drams: Vec<ResolvedDram>,
    /// The Accel block body.
    pub body: Vec<ResolvedStmt>,
    /// The expression arena; children of [`ResolvedExpr`] index into it.
    pub exprs: Vec<ResolvedExpr>,
    /// One past the largest `Foreach`/`Reduce` node id (sizes the dense
    /// per-node statistics vectors).
    pub node_limit: usize,
    /// Static offsets/extents of every on-chip memory inside the
    /// machine's flat arenas.
    pub layout: ArenaLayout,
    /// Static placement of every DRAM array inside the machine's flat
    /// DRAM arena (read-only input prefix, written output suffix).
    pub dram_layout: DramLayout,
}

impl ResolvedProgram {
    /// The expression behind an arena id.
    #[inline]
    pub fn expr(&self, id: ExprId) -> ResolvedExpr {
        self.exprs[id as usize]
    }
}

/// Resolves a program against (and extending) the given symbol table.
///
/// The table may already hold slots from a previous resolution against
/// the same machine; new names are appended, so existing slots stay
/// valid and machine state survives re-linking.
pub fn resolve(program: &SpatialProgram, syms: &mut SymbolTable) -> ResolvedProgram {
    let mut out = ResolvedProgram::default();
    for d in &program.drams {
        out.drams.push(ResolvedDram {
            slot: syms.dram(&d.name),
            kind: d.kind,
            size: d.size,
        });
    }
    let mut r = Resolver {
        syms,
        exprs: &mut out.exprs,
        node_limit: 0,
    };
    out.body = program.accel.iter().filter_map(|s| r.stmt(s)).collect();
    out.node_limit = r.node_limit;
    out.layout = ArenaLayout::compute(&out.body, syms.chip_count());
    out.dram_layout = DramLayout::compute(&out.drams, &out.body, syms.dram_count());
    out
}

struct Resolver<'a> {
    syms: &'a mut SymbolTable,
    exprs: &'a mut Vec<ResolvedExpr>,
    node_limit: usize,
}

impl Resolver<'_> {
    fn push(&mut self, e: ResolvedExpr) -> ExprId {
        let id = self.exprs.len() as ExprId;
        self.exprs.push(e);
        id
    }

    fn expr(&mut self, e: &SExpr) -> ExprId {
        let resolved = match e {
            SExpr::Const(c) => ResolvedExpr::Const(*c),
            SExpr::Var(v) => ResolvedExpr::Var(self.syms.var(v)),
            SExpr::RegRead(r) => ResolvedExpr::RegRead(self.syms.chip(r)),
            SExpr::Deq(f) => ResolvedExpr::Deq(self.syms.chip(f)),
            SExpr::ReadMem { mem, index, random } => {
                let index = self.expr(index);
                ResolvedExpr::ReadMem {
                    chip: self.syms.chip(mem),
                    dram: self.syms.dram(mem),
                    index,
                    random: *random,
                }
            }
            SExpr::Neg(inner) => {
                let inner = self.expr(inner);
                ResolvedExpr::Neg(inner)
            }
            SExpr::Binary { op, lhs, rhs } => {
                let lhs = self.expr(lhs);
                let rhs = self.expr(rhs);
                ResolvedExpr::Binary { op: *op, lhs, rhs }
            }
            SExpr::Select {
                cond,
                if_true,
                if_false,
            } => {
                let cond = self.expr(cond);
                let if_true = self.expr(if_true);
                let if_false = self.expr(if_false);
                ResolvedExpr::Select {
                    cond,
                    if_true,
                    if_false,
                }
            }
        };
        self.push(resolved)
    }

    fn counter(&mut self, c: &Counter) -> ResolvedCounter {
        match c {
            Counter::Range {
                var,
                min,
                max,
                step,
            } => {
                let min = self.expr(min);
                let max = self.expr(max);
                ResolvedCounter::Range {
                    var: self.syms.var(var),
                    min,
                    max,
                    step: *step,
                }
            }
            Counter::Scan1 {
                bv,
                pos_var,
                idx_var,
            } => ResolvedCounter::Scan1 {
                bv: self.syms.chip(bv),
                pos_var: self.syms.var(pos_var),
                idx_var: self.syms.var(idx_var),
            },
            Counter::Scan2 {
                op,
                bv_a,
                bv_b,
                a_pos_var,
                b_pos_var,
                out_pos_var,
                idx_var,
            } => ResolvedCounter::Scan2 {
                op: *op,
                bv_a: self.syms.chip(bv_a),
                bv_b: self.syms.chip(bv_b),
                a_pos_var: self.syms.var(a_pos_var),
                b_pos_var: self.syms.var(b_pos_var),
                out_pos_var: self.syms.var(out_pos_var),
                idx_var: self.syms.var(idx_var),
            },
        }
    }

    fn note_node(&mut self, id: usize) {
        self.node_limit = self.node_limit.max(id + 1);
    }

    fn stmt(&mut self, s: &SpatialStmt) -> Option<ResolvedStmt> {
        Some(match s {
            SpatialStmt::Comment(_) => return None,
            SpatialStmt::Alloc(d) => ResolvedStmt::Alloc {
                slot: self.syms.chip(&d.name),
                kind: d.kind,
                size: d.size,
            },
            SpatialStmt::Bind { var, value } => {
                let value = self.expr(value);
                ResolvedStmt::Bind {
                    var: self.syms.var(var),
                    value,
                }
            }
            SpatialStmt::Load {
                dst,
                src,
                start,
                end,
                ..
            } => {
                let start = self.expr(start);
                let end = self.expr(end);
                ResolvedStmt::Load {
                    dst: self.syms.chip(dst),
                    src: self.syms.dram(src),
                    start,
                    end,
                }
            }
            SpatialStmt::Store {
                dst,
                offset,
                src,
                len,
                ..
            } => {
                let offset = self.expr(offset);
                let len = self.expr(len);
                ResolvedStmt::Store {
                    dst: self.syms.dram(dst),
                    offset,
                    src: self.syms.chip(src),
                    len,
                }
            }
            SpatialStmt::StreamStore {
                dst,
                offset,
                fifo,
                len,
            } => {
                let offset = self.expr(offset);
                let len = self.expr(len);
                ResolvedStmt::StreamStore {
                    dst: self.syms.dram(dst),
                    offset,
                    fifo: self.syms.chip(fifo),
                    len,
                }
            }
            SpatialStmt::StoreScalar { dst, index, value } => {
                let index = self.expr(index);
                let value = self.expr(value);
                ResolvedStmt::StoreScalar {
                    dst: self.syms.dram(dst),
                    index,
                    value,
                }
            }
            SpatialStmt::WriteMem {
                mem,
                index,
                value,
                random,
            } => {
                let index = self.expr(index);
                let value = self.expr(value);
                ResolvedStmt::WriteMem {
                    mem: self.syms.chip(mem),
                    index,
                    value,
                    random: *random,
                }
            }
            SpatialStmt::RmwAdd { mem, index, value } => {
                let index = self.expr(index);
                let value = self.expr(value);
                ResolvedStmt::RmwAdd {
                    mem: self.syms.chip(mem),
                    index,
                    value,
                }
            }
            SpatialStmt::SetReg { reg, value } => {
                let value = self.expr(value);
                ResolvedStmt::SetReg {
                    reg: self.syms.chip(reg),
                    value,
                }
            }
            SpatialStmt::Enq { fifo, value } => {
                let value = self.expr(value);
                ResolvedStmt::Enq {
                    fifo: self.syms.chip(fifo),
                    value,
                }
            }
            SpatialStmt::GenBitVector {
                dst,
                src,
                src_start,
                count,
                dim,
            } => {
                let src_start = self.expr(src_start);
                let count = self.expr(count);
                let dim = self.expr(dim);
                ResolvedStmt::GenBitVector {
                    dst: self.syms.chip(dst),
                    src: self.syms.chip(src),
                    src_start,
                    count,
                    dim,
                }
            }
            SpatialStmt::Foreach {
                id, counter, body, ..
            } => {
                self.note_node(*id);
                let counter = self.counter(counter);
                ResolvedStmt::Foreach {
                    id: *id,
                    counter,
                    body: body.iter().filter_map(|b| self.stmt(b)).collect(),
                }
            }
            SpatialStmt::Reduce {
                id,
                reg,
                counter,
                body,
                expr,
                ..
            } => {
                self.note_node(*id);
                let counter = self.counter(counter);
                let body = body.iter().filter_map(|b| self.stmt(b)).collect();
                let expr = self.expr(expr);
                ResolvedStmt::Reduce {
                    id: *id,
                    reg: self.syms.chip(reg),
                    counter,
                    body,
                    expr,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::MemDecl;

    #[test]
    fn dram_slots_follow_declaration_order() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("a", 4);
        p.add_sparse_dram("b", 8);
        let mut syms = SymbolTable::default();
        let r = resolve(&p, &mut syms);
        assert_eq!(r.drams.len(), 2);
        assert_eq!(r.drams[0].slot, 0);
        assert_eq!(r.drams[1].slot, 1);
        assert_eq!(r.drams[1].kind, MemKind::SparseDram);
        assert_eq!(syms.dram_name(0), "a");
        assert_eq!(syms.dram_name(1), "b");
    }

    #[test]
    fn same_name_interns_to_same_slot() {
        let mut syms = SymbolTable::default();
        assert_eq!(syms.chip("s"), syms.chip("s"));
        assert_ne!(syms.chip("s"), syms.chip("t"));
        // Namespaces are independent: "s" as a DRAM is a fresh slot 0.
        assert_eq!(syms.dram("s"), 0);
    }

    #[test]
    fn expressions_flatten_into_one_arena() {
        let mut p = SpatialProgram::new("t");
        p.accel.push(SpatialStmt::Bind {
            var: "v".into(),
            value: SExpr::mul(
                SExpr::add(SExpr::var("a"), SExpr::Const(2.0)),
                SExpr::read("s", SExpr::var("i")),
            ),
        });
        let mut syms = SymbolTable::default();
        let r = resolve(&p, &mut syms);
        // a, 2, (a+2), i, s(i), mul — six arena nodes.
        assert_eq!(r.exprs.len(), 6);
        let ResolvedStmt::Bind { value, .. } = &r.body[0] else {
            panic!("expected bind");
        };
        let ResolvedExpr::Binary { op, lhs, rhs } = r.expr(*value) else {
            panic!("expected binary");
        };
        assert_eq!(op, BinSOp::Mul);
        assert!(matches!(r.expr(lhs), ResolvedExpr::Binary { .. }));
        assert!(matches!(r.expr(rhs), ResolvedExpr::ReadMem { .. }));
    }

    #[test]
    fn read_mem_carries_both_namespaces() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("x", 4);
        p.accel.push(SpatialStmt::Bind {
            var: "v".into(),
            value: SExpr::read_random("x", SExpr::Const(0.0)),
        });
        let mut syms = SymbolTable::default();
        let r = resolve(&p, &mut syms);
        let ResolvedStmt::Bind { value, .. } = &r.body[0] else {
            panic!("expected bind");
        };
        let ResolvedExpr::ReadMem {
            chip, dram, random, ..
        } = r.expr(*value)
        else {
            panic!("expected readmem");
        };
        assert!(random);
        assert_eq!(syms.chip_name(chip), "x");
        assert_eq!(syms.dram_name(dram), "x");
        assert_eq!(dram, 0, "declared DRAM keeps its declaration slot");
    }

    #[test]
    fn comments_are_dropped_and_node_limit_tracked() {
        let mut p = SpatialProgram::new("t");
        p.accel.push(SpatialStmt::Comment("note".into()));
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(2.0)),
            par: 1,
            body: vec![SpatialStmt::Reduce {
                id: 1,
                reg: "r".into(),
                counter: Counter::range_to("j", SExpr::Const(2.0)),
                par: 1,
                body: vec![],
                expr: SExpr::Const(1.0),
            }],
        });
        let mut syms = SymbolTable::default();
        let r = resolve(&p, &mut syms);
        assert_eq!(r.body.len(), 1, "comment dropped");
        assert_eq!(r.node_limit, 2);
    }

    #[test]
    fn re_resolution_extends_the_table() {
        let mut p1 = SpatialProgram::new("a");
        p1.add_dram("x", 4);
        let mut p2 = SpatialProgram::new("b");
        p2.add_dram("y", 4);
        p2.add_dram("x", 4);
        let mut syms = SymbolTable::default();
        resolve(&p1, &mut syms);
        let r2 = resolve(&p2, &mut syms);
        // "x" keeps slot 0 from the first resolution; "y" is appended.
        assert_eq!(r2.drams[0].slot, 1);
        assert_eq!(r2.drams[1].slot, 0);
        assert_eq!(syms.dram_count(), 2);
    }

    #[test]
    fn arena_layout_assigns_disjoint_max_extents() {
        let mut p = SpatialProgram::new("t");
        // `s` is allocated twice with different sizes: the region must
        // cover the larger one. `bv` takes bitset words, `f`/`r` words.
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 4)));
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(2.0)),
            par: 1,
            body: vec![SpatialStmt::Alloc(MemDecl::new(
                "s",
                MemKind::SparseSram,
                32,
            ))],
        });
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 8)));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("r", MemKind::Reg, 1)));
        p.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "bv",
            MemKind::BitVector,
            100,
        )));
        let mut syms = SymbolTable::default();
        let r = resolve(&p, &mut syms);
        let l = &r.layout;
        assert_eq!(l.chips.len(), 4);
        let s = l.chips[syms.chip("s") as usize];
        let f = l.chips[syms.chip("f") as usize];
        let reg = l.chips[syms.chip("r") as usize];
        let bv = l.chips[syms.chip("bv") as usize];
        assert_eq!(s.word_cap, 32, "max of the two allocs");
        // Word caps round up to whole vector chunks so every region
        // starts lane-aligned and chunked loads never cross regions.
        assert_eq!(f.word_cap, 8);
        assert_eq!(reg.word_cap, crate::vector::LANES);
        assert_eq!(bv.bit_words, bit_words_for(100));
        assert_eq!(l.words, 32 + 8 + crate::vector::LANES);
        assert_eq!(l.bit_words, 2);
        // Regions are disjoint and packed.
        assert_eq!(s.word_off, 0);
        assert_eq!(f.word_off, 32);
        assert_eq!(reg.word_off, 40);
        assert_eq!(bv.bit_off, 0);
    }

    #[test]
    fn dram_layout_splits_inputs_and_outputs() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("a", 4); // read only → input segment
        p.add_dram("o1", 8); // stored to → output segment
        p.add_sparse_dram("b", 6); // read only → input segment
        p.add_dram("o2", 2); // scalar-stored to → output segment
        p.accel.push(SpatialStmt::Store {
            dst: "o1".into(),
            offset: SExpr::Const(0.0),
            src: "s".into(),
            len: SExpr::Const(1.0),
            par: 1,
        });
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(2.0)),
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "o2".into(),
                index: SExpr::var("i"),
                value: SExpr::Const(1.0),
            }],
        });
        // Written but never declared: stays unmapped.
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "ghost".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Const(1.0),
        });
        let mut syms = SymbolTable::default();
        let r = resolve(&p, &mut syms);
        let l = &r.dram_layout;
        assert_eq!(l.input_words, 4 + 6);
        assert_eq!(l.output_words, 8 + 2);
        let a = l.drams[syms.dram("a") as usize];
        let b = l.drams[syms.dram("b") as usize];
        let o1 = l.drams[syms.dram("o1") as usize];
        let o2 = l.drams[syms.dram("o2") as usize];
        let ghost = l.drams[syms.dram("ghost") as usize];
        assert!(a.mapped && !a.written && a.offset == 0 && a.size == 4);
        assert!(b.mapped && !b.written && b.offset == 4 && b.size == 6);
        assert_eq!(b.kind, MemKind::SparseDram);
        assert!(o1.mapped && o1.written && o1.offset == 0 && o1.size == 8);
        assert!(o2.mapped && o2.written && o2.offset == 8 && o2.size == 2);
        assert!(!ghost.mapped && ghost.written && ghost.size == 0);
    }

    #[test]
    fn unallocated_slots_get_empty_regions() {
        let mut p = SpatialProgram::new("t");
        // Referenced but never allocated: slot exists, region is empty.
        p.accel.push(SpatialStmt::SetReg {
            reg: "ghost".into(),
            value: SExpr::Const(1.0),
        });
        let mut syms = SymbolTable::default();
        let r = resolve(&p, &mut syms);
        assert_eq!(r.layout.chips.len(), 1);
        assert_eq!(r.layout.chips[0].word_cap, 0);
        assert_eq!(r.layout.chips[0].bit_words, 0);
        assert_eq!(r.layout.words, 0);
    }

    #[test]
    fn alloc_inside_loop_resolves_scoped_names() {
        let mut p = SpatialProgram::new("t");
        p.accel.push(SpatialStmt::Foreach {
            id: 3,
            counter: Counter::Scan1 {
                bv: "bv".into(),
                pos_var: "p".into(),
                idx_var: "i".into(),
            },
            par: 2,
            body: vec![SpatialStmt::Alloc(MemDecl::new("tmp", MemKind::Sram, 4))],
        });
        let mut syms = SymbolTable::default();
        let r = resolve(&p, &mut syms);
        assert_eq!(r.node_limit, 4);
        let ResolvedStmt::Foreach { counter, body, .. } = &r.body[0] else {
            panic!("expected foreach");
        };
        assert!(matches!(counter, ResolvedCounter::Scan1 { .. }));
        assert!(matches!(body[0], ResolvedStmt::Alloc { .. }));
        assert_eq!(syms.chip_count(), 2, "bv and tmp");
        assert_eq!(syms.var_count(), 2, "p and i");
    }
}
