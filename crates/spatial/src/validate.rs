//! Structural validation of Spatial programs.
//!
//! The paper stresses that incorrect memory analysis — "incompatible memory
//! allocations, late allocations, and missed data transfers — will cause
//! hardware simulation errors or invalid kernel computations" (§6.1).
//! This pass catches such compiler bugs before simulation: every referenced
//! memory must be declared (in scope), loads/stores must connect compatible
//! memory kinds, scans must scan bit vectors, and parallelization factors
//! must be positive.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ir::{Counter, MemKind, SExpr, SpatialProgram, SpatialStmt};

/// A validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A memory was referenced before any (in-scope) declaration.
    UndeclaredMemory(String),
    /// A memory was used with an incompatible kind (e.g. `Deq` of an SRAM).
    KindMismatch {
        /// Memory name.
        mem: String,
        /// What the operation expected.
        expected: &'static str,
        /// The declared kind.
        found: MemKind,
    },
    /// A duplicate DRAM declaration.
    DuplicateDram(String),
    /// A parallelization factor of zero.
    ZeroPar,
    /// A loop step that is not positive.
    BadStep(i64),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UndeclaredMemory(m) => write!(f, "memory {m} used before declaration"),
            ValidationError::KindMismatch {
                mem,
                expected,
                found,
            } => write!(f, "memory {mem}: expected {expected}, declared as {found}"),
            ValidationError::DuplicateDram(m) => write!(f, "duplicate DRAM declaration {m}"),
            ValidationError::ZeroPar => write!(f, "parallelization factor must be positive"),
            ValidationError::BadStep(s) => write!(f, "loop step must be positive, got {s}"),
        }
    }
}

impl Error for ValidationError {}

/// Validates the program's structure.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found.
pub fn validate(p: &SpatialProgram) -> Result<(), ValidationError> {
    let mut scope: HashMap<String, MemKind> = HashMap::new();
    for d in &p.drams {
        if scope.insert(d.name.clone(), d.kind).is_some() {
            return Err(ValidationError::DuplicateDram(d.name.clone()));
        }
    }
    validate_block(&p.accel, &mut scope)
}

fn validate_block(
    stmts: &[SpatialStmt],
    scope: &mut HashMap<String, MemKind>,
) -> Result<(), ValidationError> {
    // Allocations made in this block are dropped when it ends.
    let mut added: Vec<String> = Vec::new();
    let result = (|| {
        for s in stmts {
            validate_stmt(s, scope, &mut added)?;
        }
        Ok(())
    })();
    for name in added {
        scope.remove(&name);
    }
    result
}

fn expect_kind(
    scope: &HashMap<String, MemKind>,
    mem: &str,
    ok: &[MemKind],
    expected: &'static str,
) -> Result<(), ValidationError> {
    match scope.get(mem) {
        None => Err(ValidationError::UndeclaredMemory(mem.to_string())),
        Some(k) if ok.contains(k) => Ok(()),
        Some(k) => Err(ValidationError::KindMismatch {
            mem: mem.to_string(),
            expected,
            found: *k,
        }),
    }
}

fn validate_expr(e: &SExpr, scope: &HashMap<String, MemKind>) -> Result<(), ValidationError> {
    match e {
        SExpr::Var(_) | SExpr::Const(_) => Ok(()),
        SExpr::RegRead(r) => expect_kind(scope, r, &[MemKind::Reg], "register"),
        SExpr::Deq(f) => expect_kind(scope, f, &[MemKind::Fifo], "FIFO"),
        SExpr::ReadMem { mem, index, .. } => {
            expect_kind(
                scope,
                mem,
                &[
                    MemKind::Sram,
                    MemKind::SparseSram,
                    MemKind::Dram,
                    MemKind::SparseDram,
                ],
                "readable memory",
            )?;
            validate_expr(index, scope)
        }
        SExpr::Neg(inner) => validate_expr(inner, scope),
        SExpr::Binary { lhs, rhs, .. } => {
            validate_expr(lhs, scope)?;
            validate_expr(rhs, scope)
        }
        SExpr::Select {
            cond,
            if_true,
            if_false,
        } => {
            validate_expr(cond, scope)?;
            validate_expr(if_true, scope)?;
            validate_expr(if_false, scope)
        }
    }
}

fn validate_counter(c: &Counter, scope: &HashMap<String, MemKind>) -> Result<(), ValidationError> {
    match c {
        Counter::Range { min, max, step, .. } => {
            if *step <= 0 {
                return Err(ValidationError::BadStep(*step));
            }
            validate_expr(min, scope)?;
            validate_expr(max, scope)
        }
        Counter::Scan1 { bv, .. } => expect_kind(scope, bv, &[MemKind::BitVector], "bit vector"),
        Counter::Scan2 { bv_a, bv_b, .. } => {
            expect_kind(scope, bv_a, &[MemKind::BitVector], "bit vector")?;
            expect_kind(scope, bv_b, &[MemKind::BitVector], "bit vector")
        }
    }
}

fn validate_stmt(
    s: &SpatialStmt,
    scope: &mut HashMap<String, MemKind>,
    added: &mut Vec<String>,
) -> Result<(), ValidationError> {
    match s {
        SpatialStmt::Comment(_) => Ok(()),
        SpatialStmt::Alloc(d) => {
            scope.insert(d.name.clone(), d.kind);
            added.push(d.name.clone());
            Ok(())
        }
        SpatialStmt::Bind { value, .. } => validate_expr(value, scope),
        SpatialStmt::Load {
            dst,
            src,
            start,
            end,
            par,
        } => {
            if *par == 0 {
                return Err(ValidationError::ZeroPar);
            }
            expect_kind(
                scope,
                src,
                &[MemKind::Dram, MemKind::SparseDram],
                "DRAM source",
            )?;
            expect_kind(
                scope,
                dst,
                &[MemKind::Sram, MemKind::SparseSram, MemKind::Fifo],
                "on-chip destination",
            )?;
            validate_expr(start, scope)?;
            validate_expr(end, scope)
        }
        SpatialStmt::Store {
            dst,
            offset,
            src,
            len,
            par,
        } => {
            if *par == 0 {
                return Err(ValidationError::ZeroPar);
            }
            expect_kind(scope, dst, &[MemKind::Dram], "DRAM destination")?;
            expect_kind(
                scope,
                src,
                &[MemKind::Sram, MemKind::SparseSram],
                "SRAM source",
            )?;
            validate_expr(offset, scope)?;
            validate_expr(len, scope)
        }
        SpatialStmt::StreamStore {
            dst,
            offset,
            fifo,
            len,
        } => {
            expect_kind(scope, dst, &[MemKind::Dram], "DRAM destination")?;
            expect_kind(scope, fifo, &[MemKind::Fifo], "FIFO source")?;
            validate_expr(offset, scope)?;
            validate_expr(len, scope)
        }
        SpatialStmt::StoreScalar { dst, index, value } => {
            expect_kind(
                scope,
                dst,
                &[MemKind::Dram, MemKind::SparseDram],
                "DRAM destination",
            )?;
            validate_expr(index, scope)?;
            validate_expr(value, scope)
        }
        SpatialStmt::WriteMem {
            mem, index, value, ..
        }
        | SpatialStmt::RmwAdd { mem, index, value } => {
            expect_kind(
                scope,
                mem,
                &[MemKind::Sram, MemKind::SparseSram],
                "on-chip memory",
            )?;
            validate_expr(index, scope)?;
            validate_expr(value, scope)
        }
        SpatialStmt::SetReg { reg, value } => {
            expect_kind(scope, reg, &[MemKind::Reg], "register")?;
            validate_expr(value, scope)
        }
        SpatialStmt::Enq { fifo, value } => {
            expect_kind(scope, fifo, &[MemKind::Fifo], "FIFO")?;
            validate_expr(value, scope)
        }
        SpatialStmt::GenBitVector {
            dst,
            src,
            src_start,
            count,
            dim,
        } => {
            expect_kind(scope, dst, &[MemKind::BitVector], "bit vector")?;
            expect_kind(
                scope,
                src,
                &[MemKind::Fifo, MemKind::Sram, MemKind::SparseSram],
                "coordinate source",
            )?;
            validate_expr(src_start, scope)?;
            validate_expr(count, scope)?;
            validate_expr(dim, scope)
        }
        SpatialStmt::Foreach {
            counter, par, body, ..
        } => {
            if *par == 0 {
                return Err(ValidationError::ZeroPar);
            }
            validate_counter(counter, scope)?;
            validate_block(body, scope)
        }
        SpatialStmt::Reduce {
            reg,
            counter,
            par,
            body,
            expr,
            ..
        } => {
            if *par == 0 {
                return Err(ValidationError::ZeroPar);
            }
            expect_kind(scope, reg, &[MemKind::Reg], "register")?;
            validate_counter(counter, scope)?;
            // Body allocations stay visible for the reduce expression.
            let mut inner_added = Vec::new();
            for b in body {
                validate_stmt(b, scope, &mut inner_added)?;
            }
            let result = validate_expr(expr, scope);
            for name in inner_added {
                scope.remove(&name);
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{MemDecl, SExpr};

    #[test]
    fn accepts_wellformed() {
        let mut p = SpatialProgram::new("ok");
        p.add_dram("d", 8);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 8)));
        p.accel.push(SpatialStmt::Load {
            dst: "s".into(),
            src: "d".into(),
            start: SExpr::Const(0.0),
            end: SExpr::Const(8.0),
            par: 4,
        });
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn rejects_undeclared_memory() {
        let mut p = SpatialProgram::new("bad");
        p.accel.push(SpatialStmt::Enq {
            fifo: "ghost".into(),
            value: SExpr::Const(0.0),
        });
        assert_eq!(
            validate(&p),
            Err(ValidationError::UndeclaredMemory("ghost".into()))
        );
    }

    #[test]
    fn rejects_kind_mismatch() {
        let mut p = SpatialProgram::new("bad");
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 8)));
        p.accel.push(SpatialStmt::Enq {
            fifo: "s".into(),
            value: SExpr::Const(0.0),
        });
        assert!(matches!(
            validate(&p),
            Err(ValidationError::KindMismatch { .. })
        ));
    }

    #[test]
    fn rejects_scan_of_non_bitvector() {
        let mut p = SpatialProgram::new("bad");
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 8)));
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan1 {
                bv: "s".into(),
                pos_var: "p".into(),
                idx_var: "i".into(),
            },
            par: 1,
            body: vec![],
        });
        assert!(matches!(
            validate(&p),
            Err(ValidationError::KindMismatch { .. })
        ));
    }

    #[test]
    fn rejects_zero_par_and_bad_step() {
        let mut p = SpatialProgram::new("bad");
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(4.0)),
            par: 0,
            body: vec![],
        });
        assert_eq!(validate(&p), Err(ValidationError::ZeroPar));

        let mut p2 = SpatialProgram::new("bad2");
        p2.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Range {
                var: "i".into(),
                min: SExpr::Const(0.0),
                max: SExpr::Const(4.0),
                step: 0,
            },
            par: 1,
            body: vec![],
        });
        assert_eq!(validate(&p2), Err(ValidationError::BadStep(0)));
    }

    #[test]
    fn scoping_ends_with_block() {
        // An SRAM allocated inside a Foreach is not visible after it.
        let mut p = SpatialProgram::new("scope");
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(2.0)),
            par: 1,
            body: vec![SpatialStmt::Alloc(MemDecl::new("tmp", MemKind::Sram, 4))],
        });
        p.accel.push(SpatialStmt::WriteMem {
            mem: "tmp".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Const(1.0),
            random: false,
        });
        assert_eq!(
            validate(&p),
            Err(ValidationError::UndeclaredMemory("tmp".into()))
        );
    }

    #[test]
    fn duplicate_dram_rejected() {
        let mut p = SpatialProgram::new("dup");
        p.add_dram("d", 4);
        p.add_dram("d", 8);
        assert_eq!(
            validate(&p),
            Err(ValidationError::DuplicateDram("d".into()))
        );
    }

    #[test]
    fn reduce_body_bindings_visible_in_expr() {
        let mut p = SpatialProgram::new("r");
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc", MemKind::Reg, 1)));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 8)));
        p.accel.push(SpatialStmt::Reduce {
            id: 0,
            reg: "acc".into(),
            counter: Counter::range_to("j", SExpr::Const(4.0)),
            par: 1,
            body: vec![SpatialStmt::Bind {
                var: "v".into(),
                value: SExpr::Deq("f".into()),
            }],
            expr: SExpr::var("v"),
        });
        assert!(validate(&p).is_ok());
    }
}
