//! Static analysis over the lowered bytecode: one dataflow pass that
//! gates every compile.
//!
//! The shard planner ([`crate::shard`]) and the vector tier
//! ([`crate::vector`]) both need to *prove* properties of a compiled
//! program before running it differently from the serial scalar
//! interpreter: that a loop's iterations are independent, that a store
//! can never land outside its arena region, that a prefix only loads.
//! Historically each proved its own fragment with ad-hoc syntactic
//! pattern matching over the source tree. This module centralizes the
//! reasoning over the *lowered* `Vec<Op>` form, where every name is a
//! dense slot and every loop is an explicit jump structure:
//!
//! - [`verify`] — structural validity of a compiled program: every jump
//!   target in range, enter/advance frames balanced, every slot within
//!   its [`ArenaLayout`]/[`DramLayout`] extent, postfix expression
//!   programs stack-disciplined. The compiler runs it on every
//!   [`crate::CompiledProgram`] in debug builds (and CI runs it over
//!   the whole kernel suite + a mutation corpus), so a lowering bug
//!   becomes a typed [`VerifyError`] at compile time instead of a
//!   differential divergence at run time.
//! - [`effects_of_span`] — the effect summary of an op region: DRAM
//!   read/write sets, chip-slot def/use, variable def/use, as dense
//!   slot sets. [`crate::shard::ShardPlan::analyze`] is built on these
//!   summaries, which is what widens sharding to non-trailing outer
//!   loops: a prefix is safe to replay per shard iff its DRAM write
//!   set is disjoint from the candidate body's, a suffix is safe to
//!   run after iff it depends on nothing the body defines.
//! - [`classify_vec`] — vector eligibility, moved here from the
//!   lowering and widened: multi-statement scatter bodies
//!   ([`VecClass::MultiScatter`]) and offset/computed dense fills ride
//!   on the same operand-shape lattice as the original two classes.
//! - [`compute_elide`] — the check-elision table: a store through the
//!   loop variable of a constant-bound loop whose bound the analysis
//!   proves within the destination's allocated extent skips the
//!   per-access bounds check in the dispatch loop (the interpreter
//!   re-validates the few runtime facts — slot actually allocated,
//!   bound within the live length — once per loop instead of once per
//!   access).
//!
//! The analyses are deliberately conservative: every set is an
//! over-approximation, every proof obligation that cannot be
//! discharged statically falls back to the checked path. Soundness
//! here means "never claim a property that could fail at run time",
//! not "accept every safe program".

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

use crate::bytecode::{EOp, FusedOp, GatherRef, Op, Operand, VecClass};
use crate::ir::{BinSOp, MemKind};
use crate::resolve::{bit_words_for, ArenaLayout, DramLayout, Slot, SymbolTable};

/// A structural-validity violation found by [`verify`]. Each variant
/// carries the program counter (or expression-op index) of the
/// offending op, so a failure message pinpoints the lowering bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The program is empty or its final op is not [`Op::Halt`].
    MissingHalt,
    /// A [`Op::Halt`] appears before the final position.
    StrayHalt {
        /// Offending program counter.
        pc: usize,
    },
    /// A frame op (`Enter*`/`Next`/`ReduceTail`) or `Halt` appears
    /// inside a superinstruction body, where the straight-line
    /// executor cannot dispatch it.
    MisplacedOp {
        /// Offending program counter.
        pc: usize,
    },
    /// A superinstruction's body span is malformed: `body != pc + 1`
    /// or the span overruns the program.
    BodyOutOfRange {
        /// Offending program counter.
        pc: usize,
    },
    /// A framed loop's structure is malformed: `exit` out of range or
    /// not past the loop head, the op before `exit` is not the
    /// matching [`Op::Next`], a `Next` advances a frame that was never
    /// entered, or a [`Op::ReduceTail`] sits outside a reducing frame.
    BadFrame {
        /// Offending program counter.
        pc: usize,
    },
    /// A chip slot is outside the symbol table / arena layout.
    ChipSlotOutOfRange {
        /// Offending program counter.
        pc: usize,
        /// The out-of-range slot.
        slot: Slot,
    },
    /// A DRAM slot is outside the symbol table / DRAM layout.
    DramSlotOutOfRange {
        /// Offending program counter.
        pc: usize,
        /// The out-of-range slot.
        slot: Slot,
    },
    /// A variable slot is outside the symbol table.
    VarSlotOutOfRange {
        /// Offending program counter.
        pc: usize,
        /// The out-of-range slot.
        slot: Slot,
    },
    /// A fused-operand index is outside the program's fused table.
    FusedOutOfRange {
        /// Offending program counter.
        pc: usize,
        /// The out-of-range index.
        index: u32,
    },
    /// An expression reference is outside the expression-op array.
    ExprOutOfRange {
        /// Offending program counter.
        pc: usize,
        /// The out-of-range reference.
        index: u32,
    },
    /// An on-chip allocation exceeds the extent the [`ArenaLayout`]
    /// reserved for its slot.
    AllocExceedsLayout {
        /// Offending program counter.
        pc: usize,
        /// The allocated slot.
        slot: Slot,
        /// The requested size (words, or bits for bit vectors).
        size: usize,
        /// The layout's reserved capacity for the slot.
        cap: usize,
    },
    /// An expression program pops more values than the stack holds.
    ExprUnderflow {
        /// The expression program's entry reference.
        eref: u32,
        /// The expression-op index where the stack underflows.
        at: usize,
    },
    /// An expression program runs past the op array without an
    /// [`EOp::End`].
    ExprNoEnd {
        /// The expression program's entry reference.
        eref: u32,
    },
    /// An expression jump is backward or out of range (expression
    /// control flow is forward-only).
    ExprBadJump {
        /// The expression program's entry reference.
        eref: u32,
        /// The expression-op index of the jump.
        at: usize,
        /// The bad target.
        target: u32,
    },
    /// An expression program reaches [`EOp::End`] with a stack depth
    /// other than one (no single result value).
    ExprBadResult {
        /// The expression program's entry reference.
        eref: u32,
        /// The stack depth at `End`.
        depth: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VerifyError::MissingHalt => {
                write!(f, "program does not end with Halt")
            }
            VerifyError::StrayHalt { pc } => {
                write!(f, "Halt before the final op at pc {pc}")
            }
            VerifyError::MisplacedOp { pc } => {
                write!(
                    f,
                    "frame op in straight-line position at pc {pc} \
                     (inside a superinstruction body)"
                )
            }
            VerifyError::BodyOutOfRange { pc } => {
                write!(f, "superinstruction body span malformed at pc {pc}")
            }
            VerifyError::BadFrame { pc } => {
                write!(f, "loop frame structure malformed at pc {pc}")
            }
            VerifyError::ChipSlotOutOfRange { pc, slot } => {
                write!(f, "chip slot {slot} out of range at pc {pc}")
            }
            VerifyError::DramSlotOutOfRange { pc, slot } => {
                write!(f, "DRAM slot {slot} out of range at pc {pc}")
            }
            VerifyError::VarSlotOutOfRange { pc, slot } => {
                write!(f, "variable slot {slot} out of range at pc {pc}")
            }
            VerifyError::FusedOutOfRange { pc, index } => {
                write!(f, "fused-operand index {index} out of range at pc {pc}")
            }
            VerifyError::ExprOutOfRange { pc, index } => {
                write!(f, "expression reference {index} out of range at pc {pc}")
            }
            VerifyError::AllocExceedsLayout {
                pc,
                slot,
                size,
                cap,
            } => {
                write!(
                    f,
                    "Alloc of chip slot {slot} at pc {pc} requests {size} \
                     but the arena layout reserves {cap}"
                )
            }
            VerifyError::ExprUnderflow { eref, at } => {
                write!(f, "expression {eref} underflows its stack at eop {at}")
            }
            VerifyError::ExprNoEnd { eref } => {
                write!(f, "expression {eref} runs off the op array without End")
            }
            VerifyError::ExprBadJump { eref, at, target } => {
                write!(
                    f,
                    "expression {eref} has a backward or out-of-range jump \
                     to {target} at eop {at}"
                )
            }
            VerifyError::ExprBadResult { eref, depth } => {
                write!(
                    f,
                    "expression {eref} ends with stack depth {depth} (want 1)"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Borrowed view of the parts of a compiled program the analyses need.
/// [`crate::CompiledProgram::verify`] builds one from its own fields;
/// tests build one over a *mutated* copy of the op array to exercise
/// the verifier without access to the program's private internals.
#[derive(Debug, Clone, Copy)]
pub struct VerifyCtx<'a> {
    /// The flat statement ops.
    pub ops: &'a [Op],
    /// The flat expression ops.
    pub eops: &'a [EOp],
    /// The fused compound-operand table.
    pub fused: &'a [FusedOp],
    /// The symbol table the program was linked against.
    pub syms: &'a SymbolTable,
    /// On-chip arena extents.
    pub layout: &'a ArenaLayout,
    /// DRAM arena extents.
    pub dram_layout: &'a DramLayout,
}

impl<'a> VerifyCtx<'a> {
    fn check_chip(&self, pc: usize, slot: Slot) -> Result<(), VerifyError> {
        if (slot as usize) < self.syms.chip_count() && (slot as usize) < self.layout.chips.len() {
            Ok(())
        } else {
            Err(VerifyError::ChipSlotOutOfRange { pc, slot })
        }
    }

    fn check_dram(&self, pc: usize, slot: Slot) -> Result<(), VerifyError> {
        if (slot as usize) < self.syms.dram_count()
            && (slot as usize) < self.dram_layout.drams.len()
        {
            Ok(())
        } else {
            Err(VerifyError::DramSlotOutOfRange { pc, slot })
        }
    }

    fn check_var(&self, pc: usize, slot: Slot) -> Result<(), VerifyError> {
        if (slot as usize) < self.syms.var_count() {
            Ok(())
        } else {
            Err(VerifyError::VarSlotOutOfRange { pc, slot })
        }
    }

    fn check_gather(&self, pc: usize, g: GatherRef) -> Result<(), VerifyError> {
        self.check_chip(pc, g.chip)?;
        self.check_dram(pc, g.dram)?;
        self.check_var(pc, g.var)
    }

    fn check_operand(&self, pc: usize, operand: Operand) -> Result<(), VerifyError> {
        match operand {
            Operand::Const(_) => Ok(()),
            Operand::Var(v) => self.check_var(pc, v),
            Operand::Gather {
                chip, dram, var, ..
            } => {
                self.check_chip(pc, chip)?;
                self.check_dram(pc, dram)?;
                self.check_var(pc, var)
            }
            Operand::Fused(i) => {
                let Some(fused) = self.fused.get(i as usize) else {
                    return Err(VerifyError::FusedOutOfRange { pc, index: i });
                };
                match *fused {
                    FusedOp::GatherOffset { mem, .. } => self.check_gather(pc, mem),
                    FusedOp::BinGather { a, mem, .. } => {
                        self.check_var(pc, a)?;
                        self.check_gather(pc, mem)
                    }
                    FusedOp::BinGatherInd {
                        lhs, inner, outer, ..
                    } => {
                        self.check_gather(pc, lhs)?;
                        self.check_gather(pc, inner)?;
                        self.check_gather(pc, outer)
                    }
                }
            }
            Operand::Expr(e) => self.check_expr(pc, e),
        }
    }

    /// Simulates the postfix expression program starting at `eref`:
    /// stack depths across both `Select` branches, forward-only jumps,
    /// exactly one result at `End`, every embedded slot in range.
    fn check_expr(&self, pc: usize, eref: u32) -> Result<(), VerifyError> {
        if (eref as usize) >= self.eops.len() {
            return Err(VerifyError::ExprOutOfRange { pc, index: eref });
        }
        // Worklist DFS over (eop index, stack depth). Jumps are
        // forward-only (checked), so the walk terminates; the visited
        // set keeps branchy expressions linear.
        let mut work = vec![(eref as usize, 0usize)];
        let mut visited = BTreeSet::new();
        while let Some((mut at, mut depth)) = work.pop() {
            loop {
                if !visited.insert((at, depth)) {
                    break;
                }
                let Some(eop) = self.eops.get(at) else {
                    return Err(VerifyError::ExprNoEnd { eref });
                };
                match *eop {
                    EOp::Const(_) => depth += 1,
                    EOp::Var(v) => {
                        self.check_var(at, v)?;
                        depth += 1;
                    }
                    EOp::RegRead(r) | EOp::Deq(r) => {
                        self.check_chip(at, r)?;
                        depth += 1;
                    }
                    EOp::ReadMem { chip, dram, .. } => {
                        self.check_chip(at, chip)?;
                        self.check_dram(at, dram)?;
                        if depth == 0 {
                            return Err(VerifyError::ExprUnderflow { eref, at });
                        }
                        // pops the index, pushes the value
                    }
                    EOp::Neg => {
                        if depth == 0 {
                            return Err(VerifyError::ExprUnderflow { eref, at });
                        }
                    }
                    EOp::Binary(_) => {
                        if depth < 2 {
                            return Err(VerifyError::ExprUnderflow { eref, at });
                        }
                        depth -= 1;
                    }
                    EOp::VarReadMem {
                        chip, dram, var, ..
                    } => {
                        self.check_chip(at, chip)?;
                        self.check_dram(at, dram)?;
                        self.check_var(at, var)?;
                        depth += 1;
                    }
                    EOp::VarBinGather {
                        a,
                        chip,
                        dram,
                        ivar,
                        ..
                    } => {
                        self.check_var(at, a)?;
                        self.check_chip(at, chip)?;
                        self.check_dram(at, dram)?;
                        self.check_var(at, ivar)?;
                        depth += 1;
                    }
                    EOp::VarConstBin { var, .. } => {
                        self.check_var(at, var)?;
                        depth += 1;
                    }
                    EOp::BranchFalse { target } => {
                        if depth == 0 {
                            return Err(VerifyError::ExprUnderflow { eref, at });
                        }
                        depth -= 1;
                        if (target as usize) <= at || (target as usize) >= self.eops.len() {
                            return Err(VerifyError::ExprBadJump { eref, at, target });
                        }
                        work.push((target as usize, depth));
                    }
                    EOp::Jump { target } => {
                        if (target as usize) <= at || (target as usize) >= self.eops.len() {
                            return Err(VerifyError::ExprBadJump { eref, at, target });
                        }
                        at = target as usize;
                        continue;
                    }
                    EOp::End => {
                        if depth != 1 {
                            return Err(VerifyError::ExprBadResult { eref, depth });
                        }
                        break;
                    }
                }
                at += 1;
            }
        }
        Ok(())
    }

    /// Per-op local checks: slot extents, operand validity, alloc
    /// sizes, superinstruction body spans.
    fn check_op(&self, pc: usize, op: &Op) -> Result<(), VerifyError> {
        let len = self.ops.len();
        let span_ok = |body: u32, body_len: u32| {
            body as usize == pc + 1 && (body as usize) + (body_len as usize) < len
        };
        match *op {
            Op::Alloc { slot, kind, size } => {
                self.check_chip(pc, slot)?;
                let region = &self.layout.chips[slot as usize];
                let (need, cap) = match kind {
                    MemKind::Sram | MemKind::SparseSram => (size, region.word_cap),
                    MemKind::Fifo => (size.max(1), region.word_cap),
                    MemKind::Reg => (1, region.word_cap),
                    MemKind::BitVector => (bit_words_for(size), region.bit_words),
                    // Rejected at runtime; no on-chip extent to check.
                    MemKind::Dram | MemKind::SparseDram => (0, 0),
                };
                if need > cap {
                    return Err(VerifyError::AllocExceedsLayout {
                        pc,
                        slot,
                        size,
                        cap,
                    });
                }
                Ok(())
            }
            Op::Bind { var, value } => {
                self.check_var(pc, var)?;
                self.check_operand(pc, value)
            }
            Op::Load {
                dst,
                src,
                start,
                end,
            } => {
                self.check_chip(pc, dst)?;
                self.check_dram(pc, src)?;
                self.check_operand(pc, start)?;
                self.check_operand(pc, end)
            }
            Op::Store {
                dst,
                offset,
                src,
                len,
            } => {
                self.check_dram(pc, dst)?;
                self.check_chip(pc, src)?;
                self.check_operand(pc, offset)?;
                self.check_operand(pc, len)
            }
            Op::StreamStore {
                dst,
                offset,
                fifo,
                len,
            } => {
                self.check_dram(pc, dst)?;
                self.check_chip(pc, fifo)?;
                self.check_operand(pc, offset)?;
                self.check_operand(pc, len)
            }
            Op::StoreScalar { dst, index, value } => {
                self.check_dram(pc, dst)?;
                self.check_operand(pc, index)?;
                self.check_operand(pc, value)
            }
            Op::WriteMem {
                mem, index, value, ..
            } => {
                self.check_chip(pc, mem)?;
                self.check_operand(pc, index)?;
                self.check_operand(pc, value)
            }
            Op::RmwAdd { mem, index, value } => {
                self.check_chip(pc, mem)?;
                self.check_operand(pc, index)?;
                self.check_operand(pc, value)
            }
            Op::SetReg { reg, value } => {
                self.check_chip(pc, reg)?;
                self.check_operand(pc, value)
            }
            Op::Enq { fifo, value } => {
                self.check_chip(pc, fifo)?;
                self.check_operand(pc, value)
            }
            Op::GenBitVector {
                dst,
                src,
                src_start,
                count,
                dim,
            } => {
                self.check_chip(pc, dst)?;
                self.check_chip(pc, src)?;
                self.check_operand(pc, src_start)?;
                self.check_operand(pc, count)?;
                self.check_operand(pc, dim)
            }
            Op::RangeSimple {
                var,
                min,
                max,
                body,
                body_len,
                reduce,
                ..
            } => {
                self.check_var(pc, var)?;
                self.check_operand(pc, min)?;
                self.check_operand(pc, max)?;
                if !span_ok(body, body_len) {
                    return Err(VerifyError::BodyOutOfRange { pc });
                }
                if let Some((reg, expr)) = reduce {
                    self.check_chip(pc, reg)?;
                    self.check_operand(pc, expr)?;
                }
                Ok(())
            }
            Op::Scan1Simple {
                bv,
                pos_var,
                idx_var,
                body,
                body_len,
                reduce,
                ..
            } => {
                self.check_chip(pc, bv)?;
                self.check_var(pc, pos_var)?;
                self.check_var(pc, idx_var)?;
                if !span_ok(body, body_len) {
                    return Err(VerifyError::BodyOutOfRange { pc });
                }
                if let Some((reg, expr)) = reduce {
                    self.check_chip(pc, reg)?;
                    self.check_operand(pc, expr)?;
                }
                Ok(())
            }
            Op::Scan2Simple {
                bv_a,
                bv_b,
                vars,
                body,
                body_len,
                reduce,
                ..
            } => {
                self.check_chip(pc, bv_a)?;
                self.check_chip(pc, bv_b)?;
                for v in vars {
                    self.check_var(pc, v)?;
                }
                if !span_ok(body, body_len) {
                    return Err(VerifyError::BodyOutOfRange { pc });
                }
                if let Some((reg, expr)) = reduce {
                    self.check_chip(pc, reg)?;
                    self.check_operand(pc, expr)?;
                }
                Ok(())
            }
            Op::EnterRange {
                var,
                min,
                max,
                reduce,
                ..
            } => {
                self.check_var(pc, var)?;
                self.check_operand(pc, min)?;
                self.check_operand(pc, max)?;
                if let Some(reg) = reduce {
                    self.check_chip(pc, reg)?;
                }
                Ok(())
            }
            Op::EnterScan1 {
                bv,
                pos_var,
                idx_var,
                reduce,
                ..
            } => {
                self.check_chip(pc, bv)?;
                self.check_var(pc, pos_var)?;
                self.check_var(pc, idx_var)?;
                if let Some(reg) = reduce {
                    self.check_chip(pc, reg)?;
                }
                Ok(())
            }
            Op::EnterScan2 {
                bv_a,
                bv_b,
                vars,
                reduce,
                ..
            } => {
                self.check_chip(pc, bv_a)?;
                self.check_chip(pc, bv_b)?;
                for v in vars {
                    self.check_var(pc, v)?;
                }
                if let Some(reg) = reduce {
                    self.check_chip(pc, reg)?;
                }
                Ok(())
            }
            Op::ReduceTail { expr } => self.check_operand(pc, expr),
            Op::Next { .. } | Op::Halt => Ok(()),
        }
    }
}

/// Verifies the structural validity of a compiled program. `Ok(())`
/// means: every jump lands inside the program, every frame op pairs
/// with its enter, every slot index is within the layouts the program
/// was linked against, and every expression program is
/// stack-disciplined — i.e. the dispatch loop cannot step out of
/// bounds no matter what data it runs over. The compiler asserts this
/// on every program in debug builds; CI asserts it over the kernel
/// suite and a mutation corpus.
pub fn verify(ctx: &VerifyCtx<'_>) -> Result<(), VerifyError> {
    let ops = ctx.ops;
    if ops.last() != Some(&Op::Halt) {
        return Err(VerifyError::MissingHalt);
    }
    // Pass 1: per-op local checks, stray-Halt placement, and
    // superinstruction body hygiene (no frame ops in straight-line
    // position — the simple-body executor treats them as unreachable).
    for (pc, op) in ops.iter().enumerate() {
        ctx.check_op(pc, op)?;
        if matches!(op, Op::Halt) && pc != ops.len() - 1 {
            return Err(VerifyError::StrayHalt { pc });
        }
        if let Op::RangeSimple { body, body_len, .. }
        | Op::Scan1Simple { body, body_len, .. }
        | Op::Scan2Simple { body, body_len, .. } = *op
        {
            let span = body as usize..body as usize + body_len as usize;
            for bpc in span {
                if matches!(
                    ops[bpc],
                    Op::EnterRange { .. }
                        | Op::EnterScan1 { .. }
                        | Op::EnterScan2 { .. }
                        | Op::ReduceTail { .. }
                        | Op::Next { .. }
                        | Op::Halt
                ) {
                    return Err(VerifyError::MisplacedOp { pc: bpc });
                }
            }
        }
    }
    // Pass 2: frame balance. A linear scan with an explicit enter
    // stack mirrors the executor's frame stack: each Next must advance
    // the innermost open frame and sit exactly at its enter's
    // `exit - 1`; each ReduceTail must sit between a reducing frame's
    // body and its Next.
    let mut frames: Vec<usize> = Vec::new();
    for (pc, op) in ops.iter().enumerate() {
        match *op {
            Op::EnterRange { exit, .. }
            | Op::EnterScan1 { exit, .. }
            | Op::EnterScan2 { exit, .. } => {
                if (exit as usize) <= pc + 1 || (exit as usize) >= ops.len() {
                    return Err(VerifyError::BadFrame { pc });
                }
                frames.push(pc);
            }
            Op::Next { body } => {
                let Some(enter) = frames.pop() else {
                    return Err(VerifyError::BadFrame { pc });
                };
                if body as usize != enter + 1 {
                    return Err(VerifyError::BadFrame { pc });
                }
                let exit = match ops[enter] {
                    Op::EnterRange { exit, .. }
                    | Op::EnterScan1 { exit, .. }
                    | Op::EnterScan2 { exit, .. } => exit as usize,
                    _ => unreachable!("frame stack holds only enter pcs"),
                };
                if exit != pc + 1 {
                    return Err(VerifyError::BadFrame { pc });
                }
            }
            Op::ReduceTail { .. } => {
                let Some(&enter) = frames.last() else {
                    return Err(VerifyError::BadFrame { pc });
                };
                let reducing = match ops[enter] {
                    Op::EnterRange { reduce, .. }
                    | Op::EnterScan1 { reduce, .. }
                    | Op::EnterScan2 { reduce, .. } => reduce.is_some(),
                    _ => unreachable!("frame stack holds only enter pcs"),
                };
                if !reducing || !matches!(ops.get(pc + 1), Some(Op::Next { .. })) {
                    return Err(VerifyError::BadFrame { pc });
                }
            }
            _ => {}
        }
    }
    if let Some(&enter) = frames.last() {
        return Err(VerifyError::BadFrame { pc: enter });
    }
    Ok(())
}

/// The effect summary of an op region: which slots it reads, writes,
/// defines. Sets are over resolved slots (dense `u32`), so member
/// tests and intersections are cheap and the summary composes by
/// union. Everything is an over-approximation — a `ReadMem` whose name
/// resolves to both a chip and a DRAM slot charges both, a FIFO
/// dequeue counts as a write (it mutates the ring) — which keeps
/// clients sound when they reason "the region cannot touch X".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// DRAM slots the region may read.
    pub dram_reads: BTreeSet<Slot>,
    /// DRAM slots the region may write.
    pub dram_writes: BTreeSet<Slot>,
    /// Chip slots the region may read.
    pub chip_reads: BTreeSet<Slot>,
    /// Chip slots the region may write (including allocation zero-fill
    /// and FIFO-consuming reads).
    pub chip_writes: BTreeSet<Slot>,
    /// Chip slots the region allocates.
    pub chip_allocs: BTreeSet<Slot>,
    /// Variable slots the region binds (loop variables and `Bind`s).
    pub var_defs: BTreeSet<Slot>,
    /// Variable slots the region reads.
    pub var_uses: BTreeSet<Slot>,
}

impl Effects {
    fn operand(&mut self, eops: &[EOp], fused: &[FusedOp], operand: Operand) {
        match operand {
            Operand::Const(_) => {}
            Operand::Var(v) => {
                self.var_uses.insert(v);
            }
            Operand::Gather {
                chip, dram, var, ..
            } => {
                self.chip_reads.insert(chip);
                self.dram_reads.insert(dram);
                self.var_uses.insert(var);
            }
            Operand::Fused(i) => match fused[i as usize] {
                FusedOp::GatherOffset { mem, .. } => self.gather(mem),
                FusedOp::BinGather { a, mem, .. } => {
                    self.var_uses.insert(a);
                    self.gather(mem);
                }
                FusedOp::BinGatherInd {
                    lhs, inner, outer, ..
                } => {
                    self.gather(lhs);
                    self.gather(inner);
                    self.gather(outer);
                }
            },
            Operand::Expr(e) => self.expr(eops, e),
        }
    }

    fn gather(&mut self, g: GatherRef) {
        self.chip_reads.insert(g.chip);
        self.dram_reads.insert(g.dram);
        self.var_uses.insert(g.var);
    }

    /// Attributes every eop of the expression program starting at `e`.
    /// Expression control flow is forward-only with a single
    /// terminating [`EOp::End`], so a linear scan covers both `Select`
    /// branches (an over-approximation of any one dynamic path).
    fn expr(&mut self, eops: &[EOp], e: u32) {
        for eop in &eops[e as usize..] {
            match *eop {
                EOp::Const(_) | EOp::Neg | EOp::Binary(_) => {}
                EOp::Var(v) => {
                    self.var_uses.insert(v);
                }
                EOp::RegRead(r) => {
                    self.chip_reads.insert(r);
                }
                EOp::Deq(fifo) => {
                    // A dequeue consumes: the ring mutates.
                    self.chip_reads.insert(fifo);
                    self.chip_writes.insert(fifo);
                }
                EOp::ReadMem { chip, dram, .. } => {
                    self.chip_reads.insert(chip);
                    self.dram_reads.insert(dram);
                }
                EOp::VarReadMem {
                    chip, dram, var, ..
                } => {
                    self.chip_reads.insert(chip);
                    self.dram_reads.insert(dram);
                    self.var_uses.insert(var);
                }
                EOp::VarBinGather {
                    a,
                    chip,
                    dram,
                    ivar,
                    ..
                } => {
                    self.var_uses.insert(a);
                    self.var_uses.insert(ivar);
                    self.chip_reads.insert(chip);
                    self.dram_reads.insert(dram);
                }
                EOp::VarConstBin { var, .. } => {
                    self.var_uses.insert(var);
                }
                EOp::BranchFalse { .. } | EOp::Jump { .. } => {}
                EOp::End => break,
            }
        }
    }

    /// Folds one op's effects into the summary.
    fn op(&mut self, eops: &[EOp], fused: &[FusedOp], op: &Op) {
        match *op {
            Op::Alloc { slot, .. } => {
                self.chip_allocs.insert(slot);
                // Allocation zero-fills the region: a write.
                self.chip_writes.insert(slot);
            }
            Op::Bind { var, value } => {
                self.operand(eops, fused, value);
                self.var_defs.insert(var);
            }
            Op::Load {
                dst,
                src,
                start,
                end,
            } => {
                self.operand(eops, fused, start);
                self.operand(eops, fused, end);
                self.dram_reads.insert(src);
                self.chip_writes.insert(dst);
            }
            Op::Store {
                dst,
                offset,
                src,
                len,
            } => {
                self.operand(eops, fused, offset);
                self.operand(eops, fused, len);
                self.chip_reads.insert(src);
                self.dram_writes.insert(dst);
            }
            Op::StreamStore {
                dst,
                offset,
                fifo,
                len,
            } => {
                self.operand(eops, fused, offset);
                self.operand(eops, fused, len);
                // Draining consumes the FIFO: read and write.
                self.chip_reads.insert(fifo);
                self.chip_writes.insert(fifo);
                self.dram_writes.insert(dst);
            }
            Op::StoreScalar { dst, index, value } => {
                self.operand(eops, fused, index);
                self.operand(eops, fused, value);
                self.dram_writes.insert(dst);
            }
            Op::WriteMem {
                mem, index, value, ..
            } => {
                self.operand(eops, fused, index);
                self.operand(eops, fused, value);
                self.chip_writes.insert(mem);
            }
            Op::RmwAdd { mem, index, value } => {
                self.operand(eops, fused, index);
                self.operand(eops, fused, value);
                self.chip_reads.insert(mem);
                self.chip_writes.insert(mem);
            }
            Op::SetReg { reg, value } => {
                self.operand(eops, fused, value);
                self.chip_writes.insert(reg);
            }
            Op::Enq { fifo, value } => {
                self.operand(eops, fused, value);
                self.chip_writes.insert(fifo);
            }
            Op::GenBitVector {
                dst,
                src,
                src_start,
                count,
                dim,
            } => {
                self.operand(eops, fused, src_start);
                self.operand(eops, fused, count);
                self.operand(eops, fused, dim);
                // The coordinate source may be a FIFO (consumed) — be
                // conservative and charge a write too.
                self.chip_reads.insert(src);
                self.chip_writes.insert(src);
                self.chip_writes.insert(dst);
            }
            Op::RangeSimple {
                var,
                min,
                max,
                reduce,
                ..
            } => {
                self.operand(eops, fused, min);
                self.operand(eops, fused, max);
                self.var_defs.insert(var);
                if let Some((reg, expr)) = reduce {
                    self.operand(eops, fused, expr);
                    self.chip_reads.insert(reg);
                    self.chip_writes.insert(reg);
                }
            }
            Op::Scan1Simple {
                bv,
                pos_var,
                idx_var,
                reduce,
                ..
            } => {
                self.chip_reads.insert(bv);
                self.var_defs.insert(pos_var);
                self.var_defs.insert(idx_var);
                if let Some((reg, expr)) = reduce {
                    self.operand(eops, fused, expr);
                    self.chip_reads.insert(reg);
                    self.chip_writes.insert(reg);
                }
            }
            Op::Scan2Simple {
                bv_a,
                bv_b,
                vars,
                reduce,
                ..
            } => {
                self.chip_reads.insert(bv_a);
                self.chip_reads.insert(bv_b);
                for v in vars {
                    self.var_defs.insert(v);
                }
                if let Some((reg, expr)) = reduce {
                    self.operand(eops, fused, expr);
                    self.chip_reads.insert(reg);
                    self.chip_writes.insert(reg);
                }
            }
            Op::EnterRange {
                var,
                min,
                max,
                reduce,
                ..
            } => {
                self.operand(eops, fused, min);
                self.operand(eops, fused, max);
                self.var_defs.insert(var);
                if let Some(reg) = reduce {
                    self.chip_reads.insert(reg);
                    self.chip_writes.insert(reg);
                }
            }
            Op::EnterScan1 {
                bv,
                pos_var,
                idx_var,
                reduce,
                ..
            } => {
                self.chip_reads.insert(bv);
                self.var_defs.insert(pos_var);
                self.var_defs.insert(idx_var);
                if let Some(reg) = reduce {
                    self.chip_reads.insert(reg);
                    self.chip_writes.insert(reg);
                }
            }
            Op::EnterScan2 {
                bv_a,
                bv_b,
                vars,
                reduce,
                ..
            } => {
                self.chip_reads.insert(bv_a);
                self.chip_reads.insert(bv_b);
                for v in vars {
                    self.var_defs.insert(v);
                }
                if let Some(reg) = reduce {
                    self.chip_reads.insert(reg);
                    self.chip_writes.insert(reg);
                }
            }
            Op::ReduceTail { expr } => {
                self.operand(eops, fused, expr);
            }
            Op::Next { .. } | Op::Halt => {}
        }
    }
}

/// Computes the effect summary of the ops in `span` (including any
/// operand expressions they reference). Spans are half-open pc ranges;
/// the statement spans recorded by the compiler
/// ([`crate::CompiledProgram::stmt_spans`]) are the intended inputs.
pub fn effects_of_span(ops: &[Op], eops: &[EOp], fused: &[FusedOp], span: Range<usize>) -> Effects {
    let mut eff = Effects::default();
    for op in &ops[span] {
        eff.op(eops, fused, op);
    }
    eff
}

/// Whether a reduce operand is a unit-stride gather shape over loop
/// variable `var` (see [`VecClass::GatherReduce`]).
fn reduce_vectorizable(expr: Operand, var: Slot, fused: &[FusedOp]) -> bool {
    match expr {
        Operand::Gather { var: v, .. } => v == var,
        Operand::Fused(i) => match fused[i as usize] {
            // `a` must be loop-invariant: the splat is read once per
            // chunk, so the loop variable itself is not eligible.
            FusedOp::BinGather { a, mem, .. } => mem.var == var && a != var,
            FusedOp::BinGatherInd { lhs, inner, .. } => lhs.var == var && inner.var == var,
            FusedOp::GatherOffset { .. } => false,
        },
        _ => false,
    }
}

/// Whether `operand` is the `env[var] op c` expression program
/// (`[VarConstBin, End]`), returning its parts. The lowering emits
/// this two-op program for `Var op Const` shapes it has no immediate
/// form for — the offset dense fill `s[j + 1] = ...` and computed fill
/// values `s[j] = j * 2.0` both land here.
fn var_const_bin(operand: Operand, eops: &[EOp]) -> Option<(Slot, f64, BinSOp)> {
    let Operand::Expr(e) = operand else {
        return None;
    };
    match (eops.get(e as usize), eops.get(e as usize + 1)) {
        (Some(&EOp::VarConstBin { var, c, op }), Some(&EOp::End)) => Some((var, c, op)),
        _ => None,
    }
}

/// Whether a scatter index operand is chunkable over loop variable
/// `var`: the variable itself (iota), a unit-stride gather, or — via
/// [`var_const_bin`] — `var + c` with an integral non-negative offset
/// small enough that lane indices computed as `usize` additions equal
/// the scalar engine's f64 arithmetic bit-for-bit (`Add` only; sums
/// stay below 2^33, exactly representable).
fn scatter_index_ok(index: Operand, var: Slot, eops: &[EOp]) -> bool {
    match index {
        // Dense run: `dst[v] = ...`.
        Operand::Var(v) => v == var,
        // Scattered run: `dst[crd[v]] = ...`.
        Operand::Gather { var: v, .. } => v == var,
        // Offset dense run: `dst[v + c] = ...`.
        _ => matches!(
            var_const_bin(index, eops),
            Some((v, c, BinSOp::Add))
                if v == var && c >= 0.0 && c.fract() == 0.0 && c <= 4_294_967_296.0
        ),
    }
}

/// Whether a scatter value operand is chunkable over loop variable
/// `var` (see [`VecClass::Scatter`]); the widened lattice also admits
/// the computed fill `env[var] op c` (evaluated per lane, no
/// cross-lane dependence, so lane-order evaluation is bitwise
/// identical to the scalar loop).
fn scatter_value_ok(value: Operand, var: Slot, eops: &[EOp], fused: &[FusedOp]) -> bool {
    match value {
        Operand::Const(_) | Operand::Var(_) => true,
        Operand::Gather { var: v, .. } => v == var,
        Operand::Fused(i) => match fused[i as usize] {
            FusedOp::BinGather { a, mem, .. } => mem.var == var && a != var,
            _ => false,
        },
        _ => matches!(var_const_bin(value, eops), Some((v, _, _)) if v == var),
    }
}

/// Whether a scatter body's index/value operands are chunkable over
/// loop variable `var` (see [`VecClass::Scatter`]).
fn scatter_vectorizable(
    index: Operand,
    value: Operand,
    var: Slot,
    eops: &[EOp],
    fused: &[FusedOp],
) -> bool {
    scatter_index_ok(index, var, eops) && scatter_value_ok(value, var, eops, fused)
}

/// The gather chip slots an operand may read (for scatter aliasing:
/// a chunked commit must not read a slot an earlier statement in the
/// same iteration writes).
fn operand_gather_chips(operand: Operand, eops: &[EOp], fused: &[FusedOp], out: &mut Vec<Slot>) {
    match operand {
        Operand::Const(_) | Operand::Var(_) => {}
        Operand::Gather { chip, .. } => out.push(chip),
        Operand::Fused(i) => match fused[i as usize] {
            FusedOp::GatherOffset { mem, .. } => out.push(mem.chip),
            FusedOp::BinGather { mem, .. } => out.push(mem.chip),
            FusedOp::BinGatherInd {
                lhs, inner, outer, ..
            } => {
                out.push(lhs.chip);
                out.push(inner.chip);
                out.push(outer.chip);
            }
        },
        Operand::Expr(e) => {
            for eop in &eops[e as usize..] {
                match *eop {
                    EOp::ReadMem { chip, .. }
                    | EOp::VarReadMem { chip, .. }
                    | EOp::VarBinGather { chip, .. } => out.push(chip),
                    EOp::RegRead(r) | EOp::Deq(r) => out.push(r),
                    EOp::End => break,
                    _ => {}
                }
            }
        }
    }
}

/// Whether a multi-statement body qualifies as
/// [`VecClass::MultiScatter`]: every body op is a scatter write with
/// chunkable operands, destination slots are pairwise distinct (two
/// statements scattering into one slot can interleave differently
/// under chunking), and no statement gathers from a slot any statement
/// writes (a chunk reads all lanes before committing any).
fn multi_scatter_ok(body: &[Op], var: Slot, eops: &[EOp], fused: &[FusedOp]) -> bool {
    let mut dsts: Vec<Slot> = Vec::with_capacity(body.len());
    let mut gathers: Vec<Slot> = Vec::new();
    for op in body {
        let (mem, index, value) = match *op {
            Op::WriteMem {
                mem, index, value, ..
            } => (mem, index, value),
            Op::RmwAdd { mem, index, value } => (mem, index, value),
            _ => return false,
        };
        if !scatter_vectorizable(index, value, var, eops, fused) {
            return false;
        }
        if dsts.contains(&mem) {
            return false;
        }
        dsts.push(mem);
        operand_gather_chips(index, eops, fused, &mut gathers);
        operand_gather_chips(value, eops, fused, &mut gathers);
    }
    gathers.iter().all(|g| !dsts.contains(g))
}

/// The vector-eligibility pass: one classification per lowered op.
/// Runs after lowering (the superinstruction shapes it recognizes are
/// produced by the peephole) and stores its verdicts in a side table
/// parallel to `ops`. The flag is a *shape* property of the bytecode;
/// the interpreter still validates the runtime half of the contract
/// (slot allocations, integral unit-step bounds, stream aliasing) on
/// each loop entry and falls back to the scalar loop when it does not
/// hold.
pub fn classify_vec(ops: &[Op], eops: &[EOp], fused: &[FusedOp]) -> Vec<VecClass> {
    ops.iter()
        .enumerate()
        .map(|(pc, op)| match *op {
            Op::RangeSimple {
                var,
                step: 1,
                body,
                body_len,
                reduce,
                ..
            } => {
                if body as usize != pc + 1 {
                    return VecClass::None;
                }
                if body_len == 0 {
                    match reduce {
                        Some((_, expr)) if reduce_vectorizable(expr, var, fused) => {
                            VecClass::GatherReduce
                        }
                        _ => VecClass::None,
                    }
                } else if body_len == 1 && reduce.is_none() {
                    match ops[body as usize] {
                        Op::RmwAdd { index, value, .. } | Op::WriteMem { index, value, .. }
                            if scatter_vectorizable(index, value, var, eops, fused) =>
                        {
                            VecClass::Scatter
                        }
                        _ => VecClass::None,
                    }
                } else if reduce.is_none() {
                    let span = &ops[body as usize..body as usize + body_len as usize];
                    if multi_scatter_ok(span, var, eops, fused) {
                        VecClass::MultiScatter
                    } else {
                        VecClass::None
                    }
                } else {
                    VecClass::None
                }
            }
            _ => VecClass::None,
        })
        .collect()
}

/// How an on-chip slot is allocated across the whole program: the
/// elision pass only trusts a slot whose every `Alloc` agrees on one
/// word size (and an SRAM kind), because the check it removes guards
/// against the *live* length at the time of the write.
#[derive(Clone, Copy, PartialEq)]
enum AllocState {
    Unseen,
    One(usize),
    Conflict,
}

/// The check-elision pass: a side table parallel to `ops`, true at a
/// scatter-write op whose every dynamic access the analysis proves
/// in-bounds. The proof: the write indexes `dst[v]` with the loop
/// variable of an enclosing constant-bound `RangeSimple` whose bounds
/// satisfy `0 <= lo` (integral) and `hi <= K`, where `K` is the single
/// program-wide allocation size of `dst` (SRAM kinds only). Every
/// iterate `v = lo + k*step < hi <= K` is then a valid integral index,
/// so the per-access `index_of` + bounds check in the dispatch loop is
/// redundant. The interpreter still hoists one runtime guard per loop
/// entry (`hi <= live length`, `lo >= 0`) so a stale table can
/// degrade only to the checked path, never to a wild index.
pub fn compute_elide(ops: &[Op]) -> Vec<bool> {
    let mut alloc: std::collections::BTreeMap<Slot, AllocState> = std::collections::BTreeMap::new();
    for op in ops {
        if let Op::Alloc { slot, kind, size } = *op {
            let state = alloc.entry(slot).or_insert(AllocState::Unseen);
            let sized = match kind {
                MemKind::Sram | MemKind::SparseSram => Some(size),
                _ => None,
            };
            *state = match (*state, sized) {
                (AllocState::Unseen, Some(k)) => AllocState::One(k),
                (AllocState::One(k), Some(k2)) if k == k2 => AllocState::One(k),
                _ => AllocState::Conflict,
            };
        }
    }
    let mut elide = vec![false; ops.len()];
    for (pc, op) in ops.iter().enumerate() {
        let Op::RangeSimple {
            var,
            min,
            max,
            step,
            body,
            body_len,
            ..
        } = *op
        else {
            continue;
        };
        if step < 1 || body as usize != pc + 1 {
            continue;
        }
        let (Operand::Const(lo), Operand::Const(hi)) = (min, max) else {
            continue;
        };
        if !(lo >= 0.0 && lo.fract() == 0.0 && hi.is_finite()) {
            continue;
        }
        for bpc in body as usize..body as usize + body_len as usize {
            let (mem, index) = match ops[bpc] {
                Op::WriteMem { mem, index, .. } => (mem, index),
                Op::RmwAdd { mem, index, .. } => (mem, index),
                _ => continue,
            };
            if index != Operand::Var(var) {
                continue;
            }
            if let Some(AllocState::One(k)) = alloc.get(&mem) {
                if hi <= *k as f64 {
                    elide[bpc] = true;
                }
            }
        }
    }
    elide
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_const_bin_recognizes_two_op_program() {
        let eops = vec![
            EOp::VarConstBin {
                var: 3,
                c: 1.0,
                op: BinSOp::Add,
            },
            EOp::End,
        ];
        assert_eq!(
            var_const_bin(Operand::Expr(0), &eops),
            Some((3, 1.0, BinSOp::Add))
        );
        assert_eq!(var_const_bin(Operand::Var(3), &eops), None);
        let longer = vec![
            EOp::VarConstBin {
                var: 3,
                c: 1.0,
                op: BinSOp::Add,
            },
            EOp::Neg,
            EOp::End,
        ];
        assert_eq!(var_const_bin(Operand::Expr(0), &longer), None);
    }

    #[test]
    fn scatter_index_rejects_non_add_and_fractional_offsets() {
        let add = vec![
            EOp::VarConstBin {
                var: 0,
                c: 2.0,
                op: BinSOp::Add,
            },
            EOp::End,
        ];
        assert!(scatter_index_ok(Operand::Expr(0), 0, &add));
        let sub = vec![
            EOp::VarConstBin {
                var: 0,
                c: 2.0,
                op: BinSOp::Sub,
            },
            EOp::End,
        ];
        assert!(!scatter_index_ok(Operand::Expr(0), 0, &sub));
        let frac = vec![
            EOp::VarConstBin {
                var: 0,
                c: 0.5,
                op: BinSOp::Add,
            },
            EOp::End,
        ];
        assert!(!scatter_index_ok(Operand::Expr(0), 0, &frac));
        let huge = vec![
            EOp::VarConstBin {
                var: 0,
                c: 1e18,
                op: BinSOp::Add,
            },
            EOp::End,
        ];
        assert!(!scatter_index_ok(Operand::Expr(0), 0, &huge));
    }

    #[test]
    fn elide_requires_singleton_alloc_and_const_bounds() {
        let loop_over = |min: Operand, max: Operand, allocs: Vec<Op>| {
            let mut ops = allocs;
            let pc = ops.len();
            ops.push(Op::RangeSimple {
                id: 0,
                var: 0,
                min,
                max,
                step: 1,
                body: (pc + 1) as u32,
                body_len: 1,
                reduce: None,
            });
            ops.push(Op::WriteMem {
                mem: 0,
                index: Operand::Var(0),
                value: Operand::Const(1.0),
                random: false,
            });
            ops.push(Op::Halt);
            (ops, pc + 1)
        };
        let alloc = |size| Op::Alloc {
            slot: 0,
            kind: MemKind::Sram,
            size,
        };
        // In-bounds constant loop over a singleton alloc: elided.
        let (ops, wpc) = loop_over(Operand::Const(0.0), Operand::Const(8.0), vec![alloc(8)]);
        assert!(compute_elide(&ops)[wpc]);
        // Bound exceeds the allocation: kept.
        let (ops, wpc) = loop_over(Operand::Const(0.0), Operand::Const(9.0), vec![alloc(8)]);
        assert!(!compute_elide(&ops)[wpc]);
        // Conflicting re-allocation sizes: kept.
        let (ops, wpc) = loop_over(
            Operand::Const(0.0),
            Operand::Const(8.0),
            vec![alloc(8), alloc(16)],
        );
        assert!(!compute_elide(&ops)[wpc]);
        // Non-constant bound: kept.
        let (ops, wpc) = loop_over(Operand::Const(0.0), Operand::Var(1), vec![alloc(8)]);
        assert!(!compute_elide(&ops)[wpc]);
        // Negative lower bound: kept.
        let (ops, wpc) = loop_over(Operand::Const(-1.0), Operand::Const(8.0), vec![alloc(8)]);
        assert!(!compute_elide(&ops)[wpc]);
    }
}
