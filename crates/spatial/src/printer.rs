//! Pretty-printer emitting Spatial-style source text.
//!
//! Renders a [`SpatialProgram`] in the surface syntax of the paper's
//! Fig. 11, so that examples can show generated code and the Table 3
//! lines-of-code comparison can be reproduced by counting printed lines.

use std::fmt::Write as _;

use crate::ir::{Counter, MemKind, SpatialProgram, SpatialStmt};

/// Renders the program as Spatial-style source code.
///
/// # Example
///
/// ```
/// use stardust_spatial::{print_program, SpatialProgram};
///
/// let mut p = SpatialProgram::new("empty");
/// p.add_const("ip", 16);
/// p.add_dram("x_dram", 128);
/// let src = print_program(&p);
/// assert!(src.contains("val ip = 16"));
/// assert!(src.contains("DRAM[T](128)"));
/// assert!(src.contains("Accel {"));
/// ```
pub fn print_program(p: &SpatialProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// Spatial kernel: {}", p.name);
    for (name, value) in &p.consts {
        let _ = writeln!(out, "val {name} = {value}");
    }
    for d in &p.drams {
        match d.kind {
            MemKind::SparseDram => {
                let _ = writeln!(out, "val {} = SparseDRAM[T]({})", d.name, d.size);
            }
            _ => {
                let _ = writeln!(out, "val {} = DRAM[T]({})", d.name, d.size);
            }
        }
    }
    let _ = writeln!(out, "Accel {{");
    for s in &p.accel {
        print_stmt(s, 1, &mut out);
    }
    let _ = writeln!(out, "}}");
    out
}

/// Counts the non-empty, non-comment lines of printed Spatial source — the
/// quantity reported in Table 3's "Spatial LoC" column.
pub fn spatial_loc(p: &SpatialProgram) -> usize {
    print_program(p)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn print_counter(c: &Counter, par: usize) -> String {
    match c {
        Counter::Range { min, max, step, .. } => {
            format!("({min} until {max} by {step} par {par})")
        }
        Counter::Scan1 { bv, .. } => format!("(Scan(par={par}, {bv}.deq))"),
        Counter::Scan2 { op, bv_a, bv_b, .. } => {
            format!("(Scan(par={par}, {op}, {bv_a}.deq, {bv_b}.deq))")
        }
    }
}

fn counter_binders(c: &Counter) -> String {
    c.bound_vars().join(", ")
}

fn print_stmt(s: &SpatialStmt, depth: usize, out: &mut String) {
    match s {
        SpatialStmt::Comment(text) => {
            indent(depth, out);
            let _ = writeln!(out, "// {text}");
        }
        SpatialStmt::Alloc(d) => {
            indent(depth, out);
            let decl = match d.kind {
                MemKind::Sram => format!("SRAM[T]({})", d.size),
                MemKind::SparseSram => format!("SparseSRAM[T]({})", d.size),
                MemKind::Fifo => format!("FIFO[T]({})", d.size),
                MemKind::Reg => "Reg[T](0.to[T])".to_string(),
                MemKind::BitVector => format!("BitVector({})", d.size),
                MemKind::Dram => format!("DRAM[T]({})", d.size),
                MemKind::SparseDram => format!("SparseDRAM[T]({})", d.size),
            };
            let _ = writeln!(out, "val {} = {decl}", d.name);
        }
        SpatialStmt::Load {
            dst,
            src,
            start,
            end,
            par,
        } => {
            indent(depth, out);
            let _ = writeln!(out, "{dst} load {src}({start}::{end} par {par})");
        }
        SpatialStmt::Store {
            dst,
            offset,
            src,
            len,
            par,
        } => {
            indent(depth, out);
            let _ = writeln!(
                out,
                "{dst}({offset}::({offset} + {len}) par {par}) store {src}"
            );
        }
        SpatialStmt::StreamStore {
            dst,
            offset,
            fifo,
            len,
        } => {
            indent(depth, out);
            let _ = writeln!(out, "{dst} stream_store_vec({offset}, {fifo}, {len})");
        }
        SpatialStmt::StoreScalar { dst, index, value } => {
            indent(depth, out);
            let _ = writeln!(out, "{dst}({index}) = {value}");
        }
        SpatialStmt::Bind { var, value } => {
            indent(depth, out);
            let _ = writeln!(out, "val {var} = {value}");
        }
        SpatialStmt::Foreach {
            counter, par, body, ..
        } => {
            indent(depth, out);
            let _ = writeln!(
                out,
                "Foreach {} {{ {} =>",
                print_counter(counter, *par),
                counter_binders(counter)
            );
            for b in body {
                print_stmt(b, depth + 1, out);
            }
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
        SpatialStmt::Reduce {
            reg,
            counter,
            par,
            body,
            expr,
            ..
        } => {
            indent(depth, out);
            let _ = writeln!(
                out,
                "Reduce({reg}){} {{ {} =>",
                print_counter(counter, *par),
                counter_binders(counter)
            );
            for b in body {
                print_stmt(b, depth + 1, out);
            }
            indent(depth + 1, out);
            let _ = writeln!(out, "{expr}");
            indent(depth, out);
            let _ = writeln!(out, "}} {{ _ + _ }}");
        }
        SpatialStmt::WriteMem {
            mem, index, value, ..
        } => {
            indent(depth, out);
            let _ = writeln!(out, "{mem}({index}) = {value}");
        }
        SpatialStmt::RmwAdd { mem, index, value } => {
            indent(depth, out);
            let _ = writeln!(out, "{mem}.atomicAdd({index}, {value})");
        }
        SpatialStmt::SetReg { reg, value } => {
            indent(depth, out);
            let _ = writeln!(out, "{reg} := {value}");
        }
        SpatialStmt::Enq { fifo, value } => {
            indent(depth, out);
            let _ = writeln!(out, "{fifo}.enq({value})");
        }
        SpatialStmt::GenBitVector {
            dst,
            src,
            count,
            dim,
            ..
        } => {
            indent(depth, out);
            let _ = writeln!(
                out,
                "val {dst} = genBitvector({src}, len={count}, dim={dim})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{MemDecl, SExpr};

    fn sample() -> SpatialProgram {
        let mut p = SpatialProgram::new("spmv");
        p.add_const("ip", 16);
        p.add_dram("A_vals_dram", 64);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc", MemKind::Reg, 1)));
        p.accel.push(SpatialStmt::Reduce {
            id: 0,
            reg: "acc".into(),
            counter: Counter::range_to("j", SExpr::var("len")),
            par: 16,
            body: vec![SpatialStmt::Bind {
                var: "v".into(),
                value: SExpr::Deq("A_vals".into()),
            }],
            expr: SExpr::mul(SExpr::var("v"), SExpr::Const(2.0)),
        });
        p.assign_ids();
        p
    }

    #[test]
    fn prints_reduce_pattern() {
        let src = print_program(&sample());
        assert!(src.contains("Reduce(acc)(0 until len by 1 par 16) { j =>"));
        assert!(src.contains("val v = A_vals.deq"));
        assert!(src.contains("{ _ + _ }"));
    }

    #[test]
    fn loc_skips_comments_and_blanks() {
        let mut p = sample();
        let base = spatial_loc(&p);
        p.accel.push(SpatialStmt::Comment("note".into()));
        assert_eq!(spatial_loc(&p), base);
    }

    #[test]
    fn prints_scan_counter() {
        let mut p = SpatialProgram::new("scan");
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan2 {
                op: crate::ir::ScanOp::Or,
                bv_a: "bvA".into(),
                bv_b: "bvB".into(),
                a_pos_var: "pA".into(),
                b_pos_var: "pB".into(),
                out_pos_var: "pO".into(),
                idx_var: "i".into(),
            },
            par: 4,
            body: vec![],
        });
        let src = print_program(&p);
        assert!(src.contains("Scan(par=4, or, bvA.deq, bvB.deq)"));
        assert!(src.contains("pA, pB, pO, i =>"));
    }

    #[test]
    fn prints_memories() {
        let mut p = SpatialProgram::new("mems");
        p.add_sparse_dram("xd", 99);
        for (n, k) in [
            ("a", MemKind::Sram),
            ("b", MemKind::SparseSram),
            ("c", MemKind::Fifo),
            ("d", MemKind::Reg),
            ("e", MemKind::BitVector),
        ] {
            p.accel.push(SpatialStmt::Alloc(MemDecl::new(n, k, 8)));
        }
        let src = print_program(&p);
        assert!(src.contains("SparseDRAM[T](99)"));
        assert!(src.contains("SRAM[T](8)"));
        assert!(src.contains("SparseSRAM[T](8)"));
        assert!(src.contains("FIFO[T](8)"));
        assert!(src.contains("Reg[T](0.to[T])"));
        assert!(src.contains("BitVector(8)"));
    }

    #[test]
    fn prints_stores_and_atomics() {
        let mut p = SpatialProgram::new("s");
        p.add_dram("y", 8);
        p.accel.push(SpatialStmt::StreamStore {
            dst: "y".into(),
            offset: SExpr::Const(0.0),
            fifo: "f".into(),
            len: SExpr::var("n"),
        });
        p.accel.push(SpatialStmt::RmwAdd {
            mem: "acc".into(),
            index: SExpr::var("j"),
            value: SExpr::var("v"),
        });
        let src = print_program(&p);
        assert!(src.contains("stream_store_vec(0, f, n)"));
        assert!(src.contains("acc.atomicAdd(j, v)"));
    }
}
