//! Intra-kernel parallelism: shard one kernel's outer loop across
//! pooled machines.
//!
//! Every optimization before this one made *per-measurement* overhead
//! vanish — rebinding is O(outputs) and pooled checkout is
//! nnz-independent — but a single large kernel still executed on one
//! core. Sparse tensor contractions partition cleanly along the outer
//! coordinate dimension (SpDISTAL's row/coordinate blocks), and the
//! lowered Spatial kernels here already *are* outer loops over
//! slot-resolved tensor slices, so this module splits that loop:
//!
//! 1. [`ShardPlan::analyze`] proves one of a [`CompiledProgram`]'s
//!    top-level `Foreach` loops over a constant integral `Range` safe
//!    to shard — no loop-carried on-chip state, no reads of
//!    body-written DRAM inside the loop, prefix DRAM writes disjoint
//!    from the body's, and (for a non-trailing candidate) a suffix
//!    that depends on nothing the body defines — or reports a typed
//!    [`NotShardable`] reason so callers fall back to serial
//!    execution. The trailing statement is tried first; when it is not
//!    provable, earlier top-level loops are candidates too, with the
//!    prefix/suffix obligations discharged by the compiled program's
//!    effect summaries ([`crate::analysis::effects_of_span`]).
//! 2. [`ShardPlan::compile`] rewrites the loop bounds into `n`
//!    contiguous-slice sub-programs (plus a zero-trip *baseline*
//!    program), compiled against the parent's [`SymbolTable`] so every
//!    shard shares the parent's slot interning and `DramLayout` — and
//!    therefore binds the parent's [`DramImage`] input segment with
//!    zero copies.
//! 3. [`CompiledShards::run_pooled`] checks out up to `n` pooled
//!    machines without blocking ([`MachinePool::try_checkout_n`]
//!    semantics: degraded grants run shards round-robin rather than
//!    waiting), runs them under `std::thread::scope` with the caller's
//!    [`RunBudget`] and fault plan, then merges output segments and
//!    [`ExecStats`] so the result is **bitwise identical** to a serial
//!    run of the parent program.
//!
//! # Why the merge is exact
//!
//! *Iteration values.* Shardability requires integral constant bounds
//! (magnitude < 2⁵⁰) and an integral step, so the engines' `v += step`
//! f64 accumulation is exact and a shard's patched lower bound
//! `lo + start·step` is bit-equal to the value serial iteration would
//! have reached.
//!
//! *DRAM words.* Every machine runs with a write log armed — a bitset
//! over the output segment recording exactly the words its program
//! stored. Runtime DRAM stores are pure overwrites, so replaying each
//! shard's logged words *in shard order* onto the baseline machine
//! reproduces serial last-write-wins without requiring shards to write
//! disjoint regions.
//!
//! *Stats.* Each shard re-runs the (DRAM-silent, deterministic)
//! prefix, so `Σ shard stats` counts the prefix `n` times. The
//! baseline program — the same source with a zero-trip outer loop —
//! measures exactly one prefix, and the merge subtracts `n − 1`
//! baselines: `merged = Σ shards − (n−1)·baseline`.
//!
//! *Prefix and suffix replay.* Each shard program is the full source
//! with only the candidate loop's bounds patched, so every shard (and
//! the baseline) re-runs the statements before *and after* the loop.
//! The analysis makes that replay exact: prefix DRAM writes are
//! disjoint from body writes and deterministic, so every shard logs
//! identical words for them; the suffix depends on nothing the body
//! defines, so it computes identical values on every machine, and its
//! stores land after the body's in every program just as they do
//! serially.
//!
//! *Errors.* Within a shard, iterations run in serial order, and the
//! analysis guarantees iteration-state independence, so the
//! lowest-indexed failing shard fails at exactly the point serial
//! would have failed first — that error is what [`run_pooled`]
//! propagates. The only intentionally non-identical dimensions are the
//! [`RunBudget`], which is armed *per shard* (documented at the call
//! sites): a budget generous enough for the serial run is generous
//! enough for every shard — and, for a non-trailing candidate, the
//! *choice* of error when both a body slice and the (deterministic)
//! suffix would fail: the baseline hits the suffix failure while
//! running concurrently with the shards, and its error takes
//! precedence, whereas serial would have reported the earliest body
//! failure. The failing run still fails either way.
//!
//! [`run_pooled`]: CompiledShards::run_pooled

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use crate::bytecode::CompiledProgram;
use crate::faults::{self, FaultPlan};
use crate::interp::{DramImage, ExecStats, Machine, RunBudget, RunError};
use crate::ir::{Counter, SExpr, SpatialStmt};
use crate::pool::{MachinePool, PoolOccupancy, PooledMachine};
use crate::resolve::Slot;

/// Loop bounds above this magnitude lose the exact-f64-integer
/// guarantee the bound-patching math relies on (2⁵⁰ leaves headroom
/// below the 2⁵³ exact-integer limit for `lo + trips·step`).
const MAX_EXACT_BOUND: f64 = (1i64 << 50) as f64;

/// Why a program cannot be sharded. Every variant is a *fallback*
/// signal, not a failure: callers run the program serially instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotShardable {
    /// The program has no `accel` statements.
    EmptyBody,
    /// The last top-level statement is not a loop.
    TrailingStatementNotLoop,
    /// The last top-level statement is a `Reduce` — splitting it would
    /// reorder the f64 fold.
    TopLevelReduction,
    /// The outer loop iterates a `Scan` counter, not a `Range`.
    NonRangeCounter,
    /// A `Range` bound is not a literal constant.
    NonConstBounds,
    /// A `Range` bound constant is not an integer (or is NaN/∞), so
    /// patched bounds would not be bit-exact.
    NonIntegralBound,
    /// The `Range` step is zero or negative.
    NonPositiveStep,
    /// A bound's magnitude is ≥ 2⁵⁰, past the exact-integer headroom.
    BoundsOutOfRange,
    /// A statement before the candidate loop writes a DRAM array the
    /// loop body also writes — shards re-run the prefix, so a later
    /// shard's replayed prefix store would clobber an earlier shard's
    /// body store. (Prefix writes to arrays the body never touches are
    /// fine: every shard replays them identically.)
    PrefixWritesDram {
        /// The written DRAM array.
        mem: String,
    },
    /// The loop body reads a DRAM array the body also writes, so an
    /// iteration could observe another slice's stores.
    BodyReadsWrittenDram {
        /// The read-and-written DRAM array.
        mem: String,
    },
    /// A statement after the candidate loop depends on state the loop
    /// body defines (a variable it binds, on-chip state it allocates
    /// or writes, or a DRAM array it writes), so each shard's suffix
    /// replay would observe only its own slice.
    SuffixDependsOnBody {
        /// The loop-defined name the suffix depends on.
        name: String,
    },
    /// The loop body mutates on-chip state (memory write, FIFO
    /// enq/deq, register set, reduction) that is not allocated in the
    /// same iteration scope — loop-carried state serial iterations
    /// would share.
    BodyMutatesSharedChip {
        /// The mutated on-chip memory.
        mem: String,
    },
    /// The loop body reads an on-chip memory that *some* iteration
    /// path allocates but the current scope has not — the read would
    /// observe a previous iteration's (or the prefix's) contents.
    BodyReadsStaleChip {
        /// The read on-chip memory.
        mem: String,
    },
    /// The loop body reads a variable bound by a *different* iteration
    /// scope of the body (loop-carried binding).
    BodyReadsLoopCarriedVar {
        /// The variable.
        var: String,
    },
}

impl fmt::Display for NotShardable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotShardable::EmptyBody => write!(f, "program has no accel statements"),
            NotShardable::TrailingStatementNotLoop => {
                write!(f, "last top-level statement is not a loop")
            }
            NotShardable::TopLevelReduction => {
                write!(f, "outer loop is a Reduce (splitting reorders the fold)")
            }
            NotShardable::NonRangeCounter => write!(f, "outer loop counter is not a Range"),
            NotShardable::NonConstBounds => write!(f, "outer Range bounds are not constants"),
            NotShardable::NonIntegralBound => {
                write!(f, "outer Range bound is not an exact integer")
            }
            NotShardable::NonPositiveStep => write!(f, "outer Range step is not positive"),
            NotShardable::BoundsOutOfRange => {
                write!(f, "outer Range bound magnitude exceeds 2^50")
            }
            NotShardable::PrefixWritesDram { mem } => {
                write!(
                    f,
                    "statement before the candidate loop writes DRAM {mem:?} the body also writes"
                )
            }
            NotShardable::BodyReadsWrittenDram { mem } => {
                write!(f, "loop body reads body-written DRAM {mem:?}")
            }
            NotShardable::SuffixDependsOnBody { name } => {
                write!(
                    f,
                    "statement after the candidate loop depends on loop-defined state {name:?}"
                )
            }
            NotShardable::BodyMutatesSharedChip { mem } => {
                write!(f, "loop body mutates shared on-chip state {mem:?}")
            }
            NotShardable::BodyReadsStaleChip { mem } => write!(
                f,
                "loop body reads on-chip memory {mem:?} allocated by another iteration scope"
            ),
            NotShardable::BodyReadsLoopCarriedVar { var } => {
                write!(f, "loop body reads loop-carried variable {var:?}")
            }
        }
    }
}

impl std::error::Error for NotShardable {}

/// An error from a sharded run — either a shard's [`RunError`]
/// (identical to what serial execution would have produced first) or a
/// contained panic.
#[derive(Debug, Clone)]
pub enum ShardError {
    /// A shard's interpreter error.
    Run(RunError),
    /// A shard's execution panicked; the payload message. The
    /// panicking machine was quarantined by the pool.
    Panic(String),
}

impl ShardError {
    /// Whether one clean retry is warranted: injected faults and
    /// contained panics are transient by the fault-injection contract;
    /// deterministic interpreter errors and budget aborts are not.
    fn is_transient(&self) -> bool {
        matches!(
            self,
            ShardError::Panic(_) | ShardError::Run(RunError::InjectedFault { .. })
        )
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Run(e) => write!(f, "shard execution failed: {e}"),
            ShardError::Panic(msg) => write!(f, "shard execution panicked: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<RunError> for ShardError {
    fn from(e: RunError) -> Self {
        ShardError::Run(e)
    }
}

/// A proven-shardable program: the parent, the candidate loop's source
/// statement index, and the outer `Range`'s resolved integral bounds.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    parent: Arc<CompiledProgram>,
    /// Index of the candidate loop in the source `accel` block.
    stmt_idx: usize,
    lo: i64,
    hi_int: i64,
    step: i64,
    trips: u64,
    /// Whether any loop inside the candidate carries a non-`None`
    /// [`crate::VecClass`] — i.e. a shard's hot loop runs chunked, so
    /// [`auto_shard_count_for`] discounts its trips.
    vectorized: bool,
}

impl ShardPlan {
    /// Proves one of `parent`'s top-level loops shardable or explains
    /// why not. The trailing statement is tried first (and its typed
    /// rejection is what an all-candidates failure reports); when it
    /// does not prove, every earlier top-level `Foreach` is tried in
    /// reverse order. Per candidate, the proof obligations:
    ///
    /// - the statement is a `Foreach` over
    ///   `Range { min: Const, max: Const, step ≥ 1 }` with integral
    ///   bounds of magnitude < 2⁵⁰ (exact f64 integer arithmetic);
    /// - the *prefix* (statements before the loop, re-run by every
    ///   shard) writes no DRAM array the loop body writes — proven
    ///   from the compiled effect summaries
    ///   ([`crate::analysis::effects_of_span`]);
    /// - the loop body never reads body-written DRAM, never mutates
    ///   on-chip state allocated outside its own iteration scope,
    ///   never reads on-chip state another iteration scope allocates,
    ///   and never reads a variable bound by another iteration scope —
    ///   i.e. iterations are state-independent;
    /// - the *suffix* (statements after the loop, also re-run by every
    ///   shard) depends on nothing the body defines: no body-bound
    ///   variable, no body-allocated or body-written chip slot, no
    ///   body-written DRAM array — again from the effect summaries.
    pub fn analyze(parent: &Arc<CompiledProgram>) -> Result<ShardPlan, NotShardable> {
        let src = parent.source();
        if src.accel.is_empty() {
            return Err(NotShardable::EmptyBody);
        }
        let trailing = Self::analyze_at(parent, src.accel.len() - 1);
        let mut err = match trailing {
            Ok(plan) => return Ok(plan),
            Err(e) => e,
        };
        for idx in (0..src.accel.len() - 1).rev() {
            if !matches!(src.accel[idx], SpatialStmt::Foreach { .. }) {
                continue;
            }
            match Self::analyze_at(parent, idx) {
                Ok(plan) => return Ok(plan),
                // When the trailing statement was not even a loop, a
                // real candidate's rejection is the informative one.
                Err(e) => {
                    if matches!(err, NotShardable::TrailingStatementNotLoop) {
                        err = e;
                    }
                }
            }
        }
        Err(err)
    }

    /// Runs the per-candidate proof obligations for the top-level
    /// statement at source index `idx` (see [`ShardPlan::analyze`]).
    fn analyze_at(parent: &Arc<CompiledProgram>, idx: usize) -> Result<ShardPlan, NotShardable> {
        let src = parent.source();
        let (counter, outer_body) = match src.accel.get(idx) {
            None => return Err(NotShardable::EmptyBody),
            Some(SpatialStmt::Foreach { counter, body, .. }) => (counter, body),
            Some(SpatialStmt::Reduce { .. }) => return Err(NotShardable::TopLevelReduction),
            Some(_) => return Err(NotShardable::TrailingStatementNotLoop),
        };
        let (var, min, max, step) = match counter {
            Counter::Range {
                var,
                min,
                max,
                step,
            } => (var.as_str(), min, max, *step),
            _ => return Err(NotShardable::NonRangeCounter),
        };
        if step < 1 {
            return Err(NotShardable::NonPositiveStep);
        }
        let lo = const_bound(min)?;
        let hi_int = const_bound(max)?;
        let trips = if hi_int <= lo {
            0
        } else {
            ((hi_int - lo) as u64).div_ceil(step as u64)
        };

        // Map the source statement index to its resolved-body index
        // (resolve drops comments), then to the candidate's op span.
        let resolved_idx = src.accel[..idx]
            .iter()
            .filter(|s| !matches!(s, SpatialStmt::Comment(_)))
            .count();
        let spans = parent.stmt_spans();
        let (cand_start, cand_end) = spans[resolved_idx];
        let (ops, eops, fused) = (parent.ops(), parent.eops(), parent.fused());
        let syms = parent.syms();
        let cand = crate::analysis::effects_of_span(
            ops,
            eops,
            fused,
            cand_start as usize..cand_end as usize,
        );

        // Prefix obligation: re-run DRAM writes must be disjoint from
        // the body's, or a later shard's replayed prefix store would
        // clobber an earlier shard's body store.
        if cand_start > 0 {
            let prefix = crate::analysis::effects_of_span(ops, eops, fused, 0..cand_start as usize);
            if let Some(&slot) = prefix.dram_writes.intersection(&cand.dram_writes).next() {
                return Err(NotShardable::PrefixWritesDram {
                    mem: syms.dram_name(slot).to_string(),
                });
            }
        }

        // Suffix obligation: nothing the body defines may flow into
        // the statements after the loop — each shard re-runs them, and
        // they must compute identical values on every machine. The
        // outer loop variable is exempt: the dispatch loop restores
        // its pre-loop binding on exit, so the suffix observes the
        // prefix's value (or unbound), identically everywhere.
        let suffix_start = cand_end as usize;
        let suffix_end = spans.last().map_or(suffix_start, |&(_, e)| e as usize);
        if suffix_start < suffix_end {
            let suffix =
                crate::analysis::effects_of_span(ops, eops, fused, suffix_start..suffix_end);
            let outer_var = (0..syms.var_count() as Slot).find(|&s| syms.var_name(s) == var);
            let dep = suffix
                .var_uses
                .intersection(&cand.var_defs)
                .find(|&&s| Some(s) != outer_var)
                .map(|&s| syms.var_name(s).to_string())
                .or_else(|| {
                    suffix
                        .chip_reads
                        .intersection(&cand.chip_writes)
                        .next()
                        .map(|&s| syms.chip_name(s).to_string())
                })
                .or_else(|| {
                    suffix
                        .dram_reads
                        .intersection(&cand.dram_writes)
                        .next()
                        .map(|&s| syms.dram_name(s).to_string())
                });
            if let Some(name) = dep {
                return Err(NotShardable::SuffixDependsOnBody { name });
            }
        }

        let meta = BodyMeta::collect(outer_body);
        let mut bound: HashSet<&str> = HashSet::new();
        bound.insert(var);
        let mut local: HashSet<&str> = HashSet::new();
        meta.check_stmts(outer_body, &mut bound, &mut local)?;

        let vectorized = (cand_start as usize..cand_end as usize)
            .any(|pc| parent.vec_class(pc) != crate::VecClass::None);

        Ok(ShardPlan {
            parent: Arc::clone(parent),
            stmt_idx: idx,
            lo,
            hi_int,
            step,
            trips,
            vectorized,
        })
    }

    /// Outer-loop iteration count.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether the candidate loop contains vector-eligible inner loops
    /// (see [`auto_shard_count_for`]).
    pub fn vectorized(&self) -> bool {
        self.vectorized
    }

    /// Source `accel` index of the candidate loop this plan splits.
    pub fn stmt_idx(&self) -> usize {
        self.stmt_idx
    }

    /// Compiles `n`-way shards (clamped to `1..=max(1, trips)`): `n`
    /// sub-programs whose outer bounds cover contiguous slices of the
    /// iteration space, plus the zero-trip baseline. Each is compiled
    /// with the parent's [`crate::SymbolTable`], so slot interning and
    /// the `DramLayout` are identical and the parent's [`DramImage`]
    /// binds directly.
    pub fn compile(&self, n: usize) -> CompiledShards {
        let n = n
            .max(1)
            .min(usize::try_from(self.trips).unwrap_or(usize::MAX).max(1));
        let base = self.trips / n as u64;
        let rem = (self.trips % n as u64) as usize;
        let mut shards = Vec::with_capacity(n);
        let mut start = 0u64;
        for k in 0..n {
            let len = base + u64::from(k < rem);
            let end = start + len;
            // i64 is safe: end ≤ trips and lo + trips·step ≤ hi < 2⁵⁰.
            let s_lo = self.lo + start as i64 * self.step;
            let s_hi = self.lo + end as i64 * self.step;
            shards.push(Arc::new(self.patched(
                &format!("__shard{k}of{n}"),
                s_lo,
                // The last shard keeps the original upper bound (the
                // values coincide for integral bounds; this preserves
                // the program text byte-for-byte at the boundary).
                if k + 1 == n { self.hi_int } else { s_hi },
            )));
            start = end;
        }
        let baseline = Arc::new(self.patched("__shard_baseline", self.lo, self.lo));
        CompiledShards {
            parent: Arc::clone(&self.parent),
            shards,
            baseline,
        }
    }

    /// The parent source with the candidate loop's `Range` bounds
    /// replaced by `[lo, hi)` and the name suffixed for debuggability,
    /// compiled against the parent's symbol table.
    fn patched(&self, suffix: &str, lo: i64, hi: i64) -> CompiledProgram {
        let mut src = self.parent.source().clone();
        src.name.push_str(suffix);
        if let Some(SpatialStmt::Foreach {
            counter: Counter::Range { min, max, .. },
            ..
        }) = src.accel.get_mut(self.stmt_idx)
        {
            *min = SExpr::Const(lo as f64);
            *max = SExpr::Const(hi as f64);
        }
        CompiledProgram::compile_with(&src, self.parent.syms().clone())
    }
}

/// Minimum outer-loop trips one shard must own before the split pays
/// for its pooled checkout, prefix re-run, and write-log merge. Below
/// `2 ×` this, [`auto_shard_count`] keeps the run serial.
pub const MIN_TRIPS_PER_SHARD: u64 = 256;

/// Picks a shard count from a proven trip count and the pool's current
/// occupancy — the sizing policy behind "auto" sharding (a serving
/// layer's `shards == 0`):
///
/// - at most one shard per [`MIN_TRIPS_PER_SHARD`] trips, so tiny
///   loops stay serial rather than paying `n` prefix re-runs to split
///   a few iterations;
/// - at most the pool's current machine count (idle machines, or the
///   shard-vector width for a pool that has not grown yet) — splitting
///   wider than the pool forces round-robin with no added parallelism;
/// - at most the host's available parallelism.
///
/// Returns `1` (serial) whenever any cap says splitting is not worth
/// it. Pure policy: callers decide whether a `1` means "skip the
/// sharded executor entirely".
pub fn auto_shard_count(trips: u64, occ: &PoolOccupancy) -> usize {
    let slots = occ.idle.max(occ.shards).max(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let by_trips = usize::try_from(trips / MIN_TRIPS_PER_SHARD).unwrap_or(usize::MAX);
    by_trips.min(slots).min(cores).max(1)
}

/// Trip discount applied by [`auto_shard_count_for`] when the
/// candidate loop is vector-eligible: a chunked shard retires its
/// iterations roughly this factor faster than the scalar model behind
/// [`MIN_TRIPS_PER_SHARD`] assumes (measured chunk speedups on the
/// bench kernels run 1.3–2.8×; 2 is the conservative round number), so
/// a vectorized shard needs proportionally more trips before the
/// split's fixed overhead amortizes.
pub const VECTOR_SHARD_DISCOUNT: u64 = 2;

/// Vector-aware sizing: like [`auto_shard_count`], but when the plan's
/// candidate loop is proven vector-eligible the trip count is divided
/// by [`VECTOR_SHARD_DISCOUNT`] first — chunked shards finish sooner,
/// so the same trip count justifies fewer shards.
pub fn auto_shard_count_for(plan: &ShardPlan, occ: &PoolOccupancy) -> usize {
    let trips = if plan.vectorized() {
        plan.trips() / VECTOR_SHARD_DISCOUNT
    } else {
        plan.trips()
    };
    auto_shard_count(trips, occ)
}

/// Integral constant bound with exact-f64 headroom, or the typed
/// rejection.
fn const_bound(e: &SExpr) -> Result<i64, NotShardable> {
    match e {
        SExpr::Const(v) => {
            if v.fract() != 0.0 || v.is_nan() {
                Err(NotShardable::NonIntegralBound)
            } else if v.abs() >= MAX_EXACT_BOUND {
                Err(NotShardable::BoundsOutOfRange)
            } else {
                Ok(*v as i64)
            }
        }
        _ => Err(NotShardable::NonConstBounds),
    }
}

/// Body-wide facts the scoped walk consults.
struct BodyMeta<'a> {
    /// DRAM arrays the loop body writes anywhere. (Prefix and suffix
    /// writes are checked separately against the effect summaries; a
    /// body read of an array only the prefix or suffix writes is safe,
    /// because each shard replays the prefix before — and the suffix
    /// after — its body slice, exactly as serial orders them.)
    written_drams: HashSet<&'a str>,
    /// Variables bound anywhere *inside* the outer-loop body. A read
    /// of a name outside this set resolves to the prefix (or the shard
    /// loop variable), which is iteration-independent.
    body_vars: HashSet<&'a str>,
    /// On-chip names `Alloc`'d anywhere inside the body. A read of one
    /// of these outside the current iteration scope would observe
    /// another iteration's contents.
    body_allocs: HashSet<&'a str>,
}

impl<'a> BodyMeta<'a> {
    fn collect(body: &'a [SpatialStmt]) -> BodyMeta<'a> {
        let mut written_drams = HashSet::new();
        let mut body_vars = HashSet::new();
        let mut body_allocs = HashSet::new();
        for stmt in body {
            stmt.visit(&mut |s| match s {
                SpatialStmt::Store { dst, .. }
                | SpatialStmt::StreamStore { dst, .. }
                | SpatialStmt::StoreScalar { dst, .. } => {
                    written_drams.insert(dst.as_str());
                }
                SpatialStmt::Bind { var, .. } => {
                    body_vars.insert(var.as_str());
                }
                SpatialStmt::Alloc(decl) => {
                    body_allocs.insert(decl.name.as_str());
                }
                SpatialStmt::Foreach { counter, .. } | SpatialStmt::Reduce { counter, .. } => {
                    body_vars.extend(counter.bound_vars());
                }
                _ => {}
            });
        }
        BodyMeta {
            written_drams,
            body_vars,
            body_allocs,
        }
    }

    /// Scoped shardability walk. `bound` holds variables surely bound
    /// in the current iteration scope; `local` holds on-chip names
    /// surely `Alloc`'d in it. Nested loop bodies get *clones* of both
    /// sets: a nested loop may run zero trips, so its bindings and
    /// allocations must not validate uses after it — while same-scope
    /// statements (unconditionally executed) propagate forward.
    fn check_stmts(
        &self,
        stmts: &[SpatialStmt],
        bound: &mut HashSet<&'a str>,
        local: &mut HashSet<&'a str>,
    ) -> Result<(), NotShardable> {
        for stmt in stmts {
            self.check_stmt(stmt, bound, local)?;
        }
        Ok(())
    }

    fn check_stmt(
        &self,
        stmt: &SpatialStmt,
        bound: &mut HashSet<&'a str>,
        local: &mut HashSet<&'a str>,
    ) -> Result<(), NotShardable> {
        match stmt {
            SpatialStmt::Alloc(decl) => {
                if let Some(name) = self.body_allocs.get(decl.name.as_str()) {
                    local.insert(name);
                }
                Ok(())
            }
            SpatialStmt::Bind { var, value } => {
                self.check_expr(value, bound, local)?;
                if let Some(name) = self.body_vars.get(var.as_str()) {
                    bound.insert(name);
                }
                Ok(())
            }
            SpatialStmt::Load {
                dst,
                src,
                start,
                end,
                ..
            } => {
                self.check_chip_mutation(dst, local)?;
                self.check_dram_read(src)?;
                self.check_expr(start, bound, local)?;
                self.check_expr(end, bound, local)
            }
            SpatialStmt::Store {
                offset, src, len, ..
            } => {
                // The DRAM write itself is fine (logged + merged);
                // reading the source SRAM follows the stale rule.
                self.check_chip_read(src, local)?;
                self.check_expr(offset, bound, local)?;
                self.check_expr(len, bound, local)
            }
            SpatialStmt::StreamStore {
                offset, fifo, len, ..
            } => {
                // Draining the FIFO mutates it.
                self.check_chip_mutation(fifo, local)?;
                self.check_expr(offset, bound, local)?;
                self.check_expr(len, bound, local)
            }
            SpatialStmt::StoreScalar { index, value, .. } => {
                self.check_expr(index, bound, local)?;
                self.check_expr(value, bound, local)
            }
            SpatialStmt::WriteMem {
                mem, index, value, ..
            } => {
                self.check_chip_mutation(mem, local)?;
                self.check_expr(index, bound, local)?;
                self.check_expr(value, bound, local)
            }
            SpatialStmt::RmwAdd { mem, index, value } => {
                self.check_chip_mutation(mem, local)?;
                self.check_expr(index, bound, local)?;
                self.check_expr(value, bound, local)
            }
            SpatialStmt::SetReg { reg, value } => {
                self.check_chip_mutation(reg, local)?;
                self.check_expr(value, bound, local)
            }
            SpatialStmt::Enq { fifo, value } => {
                self.check_chip_mutation(fifo, local)?;
                self.check_expr(value, bound, local)
            }
            SpatialStmt::GenBitVector {
                dst,
                src,
                src_start,
                count,
                dim,
            } => {
                self.check_chip_mutation(dst, local)?;
                // The source may be a FIFO (drained by the gather), so
                // conservatively treat it as mutated too.
                self.check_chip_mutation(src, local)?;
                self.check_expr(src_start, bound, local)?;
                self.check_expr(count, bound, local)?;
                self.check_expr(dim, bound, local)
            }
            SpatialStmt::Foreach { counter, body, .. } => {
                self.check_counter(counter, bound, local)?;
                let mut child_bound = bound.clone();
                let mut child_local = local.clone();
                for v in counter.bound_vars() {
                    if let Some(name) = self.body_vars.get(v) {
                        child_bound.insert(name);
                    }
                }
                self.check_stmts(body, &mut child_bound, &mut child_local)
            }
            SpatialStmt::Reduce {
                reg,
                counter,
                body,
                expr,
                ..
            } => {
                // The accumulator is read and written across the
                // reduction's own iterations — that is fine *within*
                // one shard iteration, but the register must belong to
                // the enclosing iteration scope.
                self.check_chip_mutation(reg, local)?;
                self.check_counter(counter, bound, local)?;
                let mut child_bound = bound.clone();
                let mut child_local = local.clone();
                for v in counter.bound_vars() {
                    if let Some(name) = self.body_vars.get(v) {
                        child_bound.insert(name);
                    }
                }
                self.check_stmts(body, &mut child_bound, &mut child_local)?;
                self.check_expr(expr, &mut child_bound, &mut child_local)
            }
            SpatialStmt::Comment(_) => Ok(()),
        }
    }

    fn check_counter(
        &self,
        counter: &Counter,
        bound: &mut HashSet<&'a str>,
        local: &mut HashSet<&'a str>,
    ) -> Result<(), NotShardable> {
        match counter {
            Counter::Range { min, max, .. } => {
                self.check_expr(min, bound, local)?;
                self.check_expr(max, bound, local)
            }
            Counter::Scan1 { bv, .. } => self.check_chip_read(bv, local),
            Counter::Scan2 { bv_a, bv_b, .. } => {
                self.check_chip_read(bv_a, local)?;
                self.check_chip_read(bv_b, local)
            }
        }
    }

    fn check_expr(
        &self,
        e: &SExpr,
        bound: &mut HashSet<&'a str>,
        local: &mut HashSet<&'a str>,
    ) -> Result<(), NotShardable> {
        match e {
            SExpr::Const(_) => Ok(()),
            SExpr::Var(name) => {
                if bound.contains(name.as_str()) || !self.body_vars.contains(name.as_str()) {
                    Ok(())
                } else {
                    Err(NotShardable::BodyReadsLoopCarriedVar { var: name.clone() })
                }
            }
            SExpr::ReadMem { mem, index, .. } => {
                // A name is either a DRAM array or an on-chip memory;
                // both rules compose (each is vacuous for the other).
                self.check_dram_read(mem)?;
                self.check_chip_read(mem, local)?;
                self.check_expr(index, bound, local)
            }
            SExpr::Deq(fifo) => self.check_chip_mutation(fifo, local),
            SExpr::RegRead(reg) => self.check_chip_read(reg, local),
            SExpr::Binary { lhs, rhs, .. } => {
                self.check_expr(lhs, bound, local)?;
                self.check_expr(rhs, bound, local)
            }
            SExpr::Neg(inner) => self.check_expr(inner, bound, local),
            SExpr::Select {
                cond,
                if_true,
                if_false,
            } => {
                self.check_expr(cond, bound, local)?;
                self.check_expr(if_true, bound, local)?;
                self.check_expr(if_false, bound, local)
            }
        }
    }

    /// On-chip state mutation: the name must have been `Alloc`'d in
    /// the current iteration scope, else the mutation is loop-carried.
    fn check_chip_mutation(
        &self,
        name: &str,
        local: &HashSet<&'a str>,
    ) -> Result<(), NotShardable> {
        if local.contains(name) {
            Ok(())
        } else {
            Err(NotShardable::BodyMutatesSharedChip {
                mem: name.to_string(),
            })
        }
    }

    /// On-chip read: prefix-allocated state is constant across
    /// iterations (the prefix only ever writes it before the loop) and
    /// fine to read; state allocated *somewhere* in the body must be
    /// allocated in the current scope or the read observes another
    /// iteration.
    fn check_chip_read(&self, name: &str, local: &HashSet<&'a str>) -> Result<(), NotShardable> {
        if self.body_allocs.contains(name) && !local.contains(name) {
            Err(NotShardable::BodyReadsStaleChip {
                mem: name.to_string(),
            })
        } else {
            Ok(())
        }
    }

    /// DRAM read inside the body: rejected if the body writes the
    /// same array anywhere (an iteration could observe another slice's
    /// stores).
    fn check_dram_read(&self, name: &str) -> Result<(), NotShardable> {
        if self.written_drams.contains(name) {
            Err(NotShardable::BodyReadsWrittenDram {
                mem: name.to_string(),
            })
        } else {
            Ok(())
        }
    }
}

/// `n` compiled shard sub-programs plus the zero-trip baseline, ready
/// to run against any [`DramImage`] built for the parent.
#[derive(Debug, Clone)]
pub struct CompiledShards {
    parent: Arc<CompiledProgram>,
    shards: Vec<Arc<CompiledProgram>>,
    baseline: Arc<CompiledProgram>,
}

/// One shard's successful result, extracted off its machine so a
/// worker can reuse the machine for its next round-robin shard.
struct ShardOut {
    stats: ExecStats,
    /// Write-log bitset over the output segment.
    log: Vec<u64>,
    /// Written words in ascending index order (one per set bit).
    words: Vec<f64>,
    /// Wall seconds for this shard's bind + run + extraction, measured
    /// on its worker. Contention-free only when workers don't
    /// oversubscribe cores (e.g. `capacity = Some(1)` serializes them)
    /// — the bench harness uses that mode to compute the critical-path
    /// speedup from honest per-shard times.
    seconds: f64,
}

/// A completed sharded run: the merged machine (outputs readable
/// exactly as after a serial run) plus the merged stats.
pub struct ShardedRun<'p> {
    /// The merge target: a pooled machine whose output segment and
    /// folded stats are bitwise identical to a serial run's. Read
    /// outputs through it and drop it to return it to the pool.
    pub machine: PooledMachine<'p>,
    /// The merged [`ExecStats`] (also installed on `machine`).
    pub stats: ExecStats,
    /// Number of shard sub-programs executed.
    pub shards: usize,
    /// Number of machines the pool granted (workers); `< shards` means
    /// the capacity fallback ran shards round-robin.
    pub workers: usize,
    /// Per-shard wall seconds (bind + run + output extraction),
    /// indexed by shard. Only contention-free — and therefore usable
    /// for critical-path math — when workers didn't oversubscribe
    /// cores (run with `capacity = Some(1)` for clean times).
    pub shard_seconds: Vec<f64>,
    /// Wall seconds of the zero-trip baseline run (the prefix — on a
    /// parallel machine it overlaps the shards).
    pub baseline_seconds: f64,
    /// Wall seconds of the output + stats merge (strictly after every
    /// shard on any machine).
    pub merge_seconds: f64,
}

impl CompiledShards {
    /// Number of shard sub-programs.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The parent these shards were compiled from.
    pub fn parent(&self) -> &Arc<CompiledProgram> {
        &self.parent
    }

    /// Runs the shards on pooled machines and merges the results.
    ///
    /// - `image` is bound to every shard machine: all of them share
    ///   the one `Arc` input segment, zero copies.
    /// - `capacity` bounds total pool checkouts as in
    ///   [`MachinePool::try_checkout_n`]: a degraded grant of `m < n`
    ///   machines runs shards round-robin (`worker w` runs shards
    ///   `w, w+m, …` sequentially) instead of blocking.
    /// - `budget` is armed **per shard** (and once for the baseline).
    ///   Step/word budgets therefore bound each slice, not the sum —
    ///   a budget generous enough for serial is generous enough here.
    /// - The caller's installed fault plan is cloned into each worker
    ///   thread, and a shard whose failure is transient (injected
    ///   fault or contained panic) is retried exactly once on a fresh
    ///   machine; the poisoned one is quarantined by the pool.
    ///
    /// On success the returned [`ShardedRun::machine`] holds output
    /// words and stats bitwise identical to a serial run. On error the
    /// propagated [`ShardError`] is the lowest-indexed failing shard's
    /// (= the error serial execution would have hit first), with a
    /// prefix (baseline) failure taking precedence.
    pub fn run_pooled<'p>(
        &self,
        image: &DramImage,
        pool: &'p MachinePool,
        budget: &RunBudget,
        capacity: Option<u64>,
    ) -> Result<ShardedRun<'p>, ShardError> {
        let n = self.shards.len();
        let machines = pool.try_checkout_each(&self.shards, capacity, false);
        let m = machines.len();
        debug_assert!(m >= 1, "try_checkout_each grants at least one machine");
        let plan = faults::active();

        // Baseline result slot, filled on the caller thread inside the
        // scope so the (tiny) prefix-only run overlaps the shards.
        let mut baseline_res: Option<Result<(PooledMachine<'p>, ExecStats, f64), ShardError>> =
            None;
        let mut worker_outs: Vec<Vec<(usize, Result<ShardOut, ShardError>)>> = Vec::new();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(m);
            for (w, guard) in machines.into_iter().enumerate() {
                let shards = &self.shards;
                let plan = plan.clone();
                handles.push(scope.spawn(move || {
                    let _guard = plan.map(FaultPlan::install);
                    let mut guard = guard;
                    let mut outs = Vec::new();
                    for k in (w..n).step_by(m) {
                        let mut res = run_one_shard(&mut guard, &shards[k], image, budget);
                        if res.as_ref().is_err_and(|e| e.is_transient()) {
                            // Swap in a fresh machine (dropping the
                            // poisoned one quarantines it) and retry
                            // once — the transient one-shot fault was
                            // consumed from this worker's plan clone.
                            guard = pool.checkout(&shards[k]);
                            res = run_one_shard(&mut guard, &shards[k], image, budget);
                        }
                        let failed = res.is_err();
                        outs.push((k, res));
                        if failed {
                            // The run aborted mid-program; the machine
                            // is poisoned and this worker's later
                            // shards cannot change the outcome.
                            break;
                        }
                    }
                    (outs, guard)
                }));
            }

            baseline_res = Some(self.run_baseline(pool, image, budget));

            for handle in handles {
                match handle.join() {
                    Ok((outs, guard)) => {
                        worker_outs.push(outs);
                        // Keep shard machines alive until after the
                        // merge? Not needed: outputs were extracted
                        // per shard. Return the machine to the pool.
                        drop(guard);
                    }
                    Err(payload) => {
                        worker_outs.push(vec![(
                            usize::MAX,
                            Err(ShardError::Panic(panic_message(payload))),
                        )]);
                    }
                }
            }
        });

        let (mut target, baseline_stats, baseline_seconds) = match baseline_res {
            Some(Ok(triple)) => triple,
            Some(Err(e)) => return Err(e),
            None => unreachable!("baseline runs inside the scope"),
        };

        // Order results by shard index; propagate the lowest failure.
        let mut by_shard: Vec<Option<ShardOut>> = Vec::new();
        by_shard.resize_with(n, || None);
        let mut first_err: Option<(usize, ShardError)> = None;
        for (k, res) in worker_outs.into_iter().flatten() {
            match res {
                Ok(out) => {
                    if k < n {
                        by_shard[k] = Some(out);
                    }
                }
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(fk, _)| k < *fk) {
                        first_err = Some((k, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }

        let merge_start = Instant::now();
        let mut shard_stats = Vec::with_capacity(n);
        let mut shard_seconds = Vec::with_capacity(n);
        for (k, slot) in by_shard.iter_mut().enumerate() {
            let out = slot
                .as_mut()
                .unwrap_or_else(|| unreachable!("shard {k} neither succeeded nor failed"));
            target.shard_apply_output(&out.words, &out.log);
            shard_stats.push(std::mem::take(&mut out.stats));
            shard_seconds.push(out.seconds);
        }
        let merged = merge_shard_stats(&shard_stats, &baseline_stats);
        target.shard_set_stats(merged.clone());
        let merge_seconds = merge_start.elapsed().as_secs_f64();

        Ok(ShardedRun {
            machine: target,
            stats: merged,
            shards: n,
            workers: m,
            shard_seconds,
            baseline_seconds,
            merge_seconds,
        })
    }

    /// Runs the zero-trip baseline on the caller thread: its post-run
    /// output segment holds exactly the prefix's and suffix's
    /// (deterministic, body-independent — proven by analysis) stores,
    /// which every shard's log replays identically, and its stats are
    /// exactly one prefix + suffix execution. Retried once on
    /// transient failure like any shard.
    fn run_baseline<'p>(
        &self,
        pool: &'p MachinePool,
        image: &DramImage,
        budget: &RunBudget,
    ) -> Result<(PooledMachine<'p>, ExecStats, f64), ShardError> {
        let start = Instant::now();
        let mut guard = pool.checkout(&self.baseline);
        let mut res = run_one_baseline(&mut guard, &self.baseline, image, budget);
        if res.as_ref().is_err_and(|e| e.is_transient()) {
            guard = pool.checkout(&self.baseline);
            res = run_one_baseline(&mut guard, &self.baseline, image, budget);
        }
        res.map(|stats| (guard, stats, start.elapsed().as_secs_f64()))
    }
}

/// Runs one shard program on a (possibly reused) worker machine with
/// the write log armed, and extracts the logged words so the machine
/// can be rebound for the worker's next shard.
fn run_one_shard(
    machine: &mut Machine,
    prog: &Arc<CompiledProgram>,
    image: &DramImage,
    budget: &RunBudget,
) -> Result<ShardOut, ShardError> {
    let start = Instant::now();
    let stats = run_one(machine, prog, image, budget, true)?;
    let log = machine.shard_take_write_log();
    let out = machine.shard_output_words();
    let mut words = Vec::new();
    for (w, &mask) in log.iter().enumerate() {
        let mut rem = mask;
        let base = w * 64;
        while rem != 0 {
            let ix = base + rem.trailing_zeros() as usize;
            words.push(out[ix]);
            rem &= rem - 1;
        }
    }
    Ok(ShardOut {
        stats,
        log,
        words,
        seconds: start.elapsed().as_secs_f64(),
    })
}

fn run_one_baseline(
    machine: &mut Machine,
    prog: &Arc<CompiledProgram>,
    image: &DramImage,
    budget: &RunBudget,
) -> Result<ExecStats, ShardError> {
    run_one(machine, prog, image, budget, false)
}

/// One contained execution: rebind, budget, run under
/// `catch_unwind` so a panicking shard cannot take down the scope.
fn run_one(
    machine: &mut Machine,
    prog: &Arc<CompiledProgram>,
    image: &DramImage,
    budget: &RunBudget,
    arm_log: bool,
) -> Result<ExecStats, ShardError> {
    machine.clear_exec_state();
    machine.shard_bind_image(image)?;
    machine.set_budget(budget.clone());
    if arm_log {
        machine.shard_arm_write_log();
    }
    match catch_unwind(AssertUnwindSafe(|| machine.run(prog.source()))) {
        Ok(Ok(stats)) => Ok(stats),
        Ok(Err(e)) => Err(ShardError::Run(e)),
        Err(payload) => Err(ShardError::Panic(panic_message(payload))),
    }
}

/// Best-effort panic payload rendering.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// `Σ shards − (n−1)·baseline`: every shard re-ran the prefix, the
/// baseline measured exactly one prefix (its outer loop runs zero
/// trips, contributing nothing — the bounds are constants, so even
/// bound evaluation is ALU-free). Zero-valued map entries are
/// preserved (a zero-length bulk access still creates its key), and
/// node vectors are re-trimmed to the canonical trailing-zero-free
/// form.
fn merge_shard_stats(shards: &[ExecStats], baseline: &ExecStats) -> ExecStats {
    let mut sum = ExecStats::default();
    for s in shards {
        merge_map(&mut sum.dram_reads, &s.dram_reads);
        merge_map(&mut sum.dram_writes, &s.dram_writes);
        ExecStats::merge_node(&mut sum.node_trips, &s.node_trips);
        ExecStats::merge_node(&mut sum.node_dram_read_words, &s.node_dram_read_words);
        ExecStats::merge_node(&mut sum.node_dram_write_words, &s.node_dram_write_words);
        sum.dram_random_reads += s.dram_random_reads;
        sum.dram_random_writes += s.dram_random_writes;
        sum.alu_ops += s.alu_ops;
        sum.sram_reads += s.sram_reads;
        sum.sram_writes += s.sram_writes;
        sum.shuffle_accesses += s.shuffle_accesses;
        sum.fifo_enqs += s.fifo_enqs;
        sum.fifo_deqs += s.fifo_deqs;
        sum.scan_bits += s.scan_bits;
        sum.scan_emits += s.scan_emits;
        sum.bv_gen_bits += s.bv_gen_bits;
        sum.reduce_elems += s.reduce_elems;
    }
    let extra = shards.len().saturating_sub(1) as u64;
    sub_map(&mut sum.dram_reads, &baseline.dram_reads, extra);
    sub_map(&mut sum.dram_writes, &baseline.dram_writes, extra);
    sub_node(&mut sum.node_trips, &baseline.node_trips, extra);
    sub_node(
        &mut sum.node_dram_read_words,
        &baseline.node_dram_read_words,
        extra,
    );
    sub_node(
        &mut sum.node_dram_write_words,
        &baseline.node_dram_write_words,
        extra,
    );
    sum.dram_random_reads -= extra * baseline.dram_random_reads;
    sum.dram_random_writes -= extra * baseline.dram_random_writes;
    sum.alu_ops -= extra * baseline.alu_ops;
    sum.sram_reads -= extra * baseline.sram_reads;
    sum.sram_writes -= extra * baseline.sram_writes;
    sum.shuffle_accesses -= extra * baseline.shuffle_accesses;
    sum.fifo_enqs -= extra * baseline.fifo_enqs;
    sum.fifo_deqs -= extra * baseline.fifo_deqs;
    sum.scan_bits -= extra * baseline.scan_bits;
    sum.scan_emits -= extra * baseline.scan_emits;
    sum.bv_gen_bits -= extra * baseline.bv_gen_bits;
    sum.reduce_elems -= extra * baseline.reduce_elems;
    sum
}

fn merge_map(into: &mut HashMap<String, u64>, from: &HashMap<String, u64>) {
    for (k, v) in from {
        *into.entry(k.clone()).or_insert(0) += v;
    }
}

/// Subtracts `extra` copies of the baseline's per-array counts. Every
/// shard's map is a superset of the baseline's keys (each shard re-ran
/// the prefix), so subtraction never needs to create a key, and
/// entries that reach zero stay — serial's fold keeps them too.
fn sub_map(into: &mut HashMap<String, u64>, baseline: &HashMap<String, u64>, extra: u64) {
    for (k, v) in baseline {
        if let Some(slot) = into.get_mut(k) {
            *slot -= extra * v;
        }
    }
}

/// Subtracts `extra` copies of the baseline's per-node counters, then
/// re-trims trailing zeros so the vector stays canonical.
fn sub_node(into: &mut Vec<u64>, baseline: &[u64], extra: u64) {
    for (slot, v) in into.iter_mut().zip(baseline) {
        *slot -= extra * v;
    }
    while into.last() == Some(&0) {
        into.pop();
    }
}
