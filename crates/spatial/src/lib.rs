//! A Spatial-like parallel-pattern IR with executable semantics.
//!
//! Stardust lowers scheduled CIN to the Spatial programming model
//! (Koeplinger et al., PLDI 2018): `Foreach`/`Reduce` parallel patterns
//! with explicit parallelization factors, explicit DRAM/SRAM/FIFO/register
//! memories, and Capstan's declarative-sparse `Scan` patterns over packed
//! bit vectors (paper §3.2, Fig. 7 and Fig. 9).
//!
//! Because the authors' Spatial/SARA/Capstan toolchain is closed, this
//! crate gives the IR *executable semantics*: the [`interp`] module runs a
//! [`SpatialProgram`] against DRAM contents, producing both results (so
//! compiled kernels can be checked against the CIN oracle) and an event
//! trace ([`interp::ExecStats`]) that the Capstan simulator turns into
//! cycle counts. The [`printer`] renders Fig.-11-style Spatial source,
//! which drives the paper's lines-of-code comparison (Table 3).
//!
//! Execution goes through a two-stage compilation pipeline: the
//! [`resolve`] link pass interns names into dense slots and flattens
//! expression trees into an arena, then the [`bytecode`] pass lowers
//! the resolved tree into a flat op vector with explicit jump targets
//! and fused superinstructions. The interpreting [`Machine`] runs the
//! bytecode with a non-recursive dispatch loop and never hashes a
//! string on its hot path; compiled artifacts are shared behind `Arc`
//! (and cached by [`ProgramCache`]) so harness sweeps re-bind machines
//! without re-linking. The PR-1 recursive resolved-tree walker
//! ([`Machine::run_tree`]) and the original name-keyed walker
//! ([`ReferenceMachine`]) are preserved as differential-testing oracles
//! and benchmark baselines.
//!
//! The [`analysis`] module is the static layer over the lowered form:
//! a structural verifier gating every compile, effect summaries the
//! shard planner and vector classifier share, and the
//! bounds-check-elision table the dispatch loop consults.

// Every unsafe operation inside an unsafe fn must carry its own
// unsafe block (and, per the clippy CI gate, its own SAFETY comment).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod analysis;
pub mod bytecode;
pub mod faults;
pub mod interp;
pub mod ir;
pub mod pool;
pub mod printer;
pub mod reference;
pub mod resolve;
pub mod shard;
pub mod validate;
pub mod vector;

pub use analysis::{effects_of_span, verify, Effects, VerifyCtx, VerifyError};
pub use bytecode::{CompiledProgram, ProgramCache, VecClass};
pub use faults::{FaultParseError, FaultPlan};
pub use interp::{
    BudgetResource, CancelFlag, DramImage, DramImageBuilder, ExecStats, Machine, MachineSnapshot,
    RunBudget, RunError, DRAM_WORD_BYTES,
};
pub use ir::{BinSOp, Counter, MemDecl, MemKind, SExpr, ScanOp, SpatialProgram, SpatialStmt};
pub use pool::{MachinePool, PoolOccupancy, PoolStats, PooledMachine};
pub use printer::print_program;
pub use reference::ReferenceMachine;
pub use resolve::{resolve, DramLayout, DramRegion, ResolvedProgram, Slot, SymbolTable};
pub use shard::{
    auto_shard_count, auto_shard_count_for, CompiledShards, NotShardable, ShardError, ShardPlan,
    ShardedRun, MIN_TRIPS_PER_SHARD, VECTOR_SHARD_DISCOUNT,
};
pub use validate::{validate, ValidationError};
