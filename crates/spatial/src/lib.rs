//! A Spatial-like parallel-pattern IR with executable semantics.
//!
//! Stardust lowers scheduled CIN to the Spatial programming model
//! (Koeplinger et al., PLDI 2018): `Foreach`/`Reduce` parallel patterns
//! with explicit parallelization factors, explicit DRAM/SRAM/FIFO/register
//! memories, and Capstan's declarative-sparse `Scan` patterns over packed
//! bit vectors (paper §3.2, Fig. 7 and Fig. 9).
//!
//! Because the authors' Spatial/SARA/Capstan toolchain is closed, this
//! crate gives the IR *executable semantics*: the [`interp`] module runs a
//! [`SpatialProgram`] against DRAM contents, producing both results (so
//! compiled kernels can be checked against the CIN oracle) and an event
//! trace ([`interp::ExecStats`]) that the Capstan simulator turns into
//! cycle counts. The [`printer`] renders Fig.-11-style Spatial source,
//! which drives the paper's lines-of-code comparison (Table 3).

pub mod interp;
pub mod ir;
pub mod printer;
pub mod validate;

pub use interp::{ExecStats, Machine, RunError};
pub use ir::{
    BinSOp, Counter, MemDecl, MemKind, ScanOp, SExpr, SpatialProgram, SpatialStmt,
};
pub use printer::print_program;
pub use validate::{validate, ValidationError};
