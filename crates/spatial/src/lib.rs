//! A Spatial-like parallel-pattern IR with executable semantics.
//!
//! Stardust lowers scheduled CIN to the Spatial programming model
//! (Koeplinger et al., PLDI 2018): `Foreach`/`Reduce` parallel patterns
//! with explicit parallelization factors, explicit DRAM/SRAM/FIFO/register
//! memories, and Capstan's declarative-sparse `Scan` patterns over packed
//! bit vectors (paper §3.2, Fig. 7 and Fig. 9).
//!
//! Because the authors' Spatial/SARA/Capstan toolchain is closed, this
//! crate gives the IR *executable semantics*: the [`interp`] module runs a
//! [`SpatialProgram`] against DRAM contents, producing both results (so
//! compiled kernels can be checked against the CIN oracle) and an event
//! trace ([`interp::ExecStats`]) that the Capstan simulator turns into
//! cycle counts. The [`printer`] renders Fig.-11-style Spatial source,
//! which drives the paper's lines-of-code comparison (Table 3).
//!
//! Execution goes through the [`resolve`] link pass first: names are
//! interned into dense slots and expression trees are flattened into an
//! arena, so the interpreting [`Machine`] never hashes a string on its
//! hot path. The original name-keyed tree walker is preserved as
//! [`ReferenceMachine`] and serves as the differential-testing oracle
//! and benchmark baseline for the resolved engine.

pub mod interp;
pub mod ir;
pub mod printer;
pub mod reference;
pub mod resolve;
pub mod validate;

pub use interp::{ExecStats, Machine, RunError};
pub use ir::{BinSOp, Counter, MemDecl, MemKind, SExpr, ScanOp, SpatialProgram, SpatialStmt};
pub use printer::print_program;
pub use reference::ReferenceMachine;
pub use resolve::{resolve, ResolvedProgram, SymbolTable};
pub use validate::{validate, ValidationError};
