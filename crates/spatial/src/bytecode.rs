//! Stage two of the execution pipeline: flat bytecode over resolved slots.
//!
//! The [`crate::resolve`] pass removes string hashing from the hot path,
//! but the resolved form is still a statement *tree*: executing it means
//! a recursive `exec` call per statement and a closure invocation per
//! loop iteration, with `Vec<ResolvedStmt>` pointer chasing on every
//! level. This module lowers a [`ResolvedProgram`] into a dense
//! [`CompiledProgram`]:
//!
//! - every statement becomes one fixed-size [`Op`] in a flat `Vec<Op>`,
//!   with loops compiled to explicit enter/advance ops carrying jump
//!   targets (`Foreach`, `Reduce`, and the `Scan1`/`Scan2` co-iteration
//!   counters all share one frame-based protocol), and
//! - every expression tree becomes a postfix [`EOp`] program evaluated
//!   with a small value stack, with `Select` lowered to conditional
//!   jumps so the untaken side is skipped exactly as the tree walker
//!   skips it.
//!
//! [`crate::Machine::run`] then executes the op vector with a program
//! counter and a dense frame stack — no recursion, no per-iteration
//! closure, branch-predictable dispatch. The recursive resolved-tree
//! walker survives as [`crate::Machine::run_tree`] and the original
//! string-keyed engine as [`crate::ReferenceMachine`]; differential
//! tests hold all three to byte-identical DRAM images and identical
//! [`crate::ExecStats`].
//!
//! Compilation is pure: a [`CompiledProgram`] depends only on the source
//! program, so it is shared behind `Arc` and cached by program identity
//! in a [`ProgramCache`]. Harnesses that sweep one kernel across many
//! datasets or memory models re-bind a fresh [`crate::Machine`] per run
//! without paying the link/lower cost again.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::interp::Machine;
use crate::ir::{BinSOp, MemKind, ScanOp, SpatialProgram};
use crate::resolve::{
    resolve, ExprId, ResolvedCounter, ResolvedExpr, ResolvedProgram, ResolvedStmt, Slot,
    SymbolTable,
};

/// Index of an [`Op`] in a compiled program (a program-counter value).
pub type OpId = u32;

/// Maximum nested-loop rank allowed inside one superinstruction
/// ([`Op::RangeSimple`], [`Op::Scan1Simple`], [`Op::Scan2Simple`]).
/// Caps the executor's recursion at a constant depth; deeper nests
/// fall back to the frame-stack protocol. Rank 2 keeps the dominant
/// sparse shapes — a dense row loop over a per-row scan or reduction —
/// entirely inside one superinstruction.
pub const MAX_SIMPLE_RANK: u32 = 2;

/// Index into the flat expression-op array where an expression program
/// starts; evaluation runs to the matching [`EOp::End`].
pub type ERef = u32;

/// One postfix expression op. Evaluation pushes/pops a value stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EOp {
    /// Push a literal.
    Const(f64),
    /// Push a bound variable.
    Var(Slot),
    /// Push a register's value.
    RegRead(Slot),
    /// Dequeue from a FIFO and push the element.
    Deq(Slot),
    /// Pop an index, read `mem[index]`, push the value. Carries both
    /// resolutions of the name (on-chip checked first, then the
    /// SparseDRAM random-read fallback), like
    /// [`ResolvedExpr::ReadMem`].
    ReadMem {
        /// On-chip slot of the name.
        chip: Slot,
        /// DRAM slot of the same name.
        dram: Slot,
        /// Whether the access is data-dependent.
        random: bool,
    },
    /// Pop, negate, push.
    Neg,
    /// Pop rhs then lhs, apply, push.
    Binary(BinSOp),
    /// Fused `Var` + `ReadMem`: read `mem[env[var]]` and push, saving a
    /// dispatch and a stack round-trip on the commonest gather shape.
    VarReadMem {
        /// On-chip slot of the name.
        chip: Slot,
        /// DRAM slot of the same name.
        dram: Slot,
        /// Whether the access is data-dependent.
        random: bool,
        /// Index variable slot.
        var: Slot,
    },
    /// Fused `Var` + `VarReadMem` + `Binary`: push
    /// `env[a] op mem[env[ivar]]` — the scale-by-gathered-value shape
    /// at the heart of scatter-accumulate kernels.
    VarBinGather {
        /// Left operand variable slot.
        a: Slot,
        /// Operator.
        op: BinSOp,
        /// On-chip slot of the gathered name.
        chip: Slot,
        /// DRAM slot of the same name.
        dram: Slot,
        /// Whether the access is data-dependent.
        random: bool,
        /// Gather index variable slot.
        ivar: Slot,
    },
    /// Fused `Var` + `Const` + `Binary`: push `env[var] op c` (the
    /// ubiquitous `i + 1` position arithmetic).
    VarConstBin {
        /// Left operand variable slot.
        var: Slot,
        /// Right operand constant.
        c: f64,
        /// Operator.
        op: BinSOp,
    },
    /// Pop the mux condition (counting its ALU op); fall through to the
    /// true side when nonzero, jump to `target` (the false side)
    /// otherwise.
    BranchFalse {
        /// First op of the false side.
        target: ERef,
    },
    /// Unconditional jump (ends the true side of a `Select`).
    Jump {
        /// Jump destination.
        target: ERef,
    },
    /// End of this expression program; the result is the top of stack.
    End,
}

/// A statement operand, resolved at compile time to an immediate form
/// whenever the expression is a leaf (or the ubiquitous single-gather
/// `mem[var]`), so the executor skips the expression interpreter for
/// the common cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A literal.
    Const(f64),
    /// A bound variable.
    Var(Slot),
    /// `mem[env[var]]` — the dominant sparse-access shape.
    Gather {
        /// On-chip slot of the name.
        chip: Slot,
        /// DRAM slot of the same name.
        dram: Slot,
        /// Whether the access is data-dependent.
        random: bool,
        /// Index variable slot.
        var: Slot,
    },
    /// A recognized multi-access shape, stored out of line in the
    /// program's [`FusedOp`] table to keep this enum small.
    Fused(u32),
    /// Anything else: a postfix expression program.
    Expr(ERef),
}

/// A memory reference inside a [`FusedOp`]: `mem[env[var]]` with both
/// name resolutions, exactly like [`EOp::VarReadMem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatherRef {
    /// On-chip slot of the name.
    pub chip: Slot,
    /// DRAM slot of the same name.
    pub dram: Slot,
    /// Whether the access is data-dependent.
    pub random: bool,
    /// Index variable slot.
    pub var: Slot,
}

/// Compile-time-recognized compound operand shapes, evaluated without
/// entering the expression interpreter. Each reproduces the unfused
/// evaluation order (and therefore statistics and error identity)
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedOp {
    /// `mem[env[var] op c]` — the compressed-level bound shape
    /// (`pos[i + 1]`).
    GatherOffset {
        /// The gathered memory; its `var` is the index variable.
        mem: GatherRef,
        /// Index offset constant.
        c: f64,
        /// Index operator.
        op: BinSOp,
    },
    /// `env[a] op mem[env[var]]` — the scale-by-gathered-value shape
    /// (`vb * C_vals[jj]`).
    BinGather {
        /// Left operand variable slot.
        a: Slot,
        /// Operator.
        op: BinSOp,
        /// The gathered memory.
        mem: GatherRef,
    },
    /// `lhs[env[v]] op outer[inner[env[w]]]` — the dot-product-gather
    /// shape of CSR SpMV (`vals[j] * x[crd[j]]`, the operand gathered
    /// through the shuffle network).
    BinGatherInd {
        /// Left-hand gathered memory.
        lhs: GatherRef,
        /// Operator.
        op: BinSOp,
        /// Inner (index-producing) gathered memory.
        inner: GatherRef,
        /// Outer memory indexed by the inner gather's result.
        outer: GatherRef,
    },
}

/// One statement op of the flat program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// On-chip allocation (or the runtime rejection of an off-chip kind).
    Alloc {
        /// Chip slot being allocated.
        slot: Slot,
        /// Declared kind.
        kind: MemKind,
        /// Capacity in words (bits for bit vectors).
        size: usize,
    },
    /// `val var = expr`.
    Bind {
        /// Bound variable slot.
        var: Slot,
        /// Value expression.
        value: Operand,
    },
    /// Bulk DRAM → on-chip load.
    Load {
        /// Destination chip slot.
        dst: Slot,
        /// Source DRAM slot.
        src: Slot,
        /// First word index.
        start: Operand,
        /// One-past-last word index.
        end: Operand,
    },
    /// Bulk on-chip → DRAM store.
    Store {
        /// Destination DRAM slot.
        dst: Slot,
        /// Word offset into the destination.
        offset: Operand,
        /// Source chip slot.
        src: Slot,
        /// Number of words.
        len: Operand,
    },
    /// FIFO → DRAM drain.
    StreamStore {
        /// Destination DRAM slot.
        dst: Slot,
        /// Word offset.
        offset: Operand,
        /// Source FIFO chip slot.
        fifo: Slot,
        /// Number of elements.
        len: Operand,
    },
    /// Single-element DRAM write.
    StoreScalar {
        /// Destination DRAM slot.
        dst: Slot,
        /// Word index.
        index: Operand,
        /// Stored value.
        value: Operand,
    },
    /// On-chip write.
    WriteMem {
        /// Destination chip slot.
        mem: Slot,
        /// Word index.
        index: Operand,
        /// Stored value.
        value: Operand,
        /// Whether the access is data-dependent.
        random: bool,
    },
    /// On-chip atomic add.
    RmwAdd {
        /// Destination chip slot.
        mem: Slot,
        /// Word index.
        index: Operand,
        /// Added value.
        value: Operand,
    },
    /// Register write.
    SetReg {
        /// Register chip slot.
        reg: Slot,
        /// Stored value.
        value: Operand,
    },
    /// FIFO enqueue.
    Enq {
        /// Destination FIFO chip slot.
        fifo: Slot,
        /// Enqueued value.
        value: Operand,
    },
    /// Bit-vector generation from a coordinate stream.
    GenBitVector {
        /// Destination bit-vector chip slot.
        dst: Slot,
        /// Source chip slot (FIFO or SRAM).
        src: Slot,
        /// Starting word within `src`.
        src_start: Operand,
        /// Number of coordinates.
        count: Operand,
        /// Bit-vector length.
        dim: Operand,
    },
    /// A dense `Range` loop whose body is pure straight-line code (and
    /// whose optional reduction tail is one expression): the whole loop
    /// runs as a native loop inside a single dispatch — no frame, no
    /// per-iteration `Next`. This is the dominant inner-loop shape of
    /// sparse kernels (per-row reductions, scatter-accumulates).
    RangeSimple {
        /// Pattern node id (trip statistics).
        id: usize,
        /// Loop variable slot.
        var: Slot,
        /// Inclusive lower bound.
        min: Operand,
        /// Exclusive upper bound.
        max: Operand,
        /// Step (positive).
        step: i64,
        /// First body op (always this op's pc + 1).
        body: OpId,
        /// Number of body ops; execution resumes past them.
        body_len: u32,
        /// `(accumulator register, reduced expression)` when the loop
        /// is a `Reduce`.
        reduce: Option<(Slot, Operand)>,
    },
    /// A single bit-vector `Scan` loop whose body is straight-line
    /// (or nests only further superinstructions): the vector is
    /// snapshotted once and its set bits iterate natively — no frame,
    /// no per-emit `Next` dispatch. This is the inner-loop shape of
    /// Capstan-style declarative-sparse kernels.
    Scan1Simple {
        /// Pattern node id (trip statistics).
        id: usize,
        /// Scanned bit vector (chip slot).
        bv: Slot,
        /// Position variable slot.
        pos_var: Slot,
        /// Dense-index variable slot.
        idx_var: Slot,
        /// First body op (always this op's pc + 1).
        body: OpId,
        /// Number of body ops; execution resumes past them.
        body_len: u32,
        /// `(accumulator register, reduced expression)` when the loop
        /// is a `Reduce`.
        reduce: Option<(Slot, Operand)>,
    },
    /// A two-input co-iteration `Scan` loop in superinstruction form
    /// (see [`Op::Scan1Simple`]): the dominant shape of sparse-sparse
    /// union and intersection kernels.
    Scan2Simple {
        /// Pattern node id (trip statistics).
        id: usize,
        /// Combination operator.
        op: ScanOp,
        /// First bit vector (chip slot).
        bv_a: Slot,
        /// Second bit vector (chip slot).
        bv_b: Slot,
        /// `[a_pos, b_pos, out_pos, idx]` variable slots.
        vars: [Slot; 4],
        /// First body op (always this op's pc + 1).
        body: OpId,
        /// Number of body ops; execution resumes past them.
        body_len: u32,
        /// `(accumulator register, reduced expression)` when the loop
        /// is a `Reduce`.
        reduce: Option<(Slot, Operand)>,
    },
    /// Enter a dense `Range` loop: evaluate the bounds, push a frame,
    /// and either fall into the body or jump to `exit` on zero trips.
    EnterRange {
        /// Pattern node id (trip statistics).
        id: usize,
        /// Loop variable slot.
        var: Slot,
        /// Inclusive lower bound.
        min: Operand,
        /// Exclusive upper bound.
        max: Operand,
        /// Step (positive).
        step: i64,
        /// Reduction register when this loop is a `Reduce`.
        reduce: Option<Slot>,
        /// First op after the loop.
        exit: OpId,
    },
    /// Enter a single bit-vector scan loop.
    EnterScan1 {
        /// Pattern node id.
        id: usize,
        /// Scanned bit vector (chip slot).
        bv: Slot,
        /// Position variable slot.
        pos_var: Slot,
        /// Dense-index variable slot.
        idx_var: Slot,
        /// Reduction register when this loop is a `Reduce`.
        reduce: Option<Slot>,
        /// First op after the loop.
        exit: OpId,
    },
    /// Enter a two-input co-iteration scan loop.
    EnterScan2 {
        /// Pattern node id.
        id: usize,
        /// Combination operator.
        op: ScanOp,
        /// First bit vector (chip slot).
        bv_a: Slot,
        /// Second bit vector (chip slot).
        bv_b: Slot,
        /// `[a_pos, b_pos, out_pos, idx]` variable slots.
        vars: [Slot; 4],
        /// Reduction register when this loop is a `Reduce`.
        reduce: Option<Slot>,
        /// First op after the loop.
        exit: OpId,
    },
    /// Fold the per-iteration reduction expression into the innermost
    /// frame's accumulator (emitted between a `Reduce` body and its
    /// `Next`).
    ReduceTail {
        /// The reduced expression.
        expr: Operand,
    },
    /// Advance the innermost loop frame: jump back to `body` for the
    /// next iteration, or pop the frame and fall through when done.
    Next {
        /// First op of the loop body.
        body: OpId,
    },
    /// End of program.
    Halt,
}

/// A fully compiled Spatial program: the source, its symbol table, the
/// resolved (tree) form kept for the oracle engine, and the flat
/// bytecode. Immutable once built — share it behind [`Arc`] and bind as
/// many [`Machine`]s to it as needed.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    source: SpatialProgram,
    syms: SymbolTable,
    resolved: ResolvedProgram,
    ops: Vec<Op>,
    eops: Vec<EOp>,
    fused: Vec<FusedOp>,
    /// A pristine zeroed input segment sized per the DRAM layout.
    /// Freshly constructed machines share it behind this `Arc`
    /// (copy-on-write), so creating a machine never allocates or zeroes
    /// the input segment.
    zero_input: Arc<Vec<f64>>,
    /// Per-op vector-eligibility classification (parallel to `ops`),
    /// computed by [`crate::analysis::classify_vec`] after lowering.
    /// The interpreter's vector tier consults this flag before
    /// attempting a chunked run, so ineligible loops never pay for
    /// runtime shape analysis.
    vec: Vec<VecClass>,
    /// Per-op bounds-check-elision flags (parallel to `ops`), computed
    /// by [`crate::analysis::compute_elide`]: true at a scatter write
    /// every dynamic access of which the static analysis proves within
    /// its destination's allocated extent.
    elide: Vec<bool>,
    /// Half-open `[start, end)` op spans of each top-level resolved
    /// statement, in statement order — the correspondence the effect
    /// analysis uses to reason about prefix/body/suffix regions of a
    /// program.
    stmt_spans: Vec<(OpId, OpId)>,
}

/// Vector-eligibility classification of one lowered op: whether the
/// peephole recognized a shape the data-parallel tier
/// ([`crate::vector`]) can chunk. The flag is a *shape* property of the
/// bytecode; the interpreter still validates the runtime half of the
/// contract (slot allocations, integral unit-step bounds, stream
/// aliasing) on each loop entry and falls back to the scalar loop when
/// it does not hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecClass {
    /// Not a vectorizable shape.
    None,
    /// An empty-body unit-step [`Op::RangeSimple`] reducing a
    /// unit-stride gather shape: a plain gather, the
    /// scale-by-gathered-value [`FusedOp::BinGather`], or the SpMV
    /// dot-product [`FusedOp::BinGatherInd`] — all indexed by the loop
    /// variable itself.
    GatherReduce,
    /// A unit-step [`Op::RangeSimple`] whose single body op is an
    /// on-chip scatter write ([`Op::WriteMem`]/[`Op::RmwAdd`]) with a
    /// dense (loop-variable, optionally constant-offset) or
    /// unit-stride-gathered index and a chunkable value operand — the
    /// Gustavson scatter-accumulate inner loop of SpMSpM, or a dense
    /// fill/accumulate run.
    Scatter,
    /// A unit-step [`Op::RangeSimple`] whose body is *several* scatter
    /// writes, each individually [`VecClass::Scatter`]-shaped, with
    /// pairwise-distinct destination slots none of which any statement
    /// gathers from — the multi-output fill loops of multi-statement
    /// kernel bodies (classified by [`crate::analysis::classify_vec`]).
    MultiScatter,
}

impl CompiledProgram {
    /// Links and lowers a program against a fresh symbol table.
    pub fn compile(program: &SpatialProgram) -> Self {
        Self::compile_with(program, SymbolTable::default())
    }

    /// Links and lowers a program against (and extending) an existing
    /// symbol table, so slots from a previous compilation stay valid —
    /// the relink path when a [`Machine`] is handed a new program.
    pub fn compile_with(program: &SpatialProgram, mut syms: SymbolTable) -> Self {
        let resolved = resolve(program, &mut syms);
        let mut lowering = Lowering {
            resolved: &resolved,
            ops: Vec::new(),
            eops: Vec::new(),
            fused: Vec::new(),
            fuse_barrier: 0,
        };
        let mut stmt_spans = Vec::with_capacity(resolved.body.len());
        for stmt in &resolved.body {
            let start = lowering.ops.len() as OpId;
            lowering.stmt(stmt);
            stmt_spans.push((start, lowering.ops.len() as OpId));
        }
        lowering.ops.push(Op::Halt);
        let Lowering {
            ops, eops, fused, ..
        } = lowering;
        let zero_input = Arc::new(vec![0.0; resolved.dram_layout.input_words]);
        let vec = crate::analysis::classify_vec(&ops, &eops, &fused);
        let elide = crate::analysis::compute_elide(&ops);
        let compiled = CompiledProgram {
            source: program.clone(),
            syms,
            resolved,
            ops,
            eops,
            fused,
            zero_input,
            vec,
            elide,
            stmt_spans,
        };
        // Every compile is verified in debug builds: a lowering bug
        // surfaces as a typed VerifyError here, not as a differential
        // divergence (or an out-of-bounds dispatch) at run time.
        #[cfg(debug_assertions)]
        if let Err(e) = compiled.verify() {
            panic!("compiler produced an invalid program: {e}");
        }
        compiled
    }

    /// Verifies the structural validity of this program's bytecode
    /// (see [`crate::analysis::verify`]). The compiler asserts this on
    /// every compile in debug builds; release pipelines call it once
    /// per compile via [`stardust-core`'s `CompileError::Verify`
    /// gate](crate::analysis::VerifyError).
    pub fn verify(&self) -> Result<(), crate::analysis::VerifyError> {
        crate::analysis::verify(&crate::analysis::VerifyCtx {
            ops: &self.ops,
            eops: &self.eops,
            fused: &self.fused,
            syms: &self.syms,
            layout: &self.resolved.layout,
            dram_layout: &self.resolved.dram_layout,
        })
    }

    /// The source program this artifact was compiled from.
    pub fn source(&self) -> &SpatialProgram {
        &self.source
    }

    /// The symbol table the program was linked against.
    pub fn syms(&self) -> &SymbolTable {
        &self.syms
    }

    /// The resolved statement tree (the `run_tree` oracle input).
    pub fn resolved(&self) -> &ResolvedProgram {
        &self.resolved
    }

    /// The flat statement ops.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The flat expression ops.
    pub fn eops(&self) -> &[EOp] {
        &self.eops
    }

    /// The fused compound-operand table.
    pub fn fused(&self) -> &[FusedOp] {
        &self.fused
    }

    /// The vector-eligibility classification of the op at `pc` (see
    /// [`VecClass`]).
    #[inline(always)]
    pub fn vec_class(&self, pc: usize) -> VecClass {
        self.vec[pc]
    }

    /// Whether the scatter write at `pc` carries a statically proven
    /// in-bounds guarantee (see [`crate::analysis::compute_elide`]).
    #[inline(always)]
    pub fn elide_at(&self, pc: usize) -> bool {
        self.elide[pc]
    }

    /// Half-open `[start, end)` op spans of each top-level resolved
    /// statement, in statement order. `resolve` drops
    /// [`crate::ir::SpatialStmt::Comment`]s, so these index the
    /// *resolved* body, not the source `accel` block.
    pub fn stmt_spans(&self) -> &[(OpId, OpId)] {
        &self.stmt_spans
    }

    /// The shared pristine (all-zero) DRAM input segment machines are
    /// born bound to.
    pub fn zero_dram_input(&self) -> &Arc<Vec<f64>> {
        &self.zero_input
    }
}

/// A cache of compiled programs keyed by program identity (name fast
/// path, full structural equality on collision). Thread-safe; cheap to
/// share by reference across a benchmark harness or dataset sweep.
#[derive(Debug, Default)]
pub struct ProgramCache {
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<String, Vec<Arc<CompiledProgram>>>,
    hits: u64,
    misses: u64,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared compiled form of `program`, compiling it on
    /// first sight.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned by a panicking thread.
    pub fn get_or_compile(&self, program: &SpatialProgram) -> Arc<CompiledProgram> {
        let mut inner = self.inner.lock().expect("cache lock");
        let bucket = inner.entries.entry(program.name.clone()).or_default();
        if let Some(hit) = bucket.iter().find(|c| c.source() == program) {
            let hit = Arc::clone(hit);
            inner.hits += 1;
            return hit;
        }
        let compiled = Arc::new(CompiledProgram::compile(program));
        bucket.push(Arc::clone(&compiled));
        inner.misses += 1;
        compiled
    }

    /// Builds a machine bound to the cached compiled form of `program`.
    pub fn machine(&self, program: &SpatialProgram) -> Machine {
        Machine::from_compiled(self.get_or_compile(program))
    }

    /// Number of distinct programs compiled so far.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("cache lock");
        inner.entries.values().map(Vec::len).sum()
    }

    /// Whether the cache holds no programs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("cache lock");
        (inner.hits, inner.misses)
    }
}

struct Lowering<'a> {
    resolved: &'a ResolvedProgram,
    ops: Vec<Op>,
    eops: Vec<EOp>,
    fused: Vec<FusedOp>,
    /// Ops below this index must not be consumed by peephole fusion: a
    /// jump target has been patched to land just past them, so folding
    /// them into a later superinstruction would skip real work on the
    /// jumping path.
    fuse_barrier: usize,
}

impl Lowering<'_> {
    /// Compiles one expression tree into the flat array, returning the
    /// index of its first op.
    fn expr(&mut self, id: ExprId) -> ERef {
        let start = self.eops.len() as ERef;
        self.expr_ops(id);
        self.eops.push(EOp::End);
        start
    }

    /// Whether the last `n` emitted ops may be rewritten by fusion.
    fn fusable(&self, n: usize) -> bool {
        self.eops.len() >= self.fuse_barrier + n
    }

    /// Lowers a statement operand: leaves, single gathers, and the
    /// recognized compound shapes become immediates; everything else
    /// becomes an expression program.
    fn operand(&mut self, id: ExprId) -> Operand {
        match self.resolved.expr(id) {
            ResolvedExpr::Const(c) => Operand::Const(c),
            ResolvedExpr::Var(v) => Operand::Var(v),
            ResolvedExpr::ReadMem {
                chip,
                dram,
                index,
                random,
            } => match self.resolved.expr(index) {
                ResolvedExpr::Var(var) => Operand::Gather {
                    chip,
                    dram,
                    random,
                    var,
                },
                ResolvedExpr::Binary { op, lhs, rhs } => {
                    if let (ResolvedExpr::Var(var), ResolvedExpr::Const(c)) =
                        (self.resolved.expr(lhs), self.resolved.expr(rhs))
                    {
                        self.fuse(FusedOp::GatherOffset {
                            mem: GatherRef {
                                chip,
                                dram,
                                random,
                                var,
                            },
                            c,
                            op,
                        })
                    } else {
                        Operand::Expr(self.expr(id))
                    }
                }
                _ => Operand::Expr(self.expr(id)),
            },
            ResolvedExpr::Binary { op, lhs, rhs } => {
                match (self.gather_ref(lhs), self.resolved.expr(lhs)) {
                    // lhs is a plain variable: vb * C_vals[jj].
                    (_, ResolvedExpr::Var(a)) => {
                        if let Some(mem) = self.gather_ref(rhs) {
                            return self.fuse(FusedOp::BinGather { a, op, mem });
                        }
                        Operand::Expr(self.expr(id))
                    }
                    // lhs is a gather: vals[j] * x[crd[j]].
                    (Some(l), _) => {
                        if let ResolvedExpr::ReadMem {
                            chip,
                            dram,
                            index,
                            random,
                        } = self.resolved.expr(rhs)
                        {
                            if let Some(inner) = self.gather_ref(index) {
                                let outer = GatherRef {
                                    chip,
                                    dram,
                                    random,
                                    // Unused: the index comes off the
                                    // inner gather's result.
                                    var: 0,
                                };
                                return self.fuse(FusedOp::BinGatherInd {
                                    lhs: l,
                                    op,
                                    inner,
                                    outer,
                                });
                            }
                        }
                        Operand::Expr(self.expr(id))
                    }
                    _ => Operand::Expr(self.expr(id)),
                }
            }
            _ => Operand::Expr(self.expr(id)),
        }
    }

    /// `mem[env[var]]` view of an expression, when it has that shape.
    fn gather_ref(&self, id: ExprId) -> Option<GatherRef> {
        if let ResolvedExpr::ReadMem {
            chip,
            dram,
            index,
            random,
        } = self.resolved.expr(id)
        {
            if let ResolvedExpr::Var(var) = self.resolved.expr(index) {
                return Some(GatherRef {
                    chip,
                    dram,
                    random,
                    var,
                });
            }
        }
        None
    }

    /// Interns a fused compound shape, returning its operand.
    fn fuse(&mut self, f: FusedOp) -> Operand {
        let ix = self.fused.len() as u32;
        self.fused.push(f);
        Operand::Fused(ix)
    }

    fn expr_ops(&mut self, id: ExprId) {
        match self.resolved.expr(id) {
            ResolvedExpr::Const(c) => self.eops.push(EOp::Const(c)),
            ResolvedExpr::Var(v) => self.eops.push(EOp::Var(v)),
            ResolvedExpr::RegRead(r) => self.eops.push(EOp::RegRead(r)),
            ResolvedExpr::Deq(f) => self.eops.push(EOp::Deq(f)),
            ResolvedExpr::ReadMem {
                chip,
                dram,
                index,
                random,
            } => {
                self.expr_ops(index);
                if self.fusable(1) {
                    if let Some(&EOp::Var(var)) = self.eops.last() {
                        self.eops.pop();
                        self.eops.push(EOp::VarReadMem {
                            chip,
                            dram,
                            random,
                            var,
                        });
                        return;
                    }
                }
                self.eops.push(EOp::ReadMem { chip, dram, random });
            }
            ResolvedExpr::Neg(inner) => {
                self.expr_ops(inner);
                self.eops.push(EOp::Neg);
            }
            ResolvedExpr::Binary { op, lhs, rhs } => {
                self.expr_ops(lhs);
                self.expr_ops(rhs);
                if self.fusable(2) {
                    if let [.., EOp::Var(var), EOp::Const(c)] = self.eops[..] {
                        self.eops.pop();
                        self.eops.pop();
                        self.eops.push(EOp::VarConstBin { var, c, op });
                        return;
                    }
                    if let [.., EOp::Var(a), EOp::VarReadMem {
                        chip,
                        dram,
                        random,
                        var,
                    }] = self.eops[..]
                    {
                        self.eops.pop();
                        self.eops.pop();
                        self.eops.push(EOp::VarBinGather {
                            a,
                            op,
                            chip,
                            dram,
                            random,
                            ivar: var,
                        });
                        return;
                    }
                }
                self.eops.push(EOp::Binary(op));
            }
            ResolvedExpr::Select {
                cond,
                if_true,
                if_false,
            } => {
                self.expr_ops(cond);
                let branch_at = self.eops.len();
                self.eops.push(EOp::BranchFalse { target: 0 });
                self.expr_ops(if_true);
                let jump_at = self.eops.len();
                self.eops.push(EOp::Jump { target: 0 });
                let false_start = self.eops.len() as ERef;
                self.eops[branch_at] = EOp::BranchFalse {
                    target: false_start,
                };
                self.expr_ops(if_false);
                let end = self.eops.len() as ERef;
                self.eops[jump_at] = EOp::Jump { target: end };
                // The true-path jump lands at `end`; nothing emitted so
                // far may be folded into an op that spans it.
                self.fuse_barrier = self.eops.len();
            }
        }
    }

    fn stmt(&mut self, s: &ResolvedStmt) {
        match s {
            ResolvedStmt::Alloc { slot, kind, size } => self.ops.push(Op::Alloc {
                slot: *slot,
                kind: *kind,
                size: *size,
            }),
            ResolvedStmt::Bind { var, value } => {
                let value = self.operand(*value);
                self.ops.push(Op::Bind { var: *var, value });
            }
            ResolvedStmt::Load {
                dst,
                src,
                start,
                end,
            } => {
                let start = self.operand(*start);
                let end = self.operand(*end);
                self.ops.push(Op::Load {
                    dst: *dst,
                    src: *src,
                    start,
                    end,
                });
            }
            ResolvedStmt::Store {
                dst,
                offset,
                src,
                len,
            } => {
                let offset = self.operand(*offset);
                let len = self.operand(*len);
                self.ops.push(Op::Store {
                    dst: *dst,
                    offset,
                    src: *src,
                    len,
                });
            }
            ResolvedStmt::StreamStore {
                dst,
                offset,
                fifo,
                len,
            } => {
                let offset = self.operand(*offset);
                let len = self.operand(*len);
                self.ops.push(Op::StreamStore {
                    dst: *dst,
                    offset,
                    fifo: *fifo,
                    len,
                });
            }
            ResolvedStmt::StoreScalar { dst, index, value } => {
                let index = self.operand(*index);
                let value = self.operand(*value);
                self.ops.push(Op::StoreScalar {
                    dst: *dst,
                    index,
                    value,
                });
            }
            ResolvedStmt::WriteMem {
                mem,
                index,
                value,
                random,
            } => {
                let index = self.operand(*index);
                let value = self.operand(*value);
                self.ops.push(Op::WriteMem {
                    mem: *mem,
                    index,
                    value,
                    random: *random,
                });
            }
            ResolvedStmt::RmwAdd { mem, index, value } => {
                let index = self.operand(*index);
                let value = self.operand(*value);
                self.ops.push(Op::RmwAdd {
                    mem: *mem,
                    index,
                    value,
                });
            }
            ResolvedStmt::SetReg { reg, value } => {
                let value = self.operand(*value);
                self.ops.push(Op::SetReg { reg: *reg, value });
            }
            ResolvedStmt::Enq { fifo, value } => {
                let value = self.operand(*value);
                self.ops.push(Op::Enq { fifo: *fifo, value });
            }
            ResolvedStmt::GenBitVector {
                dst,
                src,
                src_start,
                count,
                dim,
            } => {
                let src_start = self.operand(*src_start);
                let count = self.operand(*count);
                let dim = self.operand(*dim);
                self.ops.push(Op::GenBitVector {
                    dst: *dst,
                    src: *src,
                    src_start,
                    count,
                    dim,
                });
            }
            ResolvedStmt::Foreach { id, counter, body } => {
                self.lower_loop(*id, counter, body, None);
            }
            ResolvedStmt::Reduce {
                id,
                reg,
                counter,
                body,
                expr,
            } => {
                self.lower_loop(*id, counter, body, Some((*reg, *expr)));
            }
        }
    }

    /// Nested-loop rank of a body under superinstruction lowering:
    /// `Some(0)` for pure straight-line code, `Some(n)` when every
    /// nested loop is itself superinstruction-eligible with rank
    /// `< n`, `None` when too-deep nesting forces the framed form.
    /// Every counter kind lowers to a superinstruction
    /// ([`Op::RangeSimple`], [`Op::Scan1Simple`], [`Op::Scan2Simple`]),
    /// so only depth disqualifies. The rank bounds the executor's
    /// constant recursion depth, so it is capped at
    /// [`MAX_SIMPLE_RANK`].
    fn simple_rank(body: &[ResolvedStmt]) -> Option<u32> {
        let mut rank = 0u32;
        for s in body {
            let inner = match s {
                ResolvedStmt::Foreach { body, .. } => body,
                ResolvedStmt::Reduce { body, .. } => body,
                _ => continue,
            };
            let r = Self::simple_rank(inner)?;
            if r >= MAX_SIMPLE_RANK {
                return None;
            }
            rank = rank.max(r + 1);
        }
        Some(rank)
    }

    /// Whether a loop body may live inside a [`Op::RangeSimple`]
    /// (`simple_rank` already rejects over-deep nesting).
    fn body_is_simple(body: &[ResolvedStmt]) -> bool {
        Self::simple_rank(body).is_some()
    }

    /// Emits `Enter* body... [ReduceTail] Next` and patches the enter
    /// op's exit target to the op after `Next` — or a single
    /// superinstruction ([`Op::RangeSimple`], [`Op::Scan1Simple`],
    /// [`Op::Scan2Simple`]) when the body is straight-line (or nests
    /// only further superinstructions within [`MAX_SIMPLE_RANK`]).
    fn lower_loop(
        &mut self,
        id: usize,
        counter: &ResolvedCounter,
        body: &[ResolvedStmt],
        reduce: Option<(Slot, ExprId)>,
    ) {
        if Self::body_is_simple(body) {
            // Bound operands intern before the body's (placeholder is
            // pushed first so `body` starts at `enter_at + 1`), the
            // reduce operand after — matching the framed emission
            // order below.
            let header = match counter {
                ResolvedCounter::Range {
                    var,
                    min,
                    max,
                    step,
                } => Some((*var, self.operand(*min), self.operand(*max), *step)),
                ResolvedCounter::Scan1 { .. } | ResolvedCounter::Scan2 { .. } => None,
            };
            let enter_at = self.ops.len();
            self.ops.push(Op::Halt); // placeholder, patched below
            for s in body {
                self.stmt(s);
            }
            let body_len = (self.ops.len() - enter_at - 1) as u32;
            let reduce = reduce.map(|(reg, expr)| (reg, self.operand(expr)));
            let body = (enter_at + 1) as OpId;
            self.ops[enter_at] = match counter {
                ResolvedCounter::Range { .. } => {
                    let (var, min, max, step) = header.expect("range header");
                    Op::RangeSimple {
                        id,
                        var,
                        min,
                        max,
                        step,
                        body,
                        body_len,
                        reduce,
                    }
                }
                ResolvedCounter::Scan1 {
                    bv,
                    pos_var,
                    idx_var,
                } => Op::Scan1Simple {
                    id,
                    bv: *bv,
                    pos_var: *pos_var,
                    idx_var: *idx_var,
                    body,
                    body_len,
                    reduce,
                },
                ResolvedCounter::Scan2 {
                    op,
                    bv_a,
                    bv_b,
                    a_pos_var,
                    b_pos_var,
                    out_pos_var,
                    idx_var,
                } => Op::Scan2Simple {
                    id,
                    op: *op,
                    bv_a: *bv_a,
                    bv_b: *bv_b,
                    vars: [*a_pos_var, *b_pos_var, *out_pos_var, *idx_var],
                    body,
                    body_len,
                    reduce,
                },
            };
            return;
        }
        let reduce_reg = reduce.map(|(reg, _)| reg);
        let enter_at = self.ops.len();
        match counter {
            ResolvedCounter::Range {
                var,
                min,
                max,
                step,
            } => {
                let min = self.operand(*min);
                let max = self.operand(*max);
                self.ops.push(Op::EnterRange {
                    id,
                    var: *var,
                    min,
                    max,
                    step: *step,
                    reduce: reduce_reg,
                    exit: 0,
                });
            }
            ResolvedCounter::Scan1 {
                bv,
                pos_var,
                idx_var,
            } => self.ops.push(Op::EnterScan1 {
                id,
                bv: *bv,
                pos_var: *pos_var,
                idx_var: *idx_var,
                reduce: reduce_reg,
                exit: 0,
            }),
            ResolvedCounter::Scan2 {
                op,
                bv_a,
                bv_b,
                a_pos_var,
                b_pos_var,
                out_pos_var,
                idx_var,
            } => self.ops.push(Op::EnterScan2 {
                id,
                op: *op,
                bv_a: *bv_a,
                bv_b: *bv_b,
                vars: [*a_pos_var, *b_pos_var, *out_pos_var, *idx_var],
                reduce: reduce_reg,
                exit: 0,
            }),
        }
        for s in body {
            self.stmt(s);
        }
        if let Some((_, expr)) = reduce {
            let expr = self.operand(expr);
            self.ops.push(Op::ReduceTail { expr });
        }
        let body_start = (enter_at + 1) as OpId;
        self.ops.push(Op::Next { body: body_start });
        let exit = self.ops.len() as OpId;
        match &mut self.ops[enter_at] {
            Op::EnterRange { exit: e, .. }
            | Op::EnterScan1 { exit: e, .. }
            | Op::EnterScan2 { exit: e, .. } => *e = exit,
            _ => unreachable!("loop lowering emitted a non-enter op"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::RunError;
    use crate::ir::{Counter, MemDecl, SExpr, SpatialStmt};
    use crate::reference::ReferenceMachine;
    use crate::ExecStats;

    /// Runs a program on all three engines (bytecode, resolved tree,
    /// string-keyed reference) and asserts byte-identical DRAM plus
    /// identical stats or identical errors.
    fn assert_three_engines_agree(
        p: &SpatialProgram,
        writes: &[(&str, Vec<f64>)],
    ) -> Result<ExecStats, RunError> {
        let mut bytecode = Machine::new(p);
        for (name, data) in writes {
            bytecode.write_dram(name, data).unwrap();
        }
        let mut tree = bytecode.clone();
        let mut reference = ReferenceMachine::new(p);
        for (name, data) in writes {
            reference.write_dram(name, data).unwrap();
        }
        let bc_result = bytecode.run(p);
        let tree_result = tree.run_tree(p);
        let ref_result = reference.run(p);
        assert_eq!(bc_result, tree_result, "bytecode vs tree result");
        assert_eq!(bc_result, ref_result, "bytecode vs reference result");
        for d in &p.drams {
            let a: Vec<u64> = bytecode
                .dram(&d.name)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let t: Vec<u64> = tree
                .dram(&d.name)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let r: Vec<u64> = reference
                .dram(&d.name)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(a, t, "DRAM {} bytecode vs tree", d.name);
            assert_eq!(a, r, "DRAM {} bytecode vs reference", d.name);
        }
        assert_eq!(bytecode.stats(), tree.stats(), "stats bytecode vs tree");
        assert_eq!(
            bytecode.stats(),
            reference.stats(),
            "stats bytecode vs reference"
        );
        bc_result
    }

    fn range_loop(id: usize, var: &str, trip: f64, body: Vec<SpatialStmt>) -> SpatialStmt {
        SpatialStmt::Foreach {
            id,
            counter: Counter::range_to(var, SExpr::Const(trip)),
            par: 1,
            body,
        }
    }

    #[test]
    fn straight_line_range_loop_lowers_to_superinstruction() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 4);
        p.accel.push(range_loop(
            0,
            "i",
            3.0,
            vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::var("i"),
                value: SExpr::var("i"),
            }],
        ));
        p.assign_ids();
        let c = CompiledProgram::compile(&p);
        // RangeSimple, StoreScalar, Halt.
        assert_eq!(c.ops().len(), 3);
        let Op::RangeSimple {
            body,
            body_len,
            reduce,
            ..
        } = c.ops()[0]
        else {
            panic!("expected RangeSimple, got {:?}", c.ops()[0]);
        };
        assert_eq!((body, body_len), (1, 1));
        assert!(reduce.is_none());
        assert!(matches!(c.ops()[2], Op::Halt));
    }

    fn range_simple_pc(c: &CompiledProgram) -> usize {
        c.ops()
            .iter()
            .position(|o| matches!(o, Op::RangeSimple { .. }))
            .expect("program lowers a RangeSimple superinstruction")
    }

    #[test]
    fn vec_classifier_tags_spmv_shaped_reduce() {
        // The CSR SpMV inner loop: empty body, `vals[j] * x[crd[j]]`
        // reduce operand (the BinGatherInd fused shape).
        let mut p = SpatialProgram::new("t");
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("vals_s", MemKind::Sram, 8)));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("crd_s", MemKind::Sram, 8)));
        p.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "x_s",
            MemKind::SparseSram,
            8,
        )));
        p.accel.push(SpatialStmt::Reduce {
            id: 0,
            reg: "acc".into(),
            counter: Counter::range_to("j", SExpr::Const(8.0)),
            par: 1,
            body: vec![],
            expr: SExpr::mul(
                SExpr::read("vals_s", SExpr::var("j")),
                SExpr::read_random("x_s", SExpr::read("crd_s", SExpr::var("j"))),
            ),
        });
        p.assign_ids();
        let c = CompiledProgram::compile(&p);
        assert_eq!(c.vec_class(range_simple_pc(&c)), VecClass::GatherReduce);
    }

    #[test]
    fn vec_classifier_tags_scatter_loop() {
        // The SpMSpM accumulation loop: one-statement RmwAdd body with
        // a gathered index and a splat-times-gather value.
        let mut p = SpatialProgram::new("t");
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc_s", MemKind::Sram, 16)));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("crd_s", MemKind::Sram, 8)));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("vals_s", MemKind::Sram, 8)));
        p.accel.push(SpatialStmt::Bind {
            var: "vb".into(),
            value: SExpr::Const(2.5),
        });
        p.accel.push(range_loop(
            0,
            "j",
            8.0,
            vec![SpatialStmt::RmwAdd {
                mem: "acc_s".into(),
                index: SExpr::read("crd_s", SExpr::var("j")),
                value: SExpr::mul(SExpr::var("vb"), SExpr::read("vals_s", SExpr::var("j"))),
            }],
        ));
        p.assign_ids();
        let c = CompiledProgram::compile(&p);
        assert_eq!(c.vec_class(range_simple_pc(&c)), VecClass::Scatter);
    }

    #[test]
    fn vec_classifier_rejects_non_unit_stride_shapes() {
        // A reduce operand that is an expression program (not a gather
        // in the loop variable) stays scalar.
        let mut p = SpatialProgram::new("t");
        p.accel.push(SpatialStmt::Reduce {
            id: 0,
            reg: "acc".into(),
            counter: Counter::range_to("j", SExpr::Const(8.0)),
            par: 1,
            body: vec![],
            expr: SExpr::add(SExpr::var("j"), SExpr::Const(1.0)),
        });
        p.assign_ids();
        let c = CompiledProgram::compile(&p);
        assert_eq!(c.vec_class(range_simple_pc(&c)), VecClass::None);

        // A scatter whose value multiplies by the loop variable itself
        // (`j * vals[j]`): the splat side must be loop-invariant.
        let mut p2 = SpatialProgram::new("t");
        p2.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc_s", MemKind::Sram, 16)));
        p2.accel
            .push(SpatialStmt::Alloc(MemDecl::new("vals_s", MemKind::Sram, 8)));
        p2.accel.push(range_loop(
            0,
            "j",
            8.0,
            vec![SpatialStmt::RmwAdd {
                mem: "acc_s".into(),
                index: SExpr::var("j"),
                value: SExpr::mul(SExpr::var("j"), SExpr::read("vals_s", SExpr::var("j"))),
            }],
        ));
        p2.assign_ids();
        let c2 = CompiledProgram::compile(&p2);
        assert_eq!(c2.vec_class(range_simple_pc(&c2)), VecClass::None);
    }

    #[test]
    fn nested_loops_lower_to_enter_body_next_with_patched_exit() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 4);
        // Four levels: the outer body's nested rank (3) exceeds
        // MAX_SIMPLE_RANK, so the outer loop takes the framed
        // enter/next form while the three inner loops collapse
        // into nested superinstructions.
        p.accel.push(range_loop(
            0,
            "i",
            3.0,
            vec![range_loop(
                1,
                "j",
                2.0,
                vec![range_loop(
                    2,
                    "k",
                    2.0,
                    vec![range_loop(
                        3,
                        "l",
                        2.0,
                        vec![SpatialStmt::StoreScalar {
                            dst: "out".into(),
                            index: SExpr::var("l"),
                            value: SExpr::add(SExpr::var("i"), SExpr::var("j")),
                        }],
                    )],
                )],
            )],
        ));
        p.assign_ids();
        let c = CompiledProgram::compile(&p);
        // EnterRange, RangeSimple ×3, StoreScalar, Next, Halt.
        assert_eq!(c.ops().len(), 7);
        let Op::EnterRange { exit, .. } = c.ops()[0] else {
            panic!("expected EnterRange, got {:?}", c.ops()[0]);
        };
        assert_eq!(exit, 6, "exit lands on Halt");
        assert!(matches!(c.ops()[1], Op::RangeSimple { .. }));
        assert!(matches!(c.ops()[2], Op::RangeSimple { .. }));
        assert!(matches!(c.ops()[3], Op::RangeSimple { .. }));
        let Op::Next { body } = c.ops()[5] else {
            panic!("expected Next");
        };
        assert_eq!(body, 1, "Next jumps to the first body op");
        assert!(matches!(c.ops()[6], Op::Halt));
        assert_three_engines_agree(&p, &[]).unwrap();
    }

    #[test]
    fn fused_eops_cover_gather_and_position_arithmetic() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 4);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 8)));
        p.accel.push(range_loop(
            0,
            "i",
            3.0,
            vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::var("i"),
                // read(s, i) * (i + 1): a VarReadMem and a VarConstBin.
                value: SExpr::mul(
                    SExpr::read("s", SExpr::var("i")),
                    SExpr::add(SExpr::var("i"), SExpr::Const(1.0)),
                ),
            }],
        ));
        p.assign_ids();
        let c = CompiledProgram::compile(&p);
        assert!(c.eops().iter().any(|e| matches!(e, EOp::VarReadMem { .. })));
        assert!(c
            .eops()
            .iter()
            .any(|e| matches!(e, EOp::VarConstBin { .. })));
        assert_three_engines_agree(&p, &[]).unwrap();
    }

    /// Fusion must not consume ops a `Select` jump target lands past.
    #[test]
    fn select_result_feeding_a_read_is_not_fused_across_the_jump() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 8)));
        p.accel.push(SpatialStmt::WriteMem {
            mem: "s".into(),
            index: SExpr::Const(3.0),
            value: SExpr::Const(42.0),
            random: false,
        });
        p.accel.push(SpatialStmt::Bind {
            var: "c".into(),
            value: SExpr::Const(0.0),
        });
        p.accel.push(SpatialStmt::Bind {
            var: "f".into(),
            value: SExpr::Const(3.0),
        });
        // read(s, select(c, c, f)): the false side ends in a bare Var,
        // which must NOT be folded into the enclosing ReadMem — the
        // true path jumps to the op right after it.
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read(
                "s",
                SExpr::select(SExpr::var("c"), SExpr::var("c"), SExpr::var("f")),
            ),
        });
        p.assign_ids();
        assert_three_engines_agree(&p, &[]).unwrap();
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 42.0);
    }

    #[test]
    fn select_lowers_to_branches_that_skip_the_untaken_side() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::select(SExpr::Const(1.0), SExpr::Const(7.0), SExpr::Const(9.0)),
        });
        let c = CompiledProgram::compile(&p);
        let branches = c
            .eops()
            .iter()
            .filter(|e| matches!(e, EOp::BranchFalse { .. }))
            .count();
        let jumps = c
            .eops()
            .iter()
            .filter(|e| matches!(e, EOp::Jump { .. }))
            .count();
        assert_eq!((branches, jumps), (1, 1));
        let stats = assert_three_engines_agree(&p, &[]).unwrap();
        // Only the mux itself is an ALU op; the untaken side is skipped.
        assert_eq!(stats.alu_ops, 1);
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 7.0);
    }

    #[test]
    fn empty_loop_body_executes_and_counts_trips() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel.push(range_loop(0, "i", 5.0, vec![]));
        p.assign_ids();
        let stats = assert_three_engines_agree(&p, &[]).unwrap();
        assert_eq!(stats.trips(0), 5);
    }

    #[test]
    fn zero_trip_range_skips_the_body() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 2);
        // max == min: zero trips.
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Range {
                var: "i".into(),
                min: SExpr::Const(3.0),
                max: SExpr::Const(3.0),
                step: 1,
            },
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::Const(0.0),
                value: SExpr::Const(1.0),
            }],
        });
        // A sentinel write after the loop proves control flow continues.
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(1.0),
            value: SExpr::Const(2.0),
        });
        p.assign_ids();
        let stats = assert_three_engines_agree(&p, &[]).unwrap();
        assert_eq!(stats.trips(0), 0);
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap(), &[0.0, 2.0]);
    }

    #[test]
    fn zero_trip_reduce_still_writes_back_the_accumulator() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc", MemKind::Reg, 1)));
        p.accel.push(SpatialStmt::SetReg {
            reg: "acc".into(),
            value: SExpr::Const(4.5),
        });
        p.accel.push(SpatialStmt::Reduce {
            id: 0,
            reg: "acc".into(),
            counter: Counter::range_to("i", SExpr::Const(0.0)),
            par: 1,
            body: vec![],
            expr: SExpr::Const(1.0),
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::RegRead("acc".into()),
        });
        p.assign_ids();
        assert_three_engines_agree(&p, &[]).unwrap();
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 4.5);
        assert_eq!(m.stats().reduce_elems, 0);
    }

    #[test]
    fn nested_parallel_foreach_inside_reduce() {
        // A Reduce whose body contains a par-annotated Foreach that
        // scatters into SRAM before the reduction expression reads it.
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc", MemKind::Reg, 1)));
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 8)));
        p.accel.push(SpatialStmt::Reduce {
            id: 0,
            reg: "acc".into(),
            counter: Counter::range_to("i", SExpr::Const(3.0)),
            par: 1,
            body: vec![SpatialStmt::Foreach {
                id: 1,
                counter: Counter::range_to("j", SExpr::Const(4.0)),
                par: 4,
                body: vec![SpatialStmt::WriteMem {
                    mem: "s".into(),
                    index: SExpr::var("j"),
                    value: SExpr::mul(SExpr::var("i"), SExpr::var("j")),
                    random: false,
                }],
            }],
            expr: SExpr::read("s", SExpr::Const(3.0)),
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::RegRead("acc".into()),
        });
        p.assign_ids();
        let stats = assert_three_engines_agree(&p, &[]).unwrap();
        assert_eq!(stats.trips(0), 3);
        assert_eq!(stats.trips(1), 12);
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        // Σ_i i*3 for i in 0..3 = 0 + 3 + 6.
        assert_eq!(m.dram("out").unwrap()[0], 9.0);
    }

    #[test]
    fn deeply_nested_loops_grow_the_frame_stack() {
        const DEPTH: usize = 64;
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 1);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("acc", MemKind::Reg, 1)));
        let mut body = vec![SpatialStmt::SetReg {
            reg: "acc".into(),
            value: SExpr::add(SExpr::RegRead("acc".into()), SExpr::Const(1.0)),
        }];
        for d in (0..DEPTH).rev() {
            body = vec![SpatialStmt::Foreach {
                id: d,
                counter: Counter::range_to(format!("v{d}"), SExpr::Const(1.0)),
                par: 1,
                body,
            }];
        }
        p.accel.extend(body);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::RegRead("acc".into()),
        });
        p.assign_ids();
        let stats = assert_three_engines_agree(&p, &[]).unwrap();
        for d in 0..DEPTH {
            assert_eq!(stats.trips(d), 1, "depth {d}");
        }
        let mut m = Machine::new(&p);
        m.run(&p).unwrap();
        assert_eq!(m.dram("out").unwrap()[0], 1.0);
    }

    #[test]
    fn zero_trip_scan_over_empty_bit_vector() {
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 2);
        p.accel.push(SpatialStmt::Alloc(MemDecl::new(
            "bv",
            MemKind::BitVector,
            8,
        )));
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Scan1 {
                bv: "bv".into(),
                pos_var: "p".into(),
                idx_var: "i".into(),
            },
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::var("p"),
                value: SExpr::Const(1.0),
            }],
        });
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(1.0),
            value: SExpr::Const(3.0),
        });
        p.assign_ids();
        let stats = assert_three_engines_agree(&p, &[]).unwrap();
        assert_eq!(stats.scan_emits, 0);
        assert_eq!(stats.scan_bits, 8);
    }

    #[test]
    fn errors_inside_loops_match_the_tree_engines() {
        // FIFO underflow on the third iteration.
        let mut p = SpatialProgram::new("t");
        p.add_dram("out", 4);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("f", MemKind::Fifo, 4)));
        for v in [1.0, 2.0] {
            p.accel.push(SpatialStmt::Enq {
                fifo: "f".into(),
                value: SExpr::Const(v),
            });
        }
        p.accel.push(range_loop(
            0,
            "i",
            4.0,
            vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::var("i"),
                value: SExpr::Deq("f".into()),
            }],
        ));
        p.assign_ids();
        let err = assert_three_engines_agree(&p, &[]).unwrap_err();
        assert_eq!(err, RunError::FifoUnderflow("f".into()));
    }

    #[test]
    fn machine_recovers_after_an_errored_run() {
        // An error mid-loop abandons the frame stack; the next run on the
        // same machine must start clean.
        let mut fail = SpatialProgram::new("t");
        fail.add_dram("out", 4);
        fail.accel.push(range_loop(
            0,
            "i",
            4.0,
            vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::add(SExpr::var("i"), SExpr::Const(2.0)),
                value: SExpr::Const(1.0),
            }],
        ));
        fail.assign_ids();
        let mut m = Machine::new(&fail);
        assert!(m.run(&fail).is_err());
        let mut ok = SpatialProgram::new("t");
        ok.add_dram("out", 4);
        ok.accel.push(range_loop(
            0,
            "i",
            2.0,
            vec![SpatialStmt::StoreScalar {
                dst: "out".into(),
                index: SExpr::var("i"),
                value: SExpr::Const(9.0),
            }],
        ));
        ok.assign_ids();
        m.run(&ok).unwrap();
        assert_eq!(&m.dram("out").unwrap()[..2], &[9.0, 9.0]);
    }

    #[test]
    fn cache_shares_compiled_programs_by_identity() {
        let mut p = SpatialProgram::new("k");
        p.add_dram("out", 1);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Const(1.0),
        });
        let cache = ProgramCache::new();
        let a = cache.get_or_compile(&p);
        let b = cache.get_or_compile(&p);
        assert!(Arc::ptr_eq(&a, &b), "same program shares one artifact");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), (1, 1));

        // Same name, different body: identity check falls back to
        // structural equality and compiles a second artifact.
        let mut q = SpatialProgram::new("k");
        q.add_dram("out", 1);
        q.accel.push(SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::Const(0.0),
            value: SExpr::Const(2.0),
        });
        let c = cache.get_or_compile(&q);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);

        let mut m1 = cache.machine(&p);
        let mut m2 = cache.machine(&q);
        m1.run(&p).unwrap();
        m2.run(&q).unwrap();
        assert_eq!(m1.dram("out").unwrap()[0], 1.0);
        assert_eq!(m2.dram("out").unwrap()[0], 2.0);
    }

    #[test]
    fn machines_bound_to_one_artifact_do_not_share_state() {
        let mut p = SpatialProgram::new("k");
        p.add_dram("x", 2);
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "x".into(),
            index: SExpr::Const(1.0),
            value: SExpr::add(
                SExpr::read_random("x", SExpr::Const(0.0)),
                SExpr::Const(1.0),
            ),
        });
        // `x` is plain DRAM, so the random-read fallback needs SparseDram
        // semantics — use add_sparse_dram instead for the read source.
        let mut p = {
            let mut q = SpatialProgram::new("k");
            q.add_sparse_dram("x", 2);
            q.accel = p.accel.clone();
            q
        };
        p.assign_ids();
        let compiled = Arc::new(CompiledProgram::compile(&p));
        let mut m1 = Machine::from_compiled(Arc::clone(&compiled));
        let mut m2 = Machine::from_compiled(compiled);
        m1.write_dram("x", &[10.0]).unwrap();
        m2.write_dram("x", &[20.0]).unwrap();
        m1.run(&p).unwrap();
        m2.run(&p).unwrap();
        assert_eq!(m1.dram("x").unwrap(), &[10.0, 11.0]);
        assert_eq!(m2.dram("x").unwrap(), &[20.0, 21.0]);
    }
}
