//! Deterministic fault injection for the interpreter stack.
//!
//! The robustness story — fuel budgets, poisoned-machine quarantine,
//! retry-on-fresh-machine — is only trustworthy if it is *tested*
//! against real mid-run failures. This module lets tests force those
//! failures at exact, reproducible points:
//!
//! - a **panic** after the Nth interpreter step ([`FaultPlan::panic_at_step`]),
//! - a structured [`crate::RunError::InjectedFault`] after the Nth step
//!   ([`FaultPlan::error_at_step`]),
//! - a failure of the Nth on-chip allocation ([`FaultPlan::fail_alloc`]),
//! - a shrunken step budget that forces
//!   [`crate::RunError::BudgetExceeded`] ([`FaultPlan::max_steps`]).
//!
//! A plan is installed per thread ([`with_plan`] /
//! [`FaultPlan::install`]) and consulted when a machine arms its budget
//! at run entry; step faults are min-folded into the same fuel
//! countdown the budget uses, so injection adds **zero** hot-path cost
//! and nothing at all when no plan is installed. The step/alloc faults
//! are **one-shot**: firing consumes them, so a retry on a fresh
//! machine (the `Kernel::run_pooled` recovery policy) runs fault-free —
//! exactly the scenario the recovery suites must prove byte-identical
//! to a never-faulted baseline. The budget shrink (`max_steps`) is
//! persistent: it models a standing resource limit, not a transient
//! fault.
//!
//! Plans can also come from the environment (`STARDUST_FAULTS`, parsed
//! by [`FaultPlan::from_env`], same spirit as the vendored proptest's
//! `PROPTEST_CASES`), which is how the CI fault-injection job keys the
//! chaos sweeps without recompiling.

use std::cell::RefCell;
use std::error::Error;
use std::fmt;

/// A malformed `STARDUST_FAULTS` specification. Unknown keys are
/// **errors**, not ignored: a typo'd chaos plan (`eror_at=100`) that
/// silently parsed to "no faults" would let a CI chaos sweep pass
/// vacuously, proving nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultParseError {
    /// A key that is not one of `panic_at`, `error_at`, `fail_alloc`,
    /// `max_steps`.
    UnknownKey(String),
    /// A value that did not parse as a `u64`.
    InvalidValue {
        /// The key whose value was rejected.
        key: String,
        /// The rejected raw value.
        value: String,
    },
    /// A pair with no `=` separator.
    MissingSeparator(String),
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultParseError::UnknownKey(k) => write!(
                f,
                "STARDUST_FAULTS: unknown key {k:?} \
                 (expected panic_at, error_at, fail_alloc, or max_steps)"
            ),
            FaultParseError::InvalidValue { key, value } => {
                write!(f, "STARDUST_FAULTS: value {value:?} for {key} is not a u64")
            }
            FaultParseError::MissingSeparator(pair) => {
                write!(f, "STARDUST_FAULTS: {pair:?} has no key=value separator")
            }
        }
    }
}

impl Error for FaultParseError {}

/// A deterministic set of faults to inject into subsequent runs on the
/// installing thread. All fields default to `None` (no fault).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic when a run executes this many steps (one-shot).
    pub panic_at_step: Option<u64>,
    /// Return [`crate::RunError::InjectedFault`] at this step (one-shot).
    pub error_at_step: Option<u64>,
    /// Fail the Nth on-chip allocation of a run, 0-based (one-shot).
    pub fail_alloc: Option<u64>,
    /// Clamp every armed step budget to this value (persistent),
    /// forcing [`crate::RunError::BudgetExceeded`] on longer runs.
    pub max_steps: Option<u64>,
}

thread_local! {
    static PLAN: RefCell<Option<FaultPlan>> = const { RefCell::new(None) };
}

impl FaultPlan {
    /// Installs this plan on the current thread, replacing any previous
    /// plan. Returns a guard that restores the previous plan when
    /// dropped (panic-safe — a fired injected panic still uninstalls).
    pub fn install(self) -> FaultGuard {
        let prev = PLAN.with(|p| p.replace(Some(self)));
        FaultGuard { prev }
    }

    /// Parses a plan from the `STARDUST_FAULTS` environment variable:
    /// comma-separated `key=value` pairs with keys `panic_at`,
    /// `error_at`, `fail_alloc`, and `max_steps` (e.g.
    /// `STARDUST_FAULTS=error_at=100,fail_alloc=2`).
    ///
    /// Returns `Ok(None)` when the variable is unset or empty.
    ///
    /// # Errors
    ///
    /// [`FaultParseError`] on any malformed pair — **including unknown
    /// keys**. Callers (the CI chaos suites) must surface this loudly:
    /// treating a typo'd plan as "no faults" would let a chaos sweep
    /// pass as a no-op.
    pub fn from_env() -> Result<Option<FaultPlan>, FaultParseError> {
        match std::env::var("STARDUST_FAULTS") {
            Ok(raw) => Self::parse(&raw),
            Err(_) => Ok(None),
        }
    }

    /// Parses the `STARDUST_FAULTS` pair syntax from a string (the
    /// testable core of [`FaultPlan::from_env`]). `Ok(None)` for an
    /// empty/whitespace/comma-only string.
    ///
    /// # Errors
    ///
    /// See [`FaultPlan::from_env`].
    pub fn parse(raw: &str) -> Result<Option<FaultPlan>, FaultParseError> {
        let mut plan = FaultPlan::default();
        let mut any = false;
        for pair in raw.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| FaultParseError::MissingSeparator(pair.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            let value: u64 = value.parse().map_err(|_| FaultParseError::InvalidValue {
                key: key.to_string(),
                value: value.to_string(),
            })?;
            match key {
                "panic_at" => plan.panic_at_step = Some(value),
                "error_at" => plan.error_at_step = Some(value),
                "fail_alloc" => plan.fail_alloc = Some(value),
                "max_steps" => plan.max_steps = Some(value),
                other => return Err(FaultParseError::UnknownKey(other.to_string())),
            }
            any = true;
        }
        Ok(any.then_some(plan))
    }
}

/// Restores the previously installed plan (usually none) on drop.
#[derive(Debug)]
pub struct FaultGuard {
    prev: Option<FaultPlan>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        PLAN.with(|p| *p.borrow_mut() = prev);
    }
}

/// Runs `f` with `plan` installed on this thread, uninstalling it
/// afterwards (including when `f` panics).
pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    let _guard = plan.install();
    f()
}

/// Clears any installed plan on this thread.
pub fn clear() {
    PLAN.with(|p| *p.borrow_mut() = None);
}

/// The plan consulted when a machine arms its budget at run entry.
/// Cold path — called once per run, not per step.
pub(crate) fn active() -> Option<FaultPlan> {
    PLAN.with(|p| p.borrow().clone())
}

/// Consumes the one-shot step-error fault (called when it fires).
pub(crate) fn consume_error() {
    PLAN.with(|p| {
        if let Some(plan) = p.borrow_mut().as_mut() {
            plan.error_at_step = None;
        }
    });
}

/// Consumes the one-shot step-panic fault (called just before the
/// panic unwinds).
pub(crate) fn consume_panic() {
    PLAN.with(|p| {
        if let Some(plan) = p.borrow_mut().as_mut() {
            plan.panic_at_step = None;
        }
    });
}

/// Consumes the one-shot allocation fault (called when it fires).
pub(crate) fn consume_alloc() {
    PLAN.with(|p| {
        if let Some(plan) = p.borrow_mut().as_mut() {
            plan.fail_alloc = None;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_guard_restore() {
        assert_eq!(active(), None);
        {
            let _g = FaultPlan {
                error_at_step: Some(3),
                ..FaultPlan::default()
            }
            .install();
            assert_eq!(active().and_then(|p| p.error_at_step), Some(3));
            {
                let _inner = FaultPlan {
                    panic_at_step: Some(9),
                    ..FaultPlan::default()
                }
                .install();
                assert_eq!(active().and_then(|p| p.panic_at_step), Some(9));
                assert_eq!(active().and_then(|p| p.error_at_step), None);
            }
            // Inner guard restored the outer plan.
            assert_eq!(active().and_then(|p| p.error_at_step), Some(3));
        }
        assert_eq!(active(), None);
    }

    #[test]
    fn one_shot_consumption() {
        let _g = FaultPlan {
            error_at_step: Some(1),
            fail_alloc: Some(0),
            max_steps: Some(7),
            ..FaultPlan::default()
        }
        .install();
        consume_error();
        consume_alloc();
        let left = active().expect("plan installed");
        assert_eq!(left.error_at_step, None);
        assert_eq!(left.fail_alloc, None);
        // The budget clamp is persistent.
        assert_eq!(left.max_steps, Some(7));
    }

    #[test]
    fn env_parse_shapes() {
        // from_env reads the process env; exercise the parser through a
        // scoped variable. Tests in this crate run single-threaded per
        // test binary env mutation is still racy in general, so keep
        // the variable name unique to this test.
        std::env::set_var("STARDUST_FAULTS", "error_at=5, max_steps=100");
        let plan = FaultPlan::from_env()
            .expect("valid plan")
            .expect("plan present");
        assert_eq!(plan.error_at_step, Some(5));
        assert_eq!(plan.max_steps, Some(100));
        assert_eq!(plan.panic_at_step, None);
        std::env::remove_var("STARDUST_FAULTS");
        assert_eq!(FaultPlan::from_env(), Ok(None));
    }

    /// A typo'd chaos plan must be a hard error, never a silent no-op:
    /// unknown keys, bad values, and missing separators all surface as
    /// typed [`FaultParseError`]s.
    #[test]
    fn malformed_plans_are_typed_errors_not_no_ops() {
        // The regression: an unknown key used to return `None`, which
        // callers could not distinguish from "no plan requested".
        assert_eq!(
            FaultPlan::parse("eror_at=100"),
            Err(FaultParseError::UnknownKey("eror_at".to_string()))
        );
        // A typo in *one* pair of an otherwise-valid plan still fails.
        assert_eq!(
            FaultPlan::parse("error_at=100,fail_aloc=2"),
            Err(FaultParseError::UnknownKey("fail_aloc".to_string()))
        );
        assert_eq!(
            FaultPlan::parse("error_at=ten"),
            Err(FaultParseError::InvalidValue {
                key: "error_at".to_string(),
                value: "ten".to_string(),
            })
        );
        assert_eq!(
            FaultPlan::parse("error_at"),
            Err(FaultParseError::MissingSeparator("error_at".to_string()))
        );
        // Empty and separator-only strings are "no plan", not errors.
        assert_eq!(FaultPlan::parse(""), Ok(None));
        assert_eq!(FaultPlan::parse(" , ,"), Ok(None));
        // The errors render actionable messages.
        let msg = FaultPlan::parse("eror_at=1").unwrap_err().to_string();
        assert!(msg.contains("eror_at") && msg.contains("expected"), "{msg}");
    }
}
