//! The data-parallel (vector) execution tier of the bytecode engine.
//!
//! The scalar superinstruction loops in [`crate::interp`] spend their
//! time on per-element arena loads/stores — exactly the streamed
//! pos/crd/vals traffic the Sparse Abstract Machine models as wide
//! dataflow streams. This module holds the lane-level kernels those
//! loops call to process unit-stride runs in [`LANES`]-wide chunks:
//! bounds checks hoist to one comparison per chunk, index conversion
//! and arithmetic happen per lane, and every *reduction* stays in
//! serial lane order so f64 results are bit-identical to the scalar
//! engine.
//!
//! Two implementations sit behind one API:
//!
//! - the default build uses portable lane loops over fixed-size arrays,
//!   shaped so the autovectorizer can take them (no early exits, no
//!   cross-lane dependencies);
//! - with the `simd` cargo feature on `x86_64`, the multiply/add lane
//!   kernels go through `core::arch` SSE2 intrinsics (baseline on
//!   x86_64, so no runtime feature detection is needed). CI builds and
//!   tests both ways; [`IMPL`] names the active backend.
//!
//! Fuel, interrupt, and statistics *semantics* are owned by the
//! interpreter; the only scheduling helper here is [`burst`], which
//! bounds how many iterations may run without an abort or interrupt
//! check so budget aborts land on the same step boundary as the scalar
//! engine.

use crate::interp::INTERRUPT_MASK;

/// Chunk width of the vector tier, in f64 lanes. One chunk is a cache
/// line (64 bytes) of the flat word arena.
pub const LANES: usize = 8;

/// Name of the lane-kernel backend compiled into this build, published
/// in bench summaries so scalar-vs-vector measurements are attributable.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub const IMPL: &str = "sse2-intrinsics";
/// Name of the lane-kernel backend compiled into this build.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub const IMPL: &str = "portable";

/// Largest f64 loop bound the vector tier treats as exactly
/// representable for integer trip-count arithmetic (2^32 — far above
/// any arena extent, far below the 2^53 limit where `f64` stops
/// counting integers).
const MAX_EXACT_BOUND: f64 = 4_294_967_296.0;

/// Whether the vector tier starts enabled. On by default; setting the
/// `STARDUST_VECTOR` environment variable to `0` disables it (the
/// differential suites use this to pin a scalar baseline without code
/// changes).
pub(crate) fn env_default() -> bool {
    !matches!(std::env::var("STARDUST_VECTOR"), Ok(v) if v == "0")
}

/// Converts an integral unit-step loop window `[lo, hi)` into
/// `(base, trips)`: the starting index as a `usize` and the exact trip
/// count. Returns `None` when `lo` is negative or non-integral, or the
/// bounds are too large for exact f64 integer arithmetic — the scalar
/// loop then owns the (error or fallback) semantics.
pub(crate) fn unit_trips(lo: f64, hi: f64) -> Option<(usize, u64)> {
    // `contains` (not `hi > bound`) so a NaN bound also bails. A
    // negative `hi` falls out of range too — the window is empty and
    // the scalar loop handles it identically.
    let exact = 0.0..=MAX_EXACT_BOUND;
    if !exact.contains(&lo) || !(exact.contains(&hi) || hi <= lo) {
        return None;
    }
    let base = lo as usize;
    if base as f64 != lo {
        return None;
    }
    if hi <= lo {
        return Some((base, 0));
    }
    // Counting `v = lo, lo+1, ...` while `v < hi`: the count is
    // `ceil(hi) - lo` (for integral `hi` exactly `hi - lo`).
    Some((base, (hi.ceil() - lo) as u64))
}

/// How many consecutive iterations may run with *no* per-iteration
/// abort or interrupt check, starting from the current `fuel` value.
/// The scalar loops check fuel exhaustion at every iteration top and
/// run the amortized deadline/cancel check on each iteration whose
/// post-decrement fuel hits the [`INTERRUPT_MASK`] boundary; a vector
/// chunk must stop *before* the first such iteration so that check
/// fires at the identical fuel value, executed by the scalar step that
/// follows the burst.
pub(crate) fn burst(trips_left: u64, fuel: u64, interrupts: bool) -> u64 {
    let mut n = trips_left.min(fuel);
    if interrupts {
        // The first checking iteration is the i-th (1-based) with
        // `fuel - i ≡ 0 (mod INTERRUPT_MASK + 1)`.
        let r = fuel & INTERRUPT_MASK;
        let first_check = if r == 0 { INTERRUPT_MASK + 1 } else { r };
        n = n.min(first_check - 1);
    }
    n
}

/// Per-lane index conversion with [`crate::interp`] `index_of`
/// semantics, minus the error: writes each lane's converted index and
/// returns `false` if any lane is negative (the caller re-runs the
/// chunk scalar so the `NegativeIndex` error surfaces at the exact
/// iteration, with the exact partial state).
#[inline(always)]
pub(crate) fn to_indices(src: &[f64; LANES], out: &mut [usize; LANES]) -> bool {
    let mut ok = true;
    for k in 0..LANES {
        let v = src[k];
        ok &= v >= 0.0;
        // Exact-integer fast path (identical to `index_of`): the cast
        // round-trips iff `v` is a non-negative integer below 2^64.
        let t = v as usize;
        out[k] = if t as f64 == v { t } else { v.round() as usize };
    }
    ok
}

/// `out[k] = a op b[k]` with a loop-invariant left operand — the
/// scale-by-gathered-value lane kernel (`vb * C_vals[jj]`).
#[inline(always)]
pub(crate) fn bin_splat(op: crate::ir::BinSOp, a: f64, b: &[f64; LANES], out: &mut [f64; LANES]) {
    use crate::ir::BinSOp::*;
    match op {
        Add => lanes_impl::add_splat(a, b, out),
        Sub => {
            for k in 0..LANES {
                out[k] = a - b[k];
            }
        }
        Mul => lanes_impl::mul_splat(a, b, out),
        op => {
            for k in 0..LANES {
                out[k] = op.apply(a, b[k]);
            }
        }
    }
}

/// `out[k] = a[k] op b[k]` — the two-stream lane kernel
/// (`A_vals[j] * x[crd[j]]`).
#[inline(always)]
pub(crate) fn bin_lanes(
    op: crate::ir::BinSOp,
    a: &[f64; LANES],
    b: &[f64; LANES],
    out: &mut [f64; LANES],
) {
    use crate::ir::BinSOp::*;
    match op {
        Add => lanes_impl::add_lanes(a, b, out),
        Sub => {
            for k in 0..LANES {
                out[k] = a[k] - b[k];
            }
        }
        Mul => lanes_impl::mul_lanes(a, b, out),
        op => {
            for k in 0..LANES {
                out[k] = op.apply(a[k], b[k]);
            }
        }
    }
}

/// Portable lane kernels: fixed-trip loops over `[f64; LANES]` with no
/// early exits, the shape LLVM's autovectorizer turns into packed
/// SSE2/AVX arithmetic at the baseline target.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod lanes_impl {
    use super::LANES;

    #[inline(always)]
    pub fn mul_splat(a: f64, b: &[f64; LANES], out: &mut [f64; LANES]) {
        for k in 0..LANES {
            out[k] = a * b[k];
        }
    }

    #[inline(always)]
    pub fn add_splat(a: f64, b: &[f64; LANES], out: &mut [f64; LANES]) {
        for k in 0..LANES {
            out[k] = a + b[k];
        }
    }

    #[inline(always)]
    pub fn mul_lanes(a: &[f64; LANES], b: &[f64; LANES], out: &mut [f64; LANES]) {
        for k in 0..LANES {
            out[k] = a[k] * b[k];
        }
    }

    #[inline(always)]
    pub fn add_lanes(a: &[f64; LANES], b: &[f64; LANES], out: &mut [f64; LANES]) {
        for k in 0..LANES {
            out[k] = a[k] + b[k];
        }
    }
}

/// Explicit `core::arch` lane kernels. SSE2 (2 f64 lanes per op) is
/// part of the x86_64 baseline, so the intrinsics are unconditionally
/// available — no runtime dispatch. Packed IEEE-754 multiply/add are
/// bit-identical to their scalar counterparts lane by lane, so this
/// path changes nothing observable; it exists to prove the chunked
/// loops really are data-parallel rather than relying on the
/// autovectorizer, and CI builds both backends.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod lanes_impl {
    use super::LANES;
    use core::arch::x86_64::{_mm_add_pd, _mm_loadu_pd, _mm_mul_pd, _mm_set1_pd, _mm_storeu_pd};

    #[inline(always)]
    pub fn mul_splat(a: f64, b: &[f64; LANES], out: &mut [f64; LANES]) {
        // SAFETY: SSE2 is baseline on x86_64; loads/stores are
        // unaligned-tolerant and stay inside the fixed-size arrays.
        unsafe {
            let av = _mm_set1_pd(a);
            for k in (0..LANES).step_by(2) {
                let bv = _mm_loadu_pd(b.as_ptr().add(k));
                _mm_storeu_pd(out.as_mut_ptr().add(k), _mm_mul_pd(av, bv));
            }
        }
    }

    #[inline(always)]
    pub fn add_splat(a: f64, b: &[f64; LANES], out: &mut [f64; LANES]) {
        // SAFETY: as in `mul_splat`.
        unsafe {
            let av = _mm_set1_pd(a);
            for k in (0..LANES).step_by(2) {
                let bv = _mm_loadu_pd(b.as_ptr().add(k));
                _mm_storeu_pd(out.as_mut_ptr().add(k), _mm_add_pd(av, bv));
            }
        }
    }

    #[inline(always)]
    pub fn mul_lanes(a: &[f64; LANES], b: &[f64; LANES], out: &mut [f64; LANES]) {
        // SAFETY: as in `mul_splat`.
        unsafe {
            for k in (0..LANES).step_by(2) {
                let av = _mm_loadu_pd(a.as_ptr().add(k));
                let bv = _mm_loadu_pd(b.as_ptr().add(k));
                _mm_storeu_pd(out.as_mut_ptr().add(k), _mm_mul_pd(av, bv));
            }
        }
    }

    #[inline(always)]
    pub fn add_lanes(a: &[f64; LANES], b: &[f64; LANES], out: &mut [f64; LANES]) {
        // SAFETY: as in `mul_splat`.
        unsafe {
            for k in (0..LANES).step_by(2) {
                let av = _mm_loadu_pd(a.as_ptr().add(k));
                let bv = _mm_loadu_pd(b.as_ptr().add(k));
                _mm_storeu_pd(out.as_mut_ptr().add(k), _mm_add_pd(av, bv));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BinSOp;

    #[test]
    fn unit_trips_counts_exact_windows() {
        assert_eq!(unit_trips(0.0, 0.0), Some((0, 0)));
        assert_eq!(unit_trips(0.0, 1.0), Some((0, 1)));
        assert_eq!(unit_trips(2.0, 5.0), Some((2, 3)));
        // Fractional upper bound: v = 2, 3, 4, 5 all satisfy v < 5.5.
        assert_eq!(unit_trips(2.0, 5.5), Some((2, 4)));
        // Upper bound below lower: zero trips, not a wrap.
        assert_eq!(unit_trips(4.0, 2.0), Some((4, 0)));
        // Non-integral or negative lower bounds defer to the scalar loop.
        assert_eq!(unit_trips(0.5, 4.0), None);
        assert_eq!(unit_trips(-1.0, 4.0), None);
        assert_eq!(unit_trips(0.0, 1e18), None);
    }

    #[test]
    fn burst_stops_at_fuel_and_interrupt_boundaries() {
        // No interrupts: bounded by trips and fuel only.
        assert_eq!(burst(100, u64::MAX, false), 100);
        assert_eq!(burst(100, 7, false), 7);
        assert_eq!(burst(0, 7, false), 0);
        // With interrupts armed, the iteration whose post-decrement
        // fuel is a multiple of INTERRUPT_MASK+1 must run scalar; the
        // burst stops one short of it.
        let period = INTERRUPT_MASK + 1;
        assert_eq!(burst(u64::MAX, period, true), period - 1);
        // fuel & MASK == 5: the 5th iteration checks, so 4 are free.
        assert_eq!(burst(u64::MAX, period + 5, true), 4);
        // fuel & MASK == 1: the very next iteration checks.
        assert_eq!(burst(u64::MAX, period + 1, true), 0);
    }

    #[test]
    fn to_indices_matches_index_of_semantics() {
        let src = [0.0, 1.0, 7.0, 2.5, 3.49, 1e9, 0.0, 42.0];
        let mut out = [0usize; LANES];
        assert!(to_indices(&src, &mut out));
        // 2.5 rounds half-away-from-zero like `f64::round`; 3.49 rounds
        // down — both exactly what the scalar `index_of` produces.
        assert_eq!(out, [0, 1, 7, 3, 3, 1_000_000_000, 0, 42]);
        let bad = [0.0, 1.0, -0.5, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert!(!to_indices(&bad, &mut out));
    }

    #[test]
    fn lane_kernels_match_scalar_apply() {
        let a = [1.5, -2.0, 0.0, 3.25, 1e-300, 1e300, -0.0, 7.5];
        let b = [2.0, 4.5, -1.0, 0.125, 1e300, 1e-300, 3.0, -7.5];
        for op in [
            BinSOp::Add,
            BinSOp::Sub,
            BinSOp::Mul,
            BinSOp::Div,
            BinSOp::Mod,
        ] {
            if matches!(op, BinSOp::Div | BinSOp::Mod) && b.contains(&0.0) {
                continue;
            }
            let mut out = [0.0; LANES];
            bin_lanes(op, &a, &b, &mut out);
            for k in 0..LANES {
                assert_eq!(out[k].to_bits(), op.apply(a[k], b[k]).to_bits());
            }
            bin_splat(op, 2.5, &b, &mut out);
            for k in 0..LANES {
                assert_eq!(out[k].to_bits(), op.apply(2.5, b[k]).to_bits());
            }
        }
    }
}
