//! Machine-pool reuse correctness: a machine checked out of a
//! [`MachinePool`] after an **arbitrary prior run** must be
//! byte-identical — DRAM contents and `ExecStats` alike — to a fresh
//! [`Machine::from_compiled`], on both machine engines (flat bytecode
//! and the recursive resolved tree), and must agree with the
//! string-keyed [`ReferenceMachine`] oracle. This is the invariant that
//! lets the sweep executor serve every measurement from recycled
//! machines and still gate bitwise identity against the fresh-machine
//! baseline.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use proptest::prelude::*;
use proptest::test_runner::TestRng;

use stardust_spatial::ir::MemDecl;
use stardust_spatial::{
    faults, CompiledProgram, Counter, DramImage, FaultPlan, Machine, MachinePool, MemKind,
    RunBudget, RunError, SExpr, SpatialProgram, SpatialStmt,
};

const SIZE: usize = 16;

/// A program that reads both input arrays and writes DRAM through all
/// three store paths (bulk, stream, scalar), parameterized by seed so
/// the property sweep covers different shapes — the same generator the
/// `DramImage` aliasing tests use.
fn writing_program(seed: u64) -> SpatialProgram {
    let mut rng = TestRng::for_test(&format!("pool-{seed}"));
    let mut p = SpatialProgram::new(format!("pool_{seed}"));
    p.add_dram("in0", SIZE);
    p.add_dram("in1", SIZE);
    p.add_dram("out0", SIZE);
    p.add_dram("out1", SIZE);
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, SIZE)));
    p.accel.push(SpatialStmt::Load {
        dst: "s".into(),
        src: "in0".into(),
        start: SExpr::Const(0.0),
        end: SExpr::Const(SIZE as f64),
        par: 1,
    });
    let n = 1 + rng.below(SIZE as u64 - 1);
    p.accel.push(SpatialStmt::Store {
        dst: "out0".into(),
        offset: SExpr::Const(0.0),
        src: "s".into(),
        len: SExpr::Const(n as f64),
        par: 1,
    });
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::range_to("i", SExpr::Const(rng.below(SIZE as u64) as f64)),
        par: 1,
        body: vec![SpatialStmt::StoreScalar {
            dst: "out1".into(),
            index: SExpr::var("i"),
            value: SExpr::add(
                SExpr::read_random("in1", SExpr::var("i")),
                SExpr::Const(rng.below(8) as f64),
            ),
        }],
    });
    p.assign_ids();
    p
}

fn inputs(seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let mut rng = TestRng::for_test(&format!("pool-inputs-{seed}"));
    ["in0", "in1"]
        .into_iter()
        .map(|name| {
            let data: Vec<f64> = (0..SIZE).map(|_| rng.below(32) as f64 - 8.0).collect();
            (name, data)
        })
        .collect()
}

fn build_image(compiled: &Arc<CompiledProgram>, writes: &[(&str, Vec<f64>)]) -> DramImage {
    let mut b = DramImage::builder(Arc::clone(compiled));
    for (name, data) in writes {
        let slot = compiled.syms().dram_slot(name).expect("declared");
        b.write(slot, data).expect("fits");
    }
    b.finish()
}

fn dram_bits(m: &Machine, name: &str) -> Vec<u64> {
    m.dram(name).unwrap().iter().map(|v| v.to_bits()).collect()
}

/// Runs `m` with the engine selected by `engine` (0 = bytecode, 1 =
/// resolved tree).
fn run_engine(m: &mut Machine, p: &SpatialProgram, engine: usize) -> stardust_spatial::ExecStats {
    match engine {
        0 => m.run(p).expect("bytecode engine runs"),
        _ => m.run_tree(p).expect("resolved tree runs"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pool-reuse property: dirty a pooled machine with an
    /// arbitrary prior run (arbitrary dataset, either machine engine),
    /// check it out again for a different dataset, and require the
    /// rerun to be byte-identical — every DRAM array and the full
    /// `ExecStats` — to a fresh machine, on both machine engines, and
    /// in agreement with the string-keyed reference oracle.
    #[test]
    fn pooled_checkout_matches_fresh_machine(
        seed in 0u64..50_000,
        prior_seed in 0u64..50_000,
        prior_engine in 0usize..2,
        engine in 0usize..2,
    ) {
        let p = writing_program(seed);
        let compiled = Arc::new(CompiledProgram::compile(&p));
        let prior_image = build_image(&compiled, &inputs(prior_seed));
        let target_writes = inputs(seed.wrapping_add(1));
        let target_image = build_image(&compiled, &target_writes);

        // One shard: the checked-in machine is deterministically the
        // one the next checkout receives.
        let pool = MachinePool::with_shards(1);
        {
            let mut dirty = pool
                .checkout_bound(&compiled, &prior_image)
                .expect("prior checkout");
            run_engine(&mut dirty, &p, prior_engine);
        }
        prop_assert_eq!(pool.stats().created, 1);

        let mut pooled = pool
            .checkout_bound(&compiled, &target_image)
            .expect("target checkout");
        prop_assert_eq!(pool.stats().reused, 1, "checkout did not reuse");
        let pooled_stats = run_engine(&mut pooled, &p, engine);

        let mut fresh = Machine::from_compiled(Arc::clone(&compiled));
        fresh.bind_image(&target_image).expect("fresh bind");
        let fresh_stats = run_engine(&mut fresh, &p, engine);

        prop_assert_eq!(&pooled_stats, &fresh_stats, "stats diverge on reuse");
        for d in &p.drams {
            prop_assert_eq!(
                dram_bits(&pooled, &d.name),
                dram_bits(&fresh, &d.name),
                "DRAM {} diverges between pooled and fresh machine",
                &d.name
            );
        }

        // Third engine: the string-keyed reference walker agrees too.
        let mut reference = stardust_spatial::ReferenceMachine::new(&p);
        for (name, data) in &target_writes {
            reference.write_dram(name, data).expect("mirror dram");
        }
        let ref_stats = reference.run(&p).expect("reference engine runs");
        prop_assert_eq!(&pooled_stats, &ref_stats, "stats diverge from reference");
        for d in &p.drams {
            let r: Vec<u64> = reference
                .dram(&d.name)
                .expect("dram present")
                .iter()
                .map(|v| v.to_bits())
                .collect();
            prop_assert_eq!(
                dram_bits(&pooled, &d.name),
                r,
                "DRAM {} diverges from reference",
                &d.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The abort-recovery property: interrupt a pooled run at a random
    /// fuel count, return the machine to the pool, and require the next
    /// checkout to behave byte-identically to a fresh machine. An
    /// interrupted (budget-aborted) machine is poisoned, so the pool
    /// must quarantine it — never recycle it — and the re-checkout gets
    /// a newly built machine; a run the fuel happened to cover completes
    /// normally and its machine is recycled as usual. Either way the
    /// rerun's DRAM and stats must land exactly on the fresh baseline.
    #[test]
    fn interrupted_runs_are_quarantined_and_reruns_match_fresh(
        seed in 0u64..50_000,
        fuel in 1u64..24,
        engine in 0usize..2,
    ) {
        let p = writing_program(seed);
        let compiled = Arc::new(CompiledProgram::compile(&p));
        let image = build_image(&compiled, &inputs(seed));

        let mut fresh = Machine::from_compiled(Arc::clone(&compiled));
        fresh.bind_image(&image).expect("fresh bind");
        let fresh_stats = run_engine(&mut fresh, &p, engine);

        let pool = MachinePool::with_shards(1);
        let interrupted = {
            let mut m = pool
                .checkout_bound(&compiled, &image)
                .expect("first checkout");
            m.set_budget(RunBudget::default().with_max_steps(fuel));
            // When the CI chaos sweep sets STARDUST_FAULTS, the
            // interrupting run additionally faces that plan (installed
            // fresh per case, dropped before the recovery checkout) —
            // an injected fault must quarantine exactly like a budget
            // abort does.
            let env_plan = FaultPlan::from_env().expect("STARDUST_FAULTS is malformed");
            let run = {
                let _guard = env_plan.map(FaultPlan::install);
                match engine {
                    0 => m.run(&p),
                    _ => m.run_tree(&p),
                }
            };
            match run {
                Ok(stats) => {
                    prop_assert_eq!(&stats, &fresh_stats, "budgeted complete run diverges");
                    prop_assert!(!m.poisoned());
                    false
                }
                Err(RunError::BudgetExceeded { .. }) | Err(RunError::InjectedFault { .. }) => {
                    prop_assert!(m.poisoned(), "interrupted machine must be poisoned");
                    true
                }
                Err(other) => {
                    prop_assert!(false, "unexpected error {other:?}");
                    unreachable!()
                }
            }
        };
        let stats = pool.stats();
        if interrupted {
            prop_assert_eq!(stats.quarantined, 1, "interrupted machine not quarantined");
            prop_assert_eq!(pool.idle(), 0, "poisoned machine leaked into the pool");
        } else {
            prop_assert_eq!(stats.quarantined, 0);
            prop_assert_eq!(pool.idle(), 1);
        }

        // The next checkout — a fresh build after quarantine, a recycled
        // machine otherwise — must be byte-identical to a fresh machine.
        let mut next = pool
            .checkout_bound(&compiled, &image)
            .expect("re-checkout");
        let next_stats = run_engine(&mut next, &p, engine);
        prop_assert_eq!(&next_stats, &fresh_stats, "post-interrupt stats diverge");
        for d in &p.drams {
            prop_assert_eq!(
                dram_bits(&next, &d.name),
                dram_bits(&fresh, &d.name),
                "post-interrupt DRAM {} diverges from fresh",
                &d.name
            );
        }
        let stats = pool.stats();
        if interrupted {
            prop_assert_eq!(stats.created, 2, "quarantine must force a fresh build");
        } else {
            prop_assert_eq!(stats.reused, 1, "clean machine must be recycled");
        }
    }
}

/// A machine that panics mid-run (via the fault-injection harness) is
/// poisoned by the unwind and quarantined on check-in; the next
/// checkout builds a fresh machine that runs clean.
#[test]
fn panicked_machines_are_quarantined() {
    let p = writing_program(11);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let image = build_image(&compiled, &inputs(11));
    let pool = MachinePool::with_shards(1);

    let plan = FaultPlan {
        panic_at_step: Some(0),
        ..FaultPlan::default()
    };
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        faults::with_plan(plan, || {
            let mut m = pool
                .checkout_bound(&compiled, &image)
                .expect("checkout before panic");
            let _ = m.run(&p);
        });
    }));
    assert!(unwound.is_err(), "the injected panic must unwind");

    let stats = pool.stats();
    assert_eq!(stats.quarantined, 1, "panicked machine not quarantined");
    assert_eq!(pool.idle(), 0, "panicked machine leaked into the pool");

    let mut m = pool
        .checkout_bound(&compiled, &image)
        .expect("post-panic checkout");
    m.run(&p).expect("post-panic run is clean");
    assert_eq!(pool.stats().created, 2, "recovery must use a fresh machine");
}

/// Sequential checkouts create once, then recycle.
#[test]
fn checkout_creates_then_reuses() {
    let p = writing_program(1);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let pool = MachinePool::with_shards(1);
    for _ in 0..3 {
        let m = pool.checkout(&compiled);
        drop(m);
    }
    let stats = pool.stats();
    assert_eq!(stats.created, 1);
    assert_eq!(stats.reused, 2);
    assert_eq!(pool.idle(), 1);
    pool.clear();
    assert_eq!(pool.idle(), 0);
}

/// Two compiled programs keep separate free lists even in one shard.
#[test]
fn distinct_programs_do_not_share_machines() {
    let p1 = writing_program(2);
    let p2 = writing_program(3);
    let c1 = Arc::new(CompiledProgram::compile(&p1));
    let c2 = Arc::new(CompiledProgram::compile(&p2));
    let pool = MachinePool::with_shards(1);
    drop(pool.checkout(&c1));
    drop(pool.checkout(&c2));
    assert_eq!(pool.stats().created, 2, "c2 must not receive c1's machine");
    assert_eq!(pool.idle(), 2);
    drop(pool.checkout(&c1));
    drop(pool.checkout(&c2));
    assert_eq!(pool.stats().reused, 2);
}

/// A machine re-linked to a different program while checked out is
/// discarded on check-in: its slot space no longer matches the pool
/// key's layout invariants.
#[test]
fn relinked_machines_are_not_pooled() {
    let p1 = writing_program(4);
    let p2 = writing_program(5);
    let compiled = Arc::new(CompiledProgram::compile(&p1));
    let pool = MachinePool::with_shards(1);
    {
        let mut m = pool.checkout(&compiled);
        m.run(&p2).expect("relink run");
    }
    assert_eq!(pool.idle(), 0, "relinked machine leaked back into the pool");
    drop(pool.checkout(&compiled));
    let stats = pool.stats();
    assert_eq!(stats.created, 2);
    assert_eq!(stats.reused, 0);
}

/// `checkout_bound` rejects an image built for a different program and
/// still returns the (clean) machine to the pool.
#[test]
fn checkout_bound_rejects_mismatched_image() {
    let p1 = writing_program(6);
    let p2 = writing_program(7);
    let c1 = Arc::new(CompiledProgram::compile(&p1));
    let c2 = Arc::new(CompiledProgram::compile(&p2));
    let image = build_image(&c1, &inputs(6));
    let pool = MachinePool::with_shards(1);
    match pool.checkout_bound(&c2, &image) {
        Err(RunError::ImageMismatch) => {}
        other => panic!("expected ImageMismatch, got {other:?}"),
    }
    assert_eq!(pool.idle(), 1, "the clean machine must return to the pool");
}

/// A detached machine never returns to the pool.
#[test]
fn detached_machines_leave_the_pool() {
    let p = writing_program(8);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let pool = MachinePool::with_shards(1);
    let m = pool.checkout(&compiled).detach();
    drop(m);
    assert_eq!(pool.idle(), 0);
}

/// The pool is shared across scoped threads: concurrent workers check
/// out, run, and check in without losing a measurement, and every
/// checkout is accounted as created or reused.
#[test]
fn pool_serves_concurrent_workers() {
    let p = writing_program(9);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let image = build_image(&compiled, &inputs(9));
    let pool = MachinePool::new();

    let mut expected = Machine::from_compiled(Arc::clone(&compiled));
    expected.bind_image(&image).expect("bind");
    expected.run(&p).expect("runs");
    let want: Vec<Vec<u64>> = p
        .drams
        .iter()
        .map(|d| dram_bits(&expected, &d.name))
        .collect();

    const THREADS: usize = 4;
    const ITERS: usize = 8;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..ITERS {
                    let mut m = pool.checkout_bound(&compiled, &image).expect("checkout");
                    m.run(&p).expect("runs");
                    for (d, bits) in p.drams.iter().zip(&want) {
                        assert_eq!(
                            &dram_bits(&m, &d.name),
                            bits,
                            "worker diverged on {}",
                            d.name
                        );
                    }
                }
            });
        }
    });
    let stats = pool.stats();
    assert_eq!(
        stats.created + stats.reused,
        (THREADS * ITERS) as u64,
        "every checkout must be accounted"
    );
    assert!(
        pool.idle() as u64 <= stats.created,
        "more idle machines than were ever created"
    );
}

/// `occupancy()` tracks live checkouts: `checked_out` rises while a
/// guard is alive, falls on check-in (machine parked as idle) and on
/// `detach` (machine leaves the pool without parking). The serving
/// layer reads this snapshot to report pool pressure, so the counter
/// must never drift.
#[test]
fn occupancy_tracks_checkouts_and_detach() {
    let p = writing_program(10);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let image = build_image(&compiled, &inputs(10));
    let pool = MachinePool::with_shards(1);

    let start = pool.occupancy();
    assert_eq!(start.checked_out, 0);
    assert_eq!(start.idle, 0);
    assert_eq!(start.shards, 1);

    {
        let _a = pool.checkout_bound(&compiled, &image).expect("checkout a");
        let _b = pool.checkout(&compiled);
        let live = pool.occupancy();
        assert_eq!(live.checked_out, 2, "two guards are alive");
        assert_eq!(live.idle, 0);
        assert_eq!(live.stats.created, 2);
    }
    let parked = pool.occupancy();
    assert_eq!(parked.checked_out, 0, "check-in must decrement");
    assert_eq!(parked.idle, 2, "both machines parked as idle");

    // Detach decrements the live count without parking the machine.
    let m = pool.checkout(&compiled).detach();
    let after_detach = pool.occupancy();
    assert_eq!(after_detach.checked_out, 0, "detach must decrement");
    assert_eq!(after_detach.idle, 1, "detached machine never parks");
    drop(m);
    assert_eq!(pool.occupancy().idle, 1);
    assert_eq!(pool.occupancy().stats.reused, 1);
}
