//! Differential tests for the data-parallel (vector) execution tier.
//!
//! The vector tier must be *observably invisible*: for every program it
//! chunks, the bytecode engine with vectorization on must produce
//! bitwise-identical DRAM, identical `ExecStats`, and identical errors
//! to the scalar bytecode engine, the resolved-tree walker, and the
//! string-keyed reference engine. These tests sweep the remainder
//! lengths around the chunk width (0, 1, LANES-1, LANES, LANES+1,
//! 2*LANES-1, ...), misaligned loop starts, faulting lanes in the
//! middle of a chunk, and — the fuel-drift regression — step budgets
//! that exhaust *inside* a vector chunk, where the abort point must
//! land on the identical iteration with the identical partial DRAM.
//! Raise `PROPTEST_CASES` for deeper sweeps (CI does).

use proptest::prelude::*;
use proptest::test_runner::TestRng;

use stardust_spatial::ir::MemDecl;
use stardust_spatial::vector::LANES;
use stardust_spatial::{
    Counter, Machine, MemKind, ReferenceMachine, RunBudget, SExpr, ScanOp, SpatialProgram,
    SpatialStmt,
};

/// Runs `p` on four engines — bytecode with the vector tier forced on,
/// bytecode with it forced off, the resolved-tree walker, and the
/// reference engine — and asserts identical results (or errors),
/// bitwise-identical DRAM, and identical statistics. An optional step
/// budget applies to all four.
fn assert_engines_agree(p: &SpatialProgram, writes: &[(&str, Vec<f64>)], fuel: Option<u64>) {
    let mut vec_m = Machine::new(p);
    for (name, data) in writes {
        vec_m.write_dram(name, data).unwrap();
    }
    if let Some(f) = fuel {
        vec_m.set_budget(RunBudget::unlimited().with_max_steps(f));
    }
    let mut scalar_m = vec_m.clone();
    let mut tree_m = vec_m.clone();
    let mut reference = ReferenceMachine::new(p);
    for (name, data) in writes {
        reference.write_dram(name, data).unwrap();
    }
    if let Some(f) = fuel {
        reference.set_budget(RunBudget::unlimited().with_max_steps(f));
    }
    vec_m.set_vector_mode(true);
    scalar_m.set_vector_mode(false);
    let rv = vec_m.run(p);
    let rs = scalar_m.run(p);
    let rt = tree_m.run_tree(p);
    let rr = reference.run(p);
    assert_eq!(rv, rs, "vector vs scalar bytecode results diverge");
    assert_eq!(rv, rt, "vector bytecode vs tree results diverge");
    assert_eq!(rv, rr, "vector bytecode vs reference results diverge");
    for d in &p.drams {
        let bits =
            |m: Option<&[f64]>| -> Vec<u64> { m.unwrap().iter().map(|v| v.to_bits()).collect() };
        let v = bits(vec_m.dram(&d.name));
        assert_eq!(
            v,
            bits(scalar_m.dram(&d.name)),
            "DRAM {} vector vs scalar diverges",
            d.name
        );
        assert_eq!(
            v,
            bits(tree_m.dram(&d.name)),
            "DRAM {} vector vs tree diverges",
            d.name
        );
        assert_eq!(
            v,
            bits(reference.dram(&d.name)),
            "DRAM {} vector vs reference diverges",
            d.name
        );
    }
    assert_eq!(
        vec_m.stats(),
        scalar_m.stats(),
        "vector vs scalar stats diverge"
    );
    assert_eq!(
        vec_m.stats(),
        tree_m.stats(),
        "vector vs tree stats diverge"
    );
    assert_eq!(
        vec_m.stats(),
        reference.stats(),
        "vector vs reference stats diverge"
    );
}

/// Deterministic data generator (no RNG dependency on the hot loop).
fn series(seed: u64, len: usize, modulus: u64, offset: f64) -> Vec<f64> {
    let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as f64 % modulus as f64 + offset
        })
        .collect()
}

fn alloc(p: &mut SpatialProgram, name: &str, kind: MemKind, size: usize) {
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new(name, kind, size)));
}

fn load_all(p: &mut SpatialProgram, dst: &str, src: &str, len: usize) {
    p.accel.push(SpatialStmt::Load {
        dst: dst.into(),
        src: src.into(),
        start: SExpr::Const(0.0),
        end: SExpr::Const(len as f64),
        par: 1,
    });
}

const XS: usize = 32;
const ACC: usize = 24;

/// The CSR SpMV inner loop over `j in [lo, lo+n)`:
/// `r += vals_s[j] * x_s[crd_s[j]]` with an empty body — the
/// `GatherReduce` vector class.
fn reduce_program(n: usize, lo: usize) -> SpatialProgram {
    let len = (lo + n).max(1);
    let mut p = SpatialProgram::new("vec_reduce");
    p.add_dram("vals", len);
    p.add_dram("crd", len);
    p.add_dram("x", XS);
    p.add_dram("out", 1);
    alloc(&mut p, "vals_s", MemKind::Sram, len);
    alloc(&mut p, "crd_s", MemKind::Sram, len);
    alloc(&mut p, "x_s", MemKind::SparseSram, XS);
    alloc(&mut p, "r", MemKind::Reg, 1);
    load_all(&mut p, "vals_s", "vals", len);
    load_all(&mut p, "crd_s", "crd", len);
    load_all(&mut p, "x_s", "x", XS);
    p.accel.push(SpatialStmt::Reduce {
        id: 0,
        reg: "r".into(),
        counter: Counter::Range {
            var: "j".into(),
            min: SExpr::Const(lo as f64),
            max: SExpr::Const((lo + n) as f64),
            step: 1,
        },
        par: 1,
        body: vec![],
        expr: SExpr::mul(
            SExpr::read("vals_s", SExpr::var("j")),
            SExpr::read_random("x_s", SExpr::read("crd_s", SExpr::var("j"))),
        ),
    });
    p.accel.push(SpatialStmt::StoreScalar {
        dst: "out".into(),
        index: SExpr::Const(0.0),
        value: SExpr::RegRead("r".into()),
    });
    p.assign_ids();
    p
}

/// The SpMSpM accumulation loop over `j in [lo, lo+n)`:
/// `acc_s[crd_s[j]] += vb * vals_s[j]` — the `Scatter` vector class
/// with a gathered index.
fn scatter_program(n: usize, lo: usize) -> SpatialProgram {
    let len = (lo + n).max(1);
    let mut p = SpatialProgram::new("vec_scatter");
    p.add_dram("vals", len);
    p.add_dram("crd", len);
    p.add_dram("out", ACC);
    alloc(&mut p, "vals_s", MemKind::Sram, len);
    alloc(&mut p, "crd_s", MemKind::Sram, len);
    alloc(&mut p, "acc_s", MemKind::SparseSram, ACC);
    load_all(&mut p, "vals_s", "vals", len);
    load_all(&mut p, "crd_s", "crd", len);
    p.accel.push(SpatialStmt::Bind {
        var: "vb".into(),
        value: SExpr::Const(1.5),
    });
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Range {
            var: "j".into(),
            min: SExpr::Const(lo as f64),
            max: SExpr::Const((lo + n) as f64),
            step: 1,
        },
        par: 1,
        body: vec![SpatialStmt::RmwAdd {
            mem: "acc_s".into(),
            index: SExpr::read("crd_s", SExpr::var("j")),
            value: SExpr::mul(SExpr::var("vb"), SExpr::read("vals_s", SExpr::var("j"))),
        }],
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out".into(),
        offset: SExpr::Const(0.0),
        src: "acc_s".into(),
        len: SExpr::Const(ACC as f64),
        par: 1,
    });
    p.assign_ids();
    p
}

/// A dense fill over `j in [lo, lo+n)`: `s[j] = vals_s[j]` — the
/// `Scatter` class with the iota index plan.
fn dense_fill_program(n: usize, lo: usize) -> SpatialProgram {
    let len = (lo + n).max(1);
    let mut p = SpatialProgram::new("vec_fill");
    p.add_dram("vals", len);
    p.add_dram("out", len);
    alloc(&mut p, "vals_s", MemKind::Sram, len);
    alloc(&mut p, "s", MemKind::Sram, len);
    load_all(&mut p, "vals_s", "vals", len);
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Range {
            var: "j".into(),
            min: SExpr::Const(lo as f64),
            max: SExpr::Const((lo + n) as f64),
            step: 1,
        },
        par: 1,
        body: vec![SpatialStmt::WriteMem {
            mem: "s".into(),
            index: SExpr::var("j"),
            value: SExpr::read("vals_s", SExpr::var("j")),
            random: false,
        }],
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out".into(),
        offset: SExpr::Const(0.0),
        src: "s".into(),
        len: SExpr::Const(len as f64),
        par: 1,
    });
    p.assign_ids();
    p
}

/// Valid scatter inputs for trip count `n` starting at `lo`.
fn scatter_inputs(n: usize, lo: usize, seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let len = (lo + n).max(1);
    vec![
        ("vals", series(seed, len, 16, 0.25)),
        ("crd", series(seed ^ 0xABCD, len, ACC as u64, 0.0)),
    ]
}

fn reduce_inputs(n: usize, lo: usize, seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let len = (lo + n).max(1);
    vec![
        ("vals", series(seed, len, 16, 0.5)),
        ("crd", series(seed ^ 0x1234, len, XS as u64, 0.0)),
        ("x", series(seed ^ 0x77, XS, 32, -8.0)),
    ]
}

/// Remainder sweep: every length around the chunk width, crossed with
/// aligned and misaligned loop starts, on all three vector classes.
#[test]
fn remainder_lengths_and_offsets_are_bit_identical() {
    let lengths = [
        0,
        1,
        LANES - 1,
        LANES,
        LANES + 1,
        2 * LANES - 1,
        2 * LANES,
        2 * LANES + 1,
        5 * LANES + 3,
    ];
    for &n in &lengths {
        for lo in [0usize, 1, 3, LANES - 1] {
            let seed = (n * 31 + lo) as u64;
            assert_engines_agree(&reduce_program(n, lo), &reduce_inputs(n, lo, seed), None);
            assert_engines_agree(&scatter_program(n, lo), &scatter_inputs(n, lo, seed), None);
            let len = (lo + n).max(1);
            assert_engines_agree(
                &dense_fill_program(n, lo),
                &[("vals", series(seed, len, 64, 0.125))],
                None,
            );
        }
    }
}

/// A faulting lane in the middle of a chunk: the error position, the
/// partial DRAM before it, and the statistics must match the scalar
/// engines exactly (the chunk is re-run scalar, committing nothing).
#[test]
fn faulting_lanes_mid_chunk_match_scalar_semantics() {
    let n = 3 * LANES;
    // Out-of-bounds destination index in the middle of the second chunk.
    let mut inputs = scatter_inputs(n, 0, 7);
    inputs[1].1[LANES + 3] = ACC as f64 + 5.0;
    assert_engines_agree(&scatter_program(n, 0), &inputs, None);
    // Negative index in the middle of the first chunk.
    let mut inputs = scatter_inputs(n, 0, 8);
    inputs[1].1[3] = -2.0;
    assert_engines_agree(&scatter_program(n, 0), &inputs, None);
    // Out-of-bounds outer gather in the SpMV dot product.
    let mut inputs = reduce_inputs(n, 0, 9);
    inputs[1].1[2 * LANES + 1] = XS as f64;
    assert_engines_agree(&reduce_program(n, 0), &inputs, None);
    // Negative inner index in the SpMV dot product.
    let mut inputs = reduce_inputs(n, 0, 10);
    inputs[1].1[1] = -1.0;
    assert_engines_agree(&reduce_program(n, 0), &inputs, None);
}

/// The fuel-drift regression: sweep step budgets so exhaustion lands on
/// every iteration of the chunked loops — including points strictly
/// inside a vector chunk. The abort must come at the identical step
/// with byte-identical partial DRAM on all four engines.
#[test]
fn budget_aborts_inside_chunks_are_identical() {
    let n = 5 * LANES;
    let reduce = reduce_program(n, 0);
    let reduce_in = reduce_inputs(n, 0, 21);
    let scatter = scatter_program(n, 0);
    let scatter_in = scatter_inputs(n, 0, 22);
    for fuel in 1..=(n as u64 + 24) {
        assert_engines_agree(&reduce, &reduce_in, Some(fuel));
        assert_engines_agree(&scatter, &scatter_in, Some(fuel));
    }
}

/// Builds a bit vector `name` over `dim` bits with the given set
/// coordinates (sorted, deduped by the caller).
fn bitvector(p: &mut SpatialProgram, name: &str, coords: &[usize], dim: usize) {
    let fifo = format!("{name}_crd");
    alloc(p, name, MemKind::BitVector, dim);
    alloc(p, &fifo, MemKind::Fifo, coords.len().max(1));
    for &c in coords {
        p.accel.push(SpatialStmt::Enq {
            fifo: fifo.clone(),
            value: SExpr::Const(c as f64),
        });
    }
    p.accel.push(SpatialStmt::GenBitVector {
        dst: name.into(),
        src: fifo,
        src_start: SExpr::Const(0.0),
        count: SExpr::Const(coords.len() as f64),
        dim: SExpr::Const(dim as f64),
    });
}

/// A two-vector union scan writing `idx + pa - pb` per emit: exercises
/// the whole-word skip paths (empty words, word-boundary bits, tails).
fn scan_union_program(coords_a: &[usize], coords_b: &[usize], dim: usize) -> SpatialProgram {
    let mut p = SpatialProgram::new("vec_scan");
    p.add_dram("out", dim);
    bitvector(&mut p, "bva", coords_a, dim);
    bitvector(&mut p, "bvb", coords_b, dim);
    alloc(&mut p, "acc_s", MemKind::SparseSram, dim);
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Scan2 {
            op: ScanOp::Or,
            bv_a: "bva".into(),
            bv_b: "bvb".into(),
            a_pos_var: "pa".into(),
            b_pos_var: "pb".into(),
            out_pos_var: "po".into(),
            idx_var: "ix".into(),
        },
        par: 1,
        body: vec![SpatialStmt::WriteMem {
            mem: "acc_s".into(),
            index: SExpr::var("po"),
            value: SExpr::add(
                SExpr::var("ix"),
                SExpr::sub(SExpr::var("pa"), SExpr::var("pb")),
            ),
            random: true,
        }],
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out".into(),
        offset: SExpr::Const(0.0),
        src: "acc_s".into(),
        len: SExpr::Const(dim as f64),
        par: 1,
    });
    p.assign_ids();
    p
}

/// A one-vector scan writing the dense coordinate per emit.
fn scan1_program(coords: &[usize], dim: usize) -> SpatialProgram {
    let mut p = SpatialProgram::new("vec_scan1");
    p.add_dram("out", dim.max(1));
    bitvector(&mut p, "bv", coords, dim);
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Scan1 {
            bv: "bv".into(),
            pos_var: "p".into(),
            idx_var: "x".into(),
        },
        par: 1,
        body: vec![SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::var("p"),
            value: SExpr::var("x"),
        }],
    });
    p.assign_ids();
    p
}

/// The scan word-skip paths: empty vectors, single bits at word
/// boundaries, dense words, and ragged tails must all emit identically
/// with the vector tier on and off.
#[test]
fn scan_word_skip_is_bit_identical() {
    let dim = 200;
    let cases: Vec<(Vec<usize>, Vec<usize>)> = vec![
        (vec![], vec![]),
        (vec![0], vec![199]),
        (vec![63, 64, 65], vec![64]),
        (vec![5, 70, 130, 199], vec![0, 1, 2, 3, 66, 131]),
        ((0..dim).step_by(2).collect(), (0..dim).step_by(3).collect()),
        ((64..128).collect(), vec![]),
    ];
    for (a, b) in &cases {
        assert_engines_agree(&scan_union_program(a, b, dim), &[], None);
        assert_engines_agree(&scan1_program(a, dim), &[], None);
    }
    // Budgeted scans: exhaustion must land on the identical emit.
    let (a, b): (Vec<usize>, Vec<usize>) =
        ((0..dim).step_by(5).collect(), (2..dim).step_by(7).collect());
    for fuel in 1..40 {
        assert_engines_agree(&scan_union_program(&a, &b, dim), &[], Some(fuel));
    }
}

/// Random (length, offset, data, fuel) sweeps over all three range
/// vector classes, with occasional faulting indices mixed in.
fn random_case(seed: u64) {
    let mut rng = TestRng::for_test(&format!("vector-{seed}"));
    let n = rng.below(8 * LANES as u64) as usize;
    let lo = rng.below(2 * LANES as u64) as usize;
    let fuel = match rng.below(3) {
        0 => None,
        _ => Some(1 + rng.below((n as u64 + 8) * 2)),
    };
    let shape = rng.below(3);
    match shape {
        0 => {
            let mut inputs = reduce_inputs(n, lo, seed);
            if n > 0 && rng.below(4) == 0 {
                // A faulting inner index somewhere in the run.
                let at = lo + rng.below(n as u64) as usize;
                inputs[1].1[at] = if rng.below(2) == 0 {
                    -3.0
                } else {
                    XS as f64 + 1.0
                };
            }
            assert_engines_agree(&reduce_program(n, lo), &inputs, fuel);
        }
        1 => {
            let mut inputs = scatter_inputs(n, lo, seed);
            if n > 0 && rng.below(4) == 0 {
                let at = lo + rng.below(n as u64) as usize;
                inputs[1].1[at] = if rng.below(2) == 0 { -1.0 } else { ACC as f64 };
            }
            assert_engines_agree(&scatter_program(n, lo), &inputs, fuel);
        }
        _ => {
            let len = (lo + n).max(1);
            assert_engines_agree(
                &dense_fill_program(n, lo),
                &[("vals", series(seed, len, 64, 0.125))],
                fuel,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Randomized remainder/offset/fault/fuel sweep: the vector tier is
    /// observably invisible on random cases too.
    #[test]
    fn random_vector_cases_are_bit_identical(seed in 0u64..1_000_000) {
        random_case(seed);
    }
}

/// A fused fill/update loop — *three* statements per iteration:
/// `s1[j] = vals_s[j]`, `acc_s[crd_s[j]] += vb * vals_s[j]`, and the
/// computed fill `s2[j] = j * 2.0`. Multi-statement bodies were
/// `VecClass::None` before the effect-analysis framework; they now
/// classify as [`VecClass::MultiScatter`] (pairwise-distinct
/// destinations, no gather reads a written slot) and chunk through the
/// vector tier with statement-major commits.
fn multi_body_program(n: usize, lo: usize) -> SpatialProgram {
    let len = (lo + n).max(1);
    let mut p = SpatialProgram::new("vec_multi");
    p.add_dram("vals", len);
    p.add_dram("crd", len);
    p.add_dram("out1", len);
    p.add_dram("out2", ACC);
    p.add_dram("out3", len);
    alloc(&mut p, "vals_s", MemKind::Sram, len);
    alloc(&mut p, "crd_s", MemKind::Sram, len);
    alloc(&mut p, "s1", MemKind::Sram, len);
    alloc(&mut p, "acc_s", MemKind::SparseSram, ACC);
    alloc(&mut p, "s2", MemKind::Sram, len);
    load_all(&mut p, "vals_s", "vals", len);
    load_all(&mut p, "crd_s", "crd", len);
    p.accel.push(SpatialStmt::Bind {
        var: "vb".into(),
        value: SExpr::Const(1.5),
    });
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Range {
            var: "j".into(),
            min: SExpr::Const(lo as f64),
            max: SExpr::Const((lo + n) as f64),
            step: 1,
        },
        par: 1,
        body: vec![
            SpatialStmt::WriteMem {
                mem: "s1".into(),
                index: SExpr::var("j"),
                value: SExpr::read("vals_s", SExpr::var("j")),
                random: false,
            },
            SpatialStmt::RmwAdd {
                mem: "acc_s".into(),
                index: SExpr::read("crd_s", SExpr::var("j")),
                value: SExpr::mul(SExpr::var("vb"), SExpr::read("vals_s", SExpr::var("j"))),
            },
            SpatialStmt::WriteMem {
                mem: "s2".into(),
                index: SExpr::var("j"),
                value: SExpr::mul(SExpr::var("j"), SExpr::Const(2.0)),
                random: false,
            },
        ],
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out1".into(),
        offset: SExpr::Const(0.0),
        src: "s1".into(),
        len: SExpr::Const(len as f64),
        par: 1,
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out2".into(),
        offset: SExpr::Const(0.0),
        src: "acc_s".into(),
        len: SExpr::Const(ACC as f64),
        par: 1,
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out3".into(),
        offset: SExpr::Const(0.0),
        src: "s2".into(),
        len: SExpr::Const(len as f64),
        par: 1,
    });
    p.assign_ids();
    p
}

/// The offset dense fill `s[j + off] = vals_s[j]` — previously
/// `VecClass::None` (the index is not the bare loop variable), now a
/// [`VecClass::Scatter`] via the `[VarConstBin, End]` offset-iota
/// index plan.
fn offset_fill_program(n: usize, lo: usize, off: usize) -> SpatialProgram {
    let len = (lo + n).max(1);
    let slen = len + off;
    let mut p = SpatialProgram::new("vec_offset_fill");
    p.add_dram("vals", len);
    p.add_dram("out", slen);
    alloc(&mut p, "vals_s", MemKind::Sram, len);
    alloc(&mut p, "s", MemKind::Sram, slen);
    load_all(&mut p, "vals_s", "vals", len);
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Range {
            var: "j".into(),
            min: SExpr::Const(lo as f64),
            max: SExpr::Const((lo + n) as f64),
            step: 1,
        },
        par: 1,
        body: vec![SpatialStmt::WriteMem {
            mem: "s".into(),
            index: SExpr::add(SExpr::var("j"), SExpr::Const(off as f64)),
            value: SExpr::read("vals_s", SExpr::var("j")),
            random: false,
        }],
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out".into(),
        offset: SExpr::Const(0.0),
        src: "s".into(),
        len: SExpr::Const(slen as f64),
        par: 1,
    });
    p.assign_ids();
    p
}

/// The computed dense fill `s[j] = j * 2.0` — previously
/// `VecClass::None` (the value is neither a constant, variable, nor
/// gather), now a [`VecClass::Scatter`] via the per-lane
/// `[VarConstBin, End]` value plan.
fn computed_fill_program(n: usize, lo: usize) -> SpatialProgram {
    let len = (lo + n).max(1);
    let mut p = SpatialProgram::new("vec_computed_fill");
    p.add_dram("out", len);
    alloc(&mut p, "s", MemKind::Sram, len);
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Range {
            var: "j".into(),
            min: SExpr::Const(lo as f64),
            max: SExpr::Const((lo + n) as f64),
            step: 1,
        },
        par: 1,
        body: vec![SpatialStmt::WriteMem {
            mem: "s".into(),
            index: SExpr::var("j"),
            value: SExpr::mul(SExpr::var("j"), SExpr::Const(2.0)),
            random: false,
        }],
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out".into(),
        offset: SExpr::Const(0.0),
        src: "s".into(),
        len: SExpr::Const(len as f64),
        par: 1,
    });
    p.assign_ids();
    p
}

fn multi_inputs(n: usize, lo: usize, seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let len = (lo + n).max(1);
    vec![
        ("vals", series(seed, len, 16, 0.25)),
        ("crd", series(seed ^ 0xBEEF, len, ACC as u64, 0.0)),
    ]
}

/// The widened classifier verdicts, asserted on the compiled artifact:
/// the shapes the new tests sweep must actually take the new paths.
#[test]
fn widened_shapes_classify_as_tagged() {
    use stardust_spatial::{CompiledProgram, VecClass};
    let find = |p: &SpatialProgram, class: VecClass| {
        let c = CompiledProgram::compile(p);
        assert!(
            (0..c.ops().len()).any(|pc| c.vec_class(pc) == class),
            "{} never classifies {:?}",
            p.name,
            class
        );
    };
    find(&multi_body_program(3 * LANES, 0), VecClass::MultiScatter);
    find(&offset_fill_program(3 * LANES, 0, 2), VecClass::Scatter);
    find(&computed_fill_program(3 * LANES, 0), VecClass::Scatter);
}

/// Remainder sweep over the widened shapes: multi-statement bodies,
/// offset fills, and computed fills are bit-identical across all four
/// engines at every length and loop start around the chunk width.
#[test]
fn widened_shapes_are_bit_identical() {
    let lengths = [
        0,
        1,
        LANES - 1,
        LANES,
        LANES + 1,
        2 * LANES + 1,
        5 * LANES + 3,
    ];
    for &n in &lengths {
        for lo in [0usize, 1, LANES - 1] {
            let seed = (n * 37 + lo) as u64;
            let len = (lo + n).max(1);
            assert_engines_agree(&multi_body_program(n, lo), &multi_inputs(n, lo, seed), None);
            for off in [0usize, 1, 7] {
                assert_engines_agree(
                    &offset_fill_program(n, lo, off),
                    &[("vals", series(seed, len, 64, 0.125))],
                    None,
                );
            }
            assert_engines_agree(&computed_fill_program(n, lo), &[], None);
        }
    }
}

/// A faulting lane in the middle of a multi-statement chunk: the whole
/// chunk must re-run scalar, committing the exact statement prefix the
/// scalar engines commit and aborting at the identical statement.
#[test]
fn multi_statement_faults_match_scalar_semantics() {
    let n = 3 * LANES;
    // Out-of-bounds accumulate index in the middle of the second chunk:
    // statement 1 of that iteration faults *after* statement 0's write.
    let mut inputs = multi_inputs(n, 0, 41);
    inputs[1].1[LANES + 5] = ACC as f64 + 3.0;
    assert_engines_agree(&multi_body_program(n, 0), &inputs, None);
    // Negative index in the first chunk.
    let mut inputs = multi_inputs(n, 0, 42);
    inputs[1].1[2] = -4.0;
    assert_engines_agree(&multi_body_program(n, 0), &inputs, None);
}

/// Fuel exhaustion landing on every iteration of the widened shapes —
/// including points strictly inside a chunk. Abort step and partial
/// DRAM must be identical on all four engines.
#[test]
fn widened_shape_budget_aborts_are_identical() {
    let n = 3 * LANES;
    let multi = multi_body_program(n, 0);
    let multi_in = multi_inputs(n, 0, 51);
    let offset = offset_fill_program(n, 0, 3);
    let offset_in = [("vals", series(52, n, 64, 0.125))];
    let computed = computed_fill_program(n, 0);
    for fuel in 1..=(n as u64 + 16) {
        assert_engines_agree(&multi, &multi_in, Some(fuel));
        assert_engines_agree(&offset, &offset_in, Some(fuel));
        assert_engines_agree(&computed, &[], Some(fuel));
    }
}

/// Runs `p` with bounds-check elision forced on and forced off (on
/// both the vector and scalar bytecode engines) and asserts
/// bit-identical DRAM, results, and statistics — the elision table
/// must be observably invisible.
fn assert_elide_invisible(p: &SpatialProgram, writes: &[(&str, Vec<f64>)], fuel: Option<u64>) {
    let mut machines = Vec::new();
    for (vector, elide) in [(true, true), (true, false), (false, true), (false, false)] {
        let mut m = Machine::new(p);
        for (name, data) in writes {
            m.write_dram(name, data).unwrap();
        }
        if let Some(f) = fuel {
            m.set_budget(RunBudget::unlimited().with_max_steps(f));
        }
        m.set_vector_mode(vector);
        m.set_elide_mode(elide);
        let r = m.run(p);
        machines.push((vector, elide, m, r));
    }
    let (_, _, m0, r0) = &machines[0];
    for (vector, elide, m, r) in &machines[1..] {
        assert_eq!(r0, r, "elide divergence (vector={vector}, elide={elide})");
        for d in &p.drams {
            let bits = |m: &Machine| -> Vec<u64> {
                m.dram(&d.name)
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            };
            assert_eq!(
                bits(m0),
                bits(m),
                "DRAM {} elide divergence (vector={vector}, elide={elide})",
                d.name
            );
        }
        assert_eq!(
            m0.stats(),
            m.stats(),
            "stats elide divergence (vector={vector}, elide={elide})"
        );
    }
}

/// Bounds-check elision is observably invisible: dense fills (the
/// proven-in-bounds shape) and computed fills run bit-identically with
/// the elision table honored and ignored, across remainder lengths and
/// mid-loop fuel aborts.
#[test]
fn elide_mode_is_observably_invisible() {
    for &n in &[0usize, 1, LANES, 2 * LANES + 1, 5 * LANES + 3] {
        for lo in [0usize, 1] {
            let len = (lo + n).max(1);
            let vals = series((n + lo) as u64, len, 64, 0.125);
            assert_elide_invisible(&dense_fill_program(n, lo), &[("vals", vals)], None);
            assert_elide_invisible(&computed_fill_program(n, lo), &[], None);
        }
    }
    // Fuel aborts inside the elided loop land on the identical step.
    let n = 2 * LANES + 3;
    let vals = series(9, n, 64, 0.125);
    for fuel in 1..=(n as u64 + 8) {
        assert_elide_invisible(
            &dense_fill_program(n, 0),
            &[("vals", vals.clone())],
            Some(fuel),
        );
    }
    // The elision table licenses the dense fill.
    use stardust_spatial::CompiledProgram;
    let c = CompiledProgram::compile(&dense_fill_program(2 * LANES, 0));
    assert!(
        (0..c.ops().len()).any(|pc| c.elide_at(pc)),
        "dense fill carries no elision license"
    );
}
