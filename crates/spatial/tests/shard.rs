//! Property suite for the intra-kernel sharding pass
//! ([`stardust_spatial::shard`]): for random shardable programs, a
//! sharded pooled run must be **bitwise identical** to a serial run —
//! every output DRAM word and every [`ExecStats`] field — at any shard
//! count, whether the pool grants full or degraded capacity, and even
//! when an installed fault plan kills shards mid-run (transient
//! failures retry once on a fresh machine). Programs the partitioning
//! pass cannot prove safe must be rejected with the precise
//! [`NotShardable`] reason, one test per reason.

use std::sync::Arc;

use proptest::prelude::*;
use proptest::test_runner::TestRng;

use stardust_spatial::faults;
use stardust_spatial::ir::MemDecl;
use stardust_spatial::{
    CompiledProgram, Counter, DramImage, ExecStats, FaultPlan, Machine, MachinePool, MemKind,
    NotShardable, RunBudget, RunError, SExpr, ScanOp, ShardError, ShardPlan, SpatialProgram,
    SpatialStmt,
};

const SIZE: usize = 16;
/// Output arrays are sized past any generated loop bound so direct
/// `out(i)` stores stay in range.
const OUT: usize = 64;

/// A deterministic random *shardable* program: a read-only prefix
/// (loads into SRAM/SparseSRAM) and a trailing constant-bound `Range`
/// loop whose body only touches iteration-local chip state and writes
/// DRAM through all three store paths. Bounds, step, and the mix of
/// body blocks vary per seed; distinct iterations may write the same
/// output words (last-write-wins order is part of the contract).
fn random_shardable_program(seed: u64) -> SpatialProgram {
    let mut rng = TestRng::for_test(&format!("shard-{seed}"));
    let mut p = SpatialProgram::new(format!("shardable_{seed}"));
    p.add_dram("in0", SIZE);
    p.add_dram("in1", SIZE);
    p.add_dram("out0", OUT);
    p.add_dram("out1", OUT);
    for (mem, kind, src) in [
        ("s0", MemKind::Sram, "in0"),
        ("sp1", MemKind::SparseSram, "in1"),
    ] {
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new(mem, kind, SIZE)));
        p.accel.push(SpatialStmt::Load {
            dst: mem.into(),
            src: src.into(),
            start: SExpr::Const(0.0),
            end: SExpr::Const(SIZE as f64),
            par: 1 + rng.below(16) as usize,
        });
    }

    let lo = rng.below(5) as f64;
    let hi = lo + rng.below(40) as f64;
    let step = 1 + rng.below(3) as i64;
    let blocks = 1 + rng.below(3);
    let mut body = Vec::new();
    for b in 0..blocks {
        match rng.below(4) {
            // Direct scalar store of a prefix-SRAM gather.
            0 => body.push(SpatialStmt::StoreScalar {
                dst: "out0".into(),
                index: SExpr::var("i"),
                value: SExpr::add(
                    SExpr::read(
                        "s0",
                        SExpr::bin(
                            stardust_spatial::BinSOp::Mod,
                            SExpr::var("i"),
                            SExpr::Const(SIZE as f64),
                        ),
                    ),
                    SExpr::Const(rng.below(8) as f64),
                ),
            }),
            // Iteration-local register reduction over a nested range,
            // gathering through the shuffle network.
            1 => {
                let acc = format!("acc{b}");
                body.push(SpatialStmt::Alloc(MemDecl::new(&acc, MemKind::Reg, 1)));
                body.push(SpatialStmt::Reduce {
                    id: 0,
                    reg: acc.clone(),
                    counter: Counter::range_to("j", SExpr::Const(1.0 + rng.below(8) as f64)),
                    par: 1,
                    body: vec![],
                    expr: SExpr::mul(
                        SExpr::read_random(
                            "sp1",
                            SExpr::bin(
                                stardust_spatial::BinSOp::Mod,
                                SExpr::add(SExpr::var("i"), SExpr::var("j")),
                                SExpr::Const(SIZE as f64),
                            ),
                        ),
                        SExpr::Const(1.0 + rng.below(4) as f64),
                    ),
                });
                body.push(SpatialStmt::StoreScalar {
                    dst: "out1".into(),
                    index: SExpr::var("i"),
                    value: SExpr::RegRead(acc),
                });
            }
            // Iteration-local scratch SRAM spilled in bulk: distinct
            // iterations overlap output windows, exercising the
            // merge's last-write-wins replay.
            2 => {
                let scratch = format!("t{b}");
                body.push(SpatialStmt::Alloc(MemDecl::new(&scratch, MemKind::Sram, 4)));
                body.push(SpatialStmt::Foreach {
                    id: 0,
                    counter: Counter::range_to("k", SExpr::Const(4.0)),
                    par: 1,
                    body: vec![SpatialStmt::WriteMem {
                        mem: scratch.clone(),
                        index: SExpr::var("k"),
                        value: SExpr::add(SExpr::var("i"), SExpr::var("k")),
                        random: false,
                    }],
                });
                body.push(SpatialStmt::Store {
                    dst: "out0".into(),
                    offset: SExpr::bin(
                        stardust_spatial::BinSOp::Mod,
                        SExpr::mul(SExpr::var("i"), SExpr::Const(3.0)),
                        SExpr::Const((OUT - 4) as f64),
                    ),
                    src: scratch,
                    len: SExpr::Const(4.0),
                    par: 2,
                });
            }
            // Iteration-local bit vector + scan loop (the declarative-
            // sparse shape), overlapping `out1` writes across
            // iterations.
            _ => {
                let bv = format!("bv{b}");
                let fifo = format!("f{b}");
                body.push(SpatialStmt::Alloc(MemDecl::new(
                    &bv,
                    MemKind::BitVector,
                    SIZE,
                )));
                body.push(SpatialStmt::Alloc(MemDecl::new(&fifo, MemKind::Fifo, 8)));
                let coords = 1 + rng.below(4);
                for c in 0..coords {
                    body.push(SpatialStmt::Enq {
                        fifo: fifo.clone(),
                        value: SExpr::Const(((c * 3 + rng.below(3)) % SIZE as u64) as f64),
                    });
                }
                body.push(SpatialStmt::GenBitVector {
                    dst: bv.clone(),
                    src: fifo,
                    src_start: SExpr::Const(0.0),
                    count: SExpr::Const(coords as f64),
                    dim: SExpr::Const(SIZE as f64),
                });
                body.push(SpatialStmt::Foreach {
                    id: 0,
                    counter: Counter::Scan1 {
                        bv,
                        pos_var: "p".into(),
                        idx_var: "ix".into(),
                    },
                    par: 1,
                    body: vec![SpatialStmt::StoreScalar {
                        dst: "out1".into(),
                        index: SExpr::add(SExpr::var("ix"), SExpr::Const(8.0)),
                        value: SExpr::add(SExpr::var("p"), SExpr::var("i")),
                    }],
                });
            }
        }
    }
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Range {
            var: "i".into(),
            min: SExpr::Const(lo),
            max: SExpr::Const(hi),
            step,
        },
        par: 1,
        body,
    });
    p.assign_ids();
    p
}

/// Deterministic input data + image for a compiled program.
fn build_image(compiled: &Arc<CompiledProgram>, seed: u64) -> DramImage {
    let mut b = DramImage::builder(Arc::clone(compiled));
    for (name, mix) in [("in0", 3u64), ("in1", 5u64)] {
        let data: Vec<f64> = (0..SIZE as u64)
            .map(|w| ((w * mix + seed) % 23) as f64 * 0.5 + 0.25)
            .collect();
        let slot = compiled.syms().dram_slot(name).expect("declared dram");
        b.write(slot, &data).expect("write input");
    }
    b.finish()
}

/// Serial expectation: a fresh machine bound to the image, run once.
fn run_serial(
    compiled: &Arc<CompiledProgram>,
    image: &DramImage,
    tree: bool,
) -> (ExecStats, Vec<Vec<u64>>) {
    let mut m = Machine::from_compiled(Arc::clone(compiled));
    m.bind_image(image).expect("serial bind");
    let stats = if tree {
        m.run_tree(compiled.source()).expect("serial tree run")
    } else {
        m.run(compiled.source()).expect("serial run")
    };
    (stats, output_bits(&m, compiled))
}

/// Output DRAM contents as bit patterns (exactness, not ε-closeness).
fn output_bits(m: &Machine, compiled: &Arc<CompiledProgram>) -> Vec<Vec<u64>> {
    ["out0", "out1"]
        .iter()
        .map(|name| {
            let _ = compiled; // names are fixed by the generator
            m.dram(name)
                .expect("output dram")
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

proptest! {
    /// Sharded runs reproduce the serial bytecode run bitwise — DRAM
    /// outputs and statistics — at shard counts 1..=8, and the serial
    /// bytecode run itself agrees with the resolved-tree engine.
    #[test]
    fn sharded_run_is_bitwise_identical_to_serial(seed in 0u64..400, shards in 1usize..=8) {
        let p = random_shardable_program(seed);
        let compiled = Arc::new(CompiledProgram::compile(&p));
        let image = build_image(&compiled, seed);
        let (serial_stats, serial_out) = run_serial(&compiled, &image, false);
        let (tree_stats, tree_out) = run_serial(&compiled, &image, true);
        prop_assert_eq!(&serial_stats, &tree_stats, "bytecode vs tree stats diverge");
        prop_assert_eq!(&serial_out, &tree_out, "bytecode vs tree outputs diverge");

        let plan = ShardPlan::analyze(&compiled).expect("generator emits shardable programs");
        let sharded = plan.compile(shards);
        let pool = MachinePool::new();
        let budget = RunBudget::default();
        let run = sharded
            .run_pooled(&image, &pool, &budget, None)
            .expect("sharded run");
        prop_assert_eq!(&run.stats, &serial_stats, "sharded stats diverge");
        prop_assert_eq!(
            &output_bits(&run.machine, &compiled),
            &serial_out,
            "sharded outputs diverge"
        );
    }

    /// Degraded capacity (a pool grant smaller than the shard count)
    /// falls back to round-robin workers and still merges bitwise.
    #[test]
    fn degraded_capacity_round_robin_is_bitwise_identical(seed in 0u64..100, capacity in 1u64..=3) {
        let p = random_shardable_program(seed);
        let compiled = Arc::new(CompiledProgram::compile(&p));
        let image = build_image(&compiled, seed);
        let (serial_stats, serial_out) = run_serial(&compiled, &image, false);

        let plan = ShardPlan::analyze(&compiled).expect("shardable");
        let sharded = plan.compile(6);
        let pool = MachinePool::new();
        let run = sharded
            .run_pooled(&image, &pool, &RunBudget::default(), Some(capacity))
            .expect("sharded run");
        prop_assert!(run.workers <= capacity as usize, "capacity grant exceeded");
        prop_assert_eq!(&run.stats, &serial_stats);
        prop_assert_eq!(&output_bits(&run.machine, &compiled), &serial_out);
    }

    /// A transient injected fault killing shards mid-run is retried on
    /// a fresh machine, and the merged result is still bitwise
    /// identical to a never-faulted serial run. The faulted machines
    /// land in quarantine, not back in the free list.
    #[test]
    fn injected_faults_mid_shard_recover_bitwise(seed in 0u64..60, step in 1u64..200) {
        let p = random_shardable_program(seed);
        let compiled = Arc::new(CompiledProgram::compile(&p));
        let image = build_image(&compiled, seed);
        let (serial_stats, serial_out) = run_serial(&compiled, &image, false);

        let plan = ShardPlan::analyze(&compiled).expect("shardable");
        let sharded = plan.compile(4);
        let pool = MachinePool::new();
        // One-shot error at `step` (cloned per worker, so every worker
        // may lose its first shard that runs that long). The CI chaos
        // sweep's env plan replaces ours when STARDUST_FAULTS is set —
        // the retry policy covers one transient fault per shard, which
        // is each plan's own contract, not the union of both plans.
        let fault = FaultPlan::from_env()
            .expect("STARDUST_FAULTS is malformed")
            .unwrap_or(FaultPlan {
                error_at_step: Some(step),
                ..FaultPlan::default()
            });
        let result = faults::with_plan(fault, || {
            sharded.run_pooled(&image, &pool, &RunBudget::default(), None)
        });
        match result {
            Ok(run) => {
                prop_assert_eq!(&run.stats, &serial_stats, "post-recovery stats diverge");
                prop_assert_eq!(&output_bits(&run.machine, &compiled), &serial_out);
            }
            // A standing env clamp (the chaos sweep's `max_steps`) is a
            // deterministic budget abort, not a transient fault — no
            // retry is owed and no partial result is merged.
            Err(ShardError::Run(RunError::BudgetExceeded { .. })) => {}
            Err(other) => prop_assert!(false, "transient faults must be retried, got {other}"),
        }
    }
}

/// A panic mid-shard is contained by the scope, retried, and merges
/// bitwise — a panicking shard cannot take down the caller.
#[test]
fn injected_panic_mid_shard_recovers_bitwise() {
    let p = random_shardable_program(7);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let image = build_image(&compiled, 7);
    let (serial_stats, serial_out) = run_serial(&compiled, &image, false);

    let sharded = ShardPlan::analyze(&compiled).expect("shardable").compile(4);
    let pool = MachinePool::new();
    let fault = FaultPlan {
        panic_at_step: Some(5),
        ..FaultPlan::default()
    };
    let run = faults::with_plan(fault, || {
        sharded.run_pooled(&image, &pool, &RunBudget::default(), None)
    })
    .expect("contained panic must be retried");
    assert_eq!(run.stats, serial_stats);
    assert_eq!(output_bits(&run.machine, &compiled), serial_out);
}

/// Helper: analyze a finished program.
fn analyze(p: &mut SpatialProgram) -> Result<ShardPlan, NotShardable> {
    p.assign_ids();
    let compiled = Arc::new(CompiledProgram::compile(p));
    ShardPlan::analyze(&compiled)
}

/// A minimal shardable skeleton the rejection tests perturb.
fn skeleton() -> SpatialProgram {
    let mut p = SpatialProgram::new("skel");
    p.add_dram("in0", SIZE);
    p.add_sparse_dram("sp0", SIZE);
    p.add_dram("out0", OUT);
    p
}

fn trailing_loop(body: Vec<SpatialStmt>) -> SpatialStmt {
    SpatialStmt::Foreach {
        id: 0,
        counter: Counter::range_to("i", SExpr::Const(8.0)),
        par: 1,
        body,
    }
}

fn store_i() -> SpatialStmt {
    SpatialStmt::StoreScalar {
        dst: "out0".into(),
        index: SExpr::var("i"),
        value: SExpr::var("i"),
    }
}

#[test]
fn rejects_empty_body() {
    let mut p = skeleton();
    assert!(matches!(analyze(&mut p), Err(NotShardable::EmptyBody)));
}

#[test]
fn rejects_trailing_non_loop() {
    let mut p = skeleton();
    p.accel.push(SpatialStmt::StoreScalar {
        dst: "out0".into(),
        index: SExpr::Const(0.0),
        value: SExpr::Const(1.0),
    });
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::TrailingStatementNotLoop)
    ));
}

#[test]
fn rejects_top_level_reduction() {
    let mut p = skeleton();
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new("acc", MemKind::Reg, 1)));
    p.accel.push(SpatialStmt::Reduce {
        id: 0,
        reg: "acc".into(),
        counter: Counter::range_to("i", SExpr::Const(8.0)),
        par: 1,
        body: vec![],
        expr: SExpr::var("i"),
    });
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::TopLevelReduction)
    ));
}

#[test]
fn rejects_scan_counter_outer_loop() {
    let mut p = skeleton();
    p.accel.push(SpatialStmt::Alloc(MemDecl::new(
        "bv",
        MemKind::BitVector,
        SIZE,
    )));
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Scan1 {
            bv: "bv".into(),
            pos_var: "p".into(),
            idx_var: "ix".into(),
        },
        par: 1,
        body: vec![store_i()],
    });
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::NonRangeCounter)
    ));
}

#[test]
fn rejects_non_const_bounds() {
    let mut p = skeleton();
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, SIZE)));
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Range {
            var: "i".into(),
            min: SExpr::Const(0.0),
            max: SExpr::read("s", SExpr::Const(0.0)),
            step: 1,
        },
        par: 1,
        body: vec![store_i()],
    });
    assert!(matches!(analyze(&mut p), Err(NotShardable::NonConstBounds)));
}

#[test]
fn rejects_non_integral_bound() {
    let mut p = skeleton();
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Range {
            var: "i".into(),
            min: SExpr::Const(0.0),
            max: SExpr::Const(7.5),
            step: 1,
        },
        par: 1,
        body: vec![store_i()],
    });
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::NonIntegralBound)
    ));
}

#[test]
fn rejects_non_positive_step() {
    let mut p = skeleton();
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Range {
            var: "i".into(),
            min: SExpr::Const(0.0),
            max: SExpr::Const(8.0),
            step: 0,
        },
        par: 1,
        body: vec![store_i()],
    });
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::NonPositiveStep)
    ));
}

#[test]
fn rejects_out_of_range_bound() {
    let mut p = skeleton();
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Range {
            var: "i".into(),
            min: SExpr::Const(0.0),
            max: SExpr::Const((1u64 << 51) as f64),
            step: 1,
        },
        par: 1,
        body: vec![store_i()],
    });
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::BoundsOutOfRange)
    ));
}

#[test]
fn rejects_prefix_dram_write() {
    let mut p = skeleton();
    p.accel.push(SpatialStmt::StoreScalar {
        dst: "out0".into(),
        index: SExpr::Const(0.0),
        value: SExpr::Const(1.0),
    });
    p.accel.push(trailing_loop(vec![store_i()]));
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::PrefixWritesDram { .. })
    ));
}

#[test]
fn rejects_body_reading_written_dram() {
    let mut p = skeleton();
    p.accel.push(trailing_loop(vec![
        SpatialStmt::StoreScalar {
            dst: "sp0".into(),
            index: SExpr::var("i"),
            value: SExpr::var("i"),
        },
        SpatialStmt::StoreScalar {
            dst: "out0".into(),
            index: SExpr::var("i"),
            value: SExpr::read_random("sp0", SExpr::var("i")),
        },
    ]));
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::BodyReadsWrittenDram { .. })
    ));
}

#[test]
fn rejects_body_mutating_shared_chip() {
    let mut p = skeleton();
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, SIZE)));
    p.accel.push(trailing_loop(vec![SpatialStmt::WriteMem {
        mem: "s".into(),
        index: SExpr::Const(0.0),
        value: SExpr::var("i"),
        random: false,
    }]));
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::BodyMutatesSharedChip { .. })
    ));
}

#[test]
fn rejects_body_reading_stale_chip() {
    let mut p = skeleton();
    p.accel.push(trailing_loop(vec![
        SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("j", SExpr::Const(2.0)),
            par: 1,
            body: vec![
                SpatialStmt::Alloc(MemDecl::new("t", MemKind::Sram, 4)),
                SpatialStmt::WriteMem {
                    mem: "t".into(),
                    index: SExpr::var("j"),
                    value: SExpr::var("i"),
                    random: false,
                },
            ],
        },
        SpatialStmt::StoreScalar {
            dst: "out0".into(),
            index: SExpr::var("i"),
            value: SExpr::read("t", SExpr::Const(0.0)),
        },
    ]));
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::BodyReadsStaleChip { .. })
    ));
}

#[test]
fn rejects_body_reading_loop_carried_var() {
    let mut p = skeleton();
    p.accel.push(trailing_loop(vec![
        SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("j", SExpr::Const(2.0)),
            par: 1,
            body: vec![SpatialStmt::Bind {
                var: "x".into(),
                value: SExpr::var("j"),
            }],
        },
        SpatialStmt::StoreScalar {
            dst: "out0".into(),
            index: SExpr::var("i"),
            value: SExpr::var("x"),
        },
    ]));
    assert!(matches!(
        analyze(&mut p),
        Err(NotShardable::BodyReadsLoopCarriedVar { .. })
    ));
}

/// A `Scan2` union body stays shardable when all scanned state is
/// iteration-local — the declarative-sparse fast path and the shard
/// pass compose.
#[test]
fn scan2_union_body_shards_bitwise() {
    let mut p = skeleton();
    p.add_dram("out1", OUT);
    let mut body = Vec::new();
    for (bv, coords) in [("bvA", [1.0, 2.0, 5.0]), ("bvB", [0.0, 2.0, 8.0])] {
        let fifo = format!("{bv}_f");
        body.push(SpatialStmt::Alloc(MemDecl::new(
            bv,
            MemKind::BitVector,
            SIZE,
        )));
        body.push(SpatialStmt::Alloc(MemDecl::new(&fifo, MemKind::Fifo, 4)));
        for c in coords {
            body.push(SpatialStmt::Enq {
                fifo: fifo.clone(),
                value: SExpr::Const(c),
            });
        }
        body.push(SpatialStmt::GenBitVector {
            dst: bv.into(),
            src: fifo,
            src_start: SExpr::Const(0.0),
            count: SExpr::Const(coords.len() as f64),
            dim: SExpr::Const(SIZE as f64),
        });
    }
    body.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Scan2 {
            op: ScanOp::Or,
            bv_a: "bvA".into(),
            bv_b: "bvB".into(),
            a_pos_var: "pA".into(),
            b_pos_var: "pB".into(),
            out_pos_var: "pO".into(),
            idx_var: "ix".into(),
        },
        par: 1,
        body: vec![SpatialStmt::StoreScalar {
            dst: "out1".into(),
            index: SExpr::add(SExpr::var("pO"), SExpr::var("i")),
            value: SExpr::add(SExpr::var("pA"), SExpr::var("pB")),
        }],
    });
    body.push(store_i());
    p.accel.push(trailing_loop(body));
    p.assign_ids();

    let compiled = Arc::new(CompiledProgram::compile(&p));
    let image = DramImage::builder(Arc::clone(&compiled)).finish();
    let (serial_stats, serial_out) = run_serial(&compiled, &image, false);
    let sharded = ShardPlan::analyze(&compiled)
        .expect("scan2 body with local state is shardable")
        .compile(3);
    let pool = MachinePool::new();
    let run = sharded
        .run_pooled(&image, &pool, &RunBudget::default(), None)
        .expect("sharded run");
    assert_eq!(run.stats, serial_stats);
    assert_eq!(output_bits(&run.machine, &compiled), serial_out);
}

/// The auto sizing policy ([`stardust_spatial::auto_shard_count`]):
/// tiny trip counts stay serial no matter how many machines are idle,
/// the count never exceeds the pool's machines, and large loops on a
/// well-stocked pool do split (bounded by host parallelism).
#[test]
fn auto_shard_count_keeps_tiny_trip_counts_serial() {
    use stardust_spatial::{auto_shard_count, PoolOccupancy, MIN_TRIPS_PER_SHARD};
    let wide = PoolOccupancy {
        idle: 64,
        shards: 64,
        ..PoolOccupancy::default()
    };
    // Below two minimum-size shards there is nothing to split.
    for trips in [0, 1, 7, MIN_TRIPS_PER_SHARD, 2 * MIN_TRIPS_PER_SHARD - 1] {
        assert_eq!(auto_shard_count(trips, &wide), 1, "trips {trips}");
    }
    // An empty pool keeps even a huge loop serial.
    let empty = PoolOccupancy::default();
    assert_eq!(auto_shard_count(1 << 30, &empty), 1);
    // The trip cap binds before the pool cap: 3 minimum shards' worth
    // of trips never splits more than 3 ways.
    let n = auto_shard_count(3 * MIN_TRIPS_PER_SHARD, &wide);
    assert!(n <= 3, "trip cap violated: {n}");
    // A wide loop splits when machines and cores allow, and never
    // beyond the pool.
    let four = PoolOccupancy {
        idle: 4,
        shards: 4,
        ..PoolOccupancy::default()
    };
    let n = auto_shard_count(1 << 30, &four);
    assert!(n <= 4, "pool cap violated: {n}");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores >= 2 {
        assert!(n >= 2, "a wide loop on a stocked pool must split");
    }
}

/// `CompiledShards` sized by the auto policy still merge bitwise
/// identically to serial.
#[test]
fn auto_sized_partition_is_bitwise_identical() {
    let p = random_shardable_program(4242);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let image = DramImage::builder(Arc::clone(&compiled)).finish();
    let (serial_stats, serial_out) = run_serial(&compiled, &image, false);
    let plan = ShardPlan::analyze(&compiled).expect("generated programs are shardable");
    let occ = stardust_spatial::PoolOccupancy {
        idle: 3,
        shards: 3,
        ..Default::default()
    };
    let n = stardust_spatial::auto_shard_count(plan.trips(), &occ).max(2);
    let sharded = plan.compile(n);
    let pool = MachinePool::new();
    let run = sharded
        .run_pooled(&image, &pool, &RunBudget::default(), None)
        .expect("sharded run");
    assert_eq!(run.stats, serial_stats);
    assert_eq!(output_bits(&run.machine, &compiled), serial_out);
}

// ---------------------------------------------------------------------
// Effect-analysis widenings: shapes the string-level pass rejected that
// the shared effect summaries now prove shardable.
// ---------------------------------------------------------------------

/// Serial-vs-sharded bitwise check for a hand-built program (the
/// random-generator harness above fixes its own output names).
fn assert_shards_bitwise(p: &SpatialProgram, outs: &[&str], shards: usize) {
    let compiled = Arc::new(CompiledProgram::compile(p));
    let image = {
        let mut b = DramImage::builder(Arc::clone(&compiled));
        let data: Vec<f64> = (0..SIZE as u64)
            .map(|w| ((w * 3) % 23) as f64 * 0.5)
            .collect();
        let slot = compiled.syms().dram_slot("in0").expect("declared dram");
        b.write(slot, &data).expect("write input");
        b.finish()
    };
    let mut serial = Machine::from_compiled(Arc::clone(&compiled));
    serial.bind_image(&image).expect("serial bind");
    let serial_stats = serial.run(p).expect("serial run");
    let bits = |m: &Machine, name: &str| -> Vec<u64> {
        m.dram(name)
            .expect("output dram")
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };

    let plan = ShardPlan::analyze(&compiled)
        .unwrap_or_else(|e| panic!("{} must prove shardable, got {e}", p.name));
    let sharded = plan.compile(shards);
    let pool = MachinePool::new();
    let run = sharded
        .run_pooled(&image, &pool, &RunBudget::default(), None)
        .expect("sharded run");
    assert_eq!(run.stats, serial_stats, "{}: sharded stats diverge", p.name);
    for name in outs {
        assert_eq!(
            bits(&run.machine, name),
            bits(&serial, name),
            "{}: DRAM {name} diverges at {shards} shards",
            p.name
        );
    }
}

/// A *non-trailing* candidate loop: the loop is followed by a suffix
/// statement that depends on nothing the body defines. The old pass
/// only ever considered the trailing statement
/// (`TrailingStatementNotLoop`); the effect-analysis scan proves the
/// earlier loop and replays the suffix per shard.
#[test]
fn non_trailing_loop_shards_bitwise() {
    for shards in [2usize, 4] {
        let mut p = skeleton();
        p.add_dram("out1", OUT);
        p.accel
            .push(SpatialStmt::Alloc(MemDecl::new("s0", MemKind::Sram, SIZE)));
        p.accel.push(SpatialStmt::Load {
            dst: "s0".into(),
            src: "in0".into(),
            start: SExpr::Const(0.0),
            end: SExpr::Const(SIZE as f64),
            par: 1,
        });
        p.accel.push(SpatialStmt::Foreach {
            id: 0,
            counter: Counter::range_to("i", SExpr::Const(24.0)),
            par: 1,
            body: vec![SpatialStmt::StoreScalar {
                dst: "out0".into(),
                index: SExpr::var("i"),
                value: SExpr::add(
                    SExpr::read(
                        "s0",
                        SExpr::bin(
                            stardust_spatial::BinSOp::Mod,
                            SExpr::var("i"),
                            SExpr::Const(SIZE as f64),
                        ),
                    ),
                    SExpr::Const(1.0),
                ),
            }],
        });
        // Suffix: reads only prefix state (s0), writes a different
        // array — replayed identically by every shard.
        p.accel.push(SpatialStmt::StoreScalar {
            dst: "out1".into(),
            index: SExpr::Const(0.0),
            value: SExpr::read("s0", SExpr::Const(3.0)),
        });
        p.assign_ids();
        let compiled = Arc::new(CompiledProgram::compile(&p));
        let plan = ShardPlan::analyze(&compiled).expect("non-trailing loop proves");
        assert_eq!(plan.stmt_idx(), 2, "candidate is the non-trailing loop");
        assert_shards_bitwise(&p, &["out0", "out1"], shards);
    }
}

/// A prefix store into an array the body never touches: the old
/// name-level pass rejected every DRAM-writing prefix
/// (`PrefixWritesDram`); the effect summaries prove disjointness and
/// admit it.
#[test]
fn prefix_store_to_untouched_array_shards_bitwise() {
    let mut p = skeleton();
    p.add_dram("out1", OUT);
    // Prefix writes out1; the loop writes only out0.
    p.accel.push(SpatialStmt::StoreScalar {
        dst: "out1".into(),
        index: SExpr::Const(0.0),
        value: SExpr::Const(9.0),
    });
    p.accel.push(trailing_loop(vec![store_i()]));
    p.assign_ids();
    let compiled = Arc::new(CompiledProgram::compile(&p));
    ShardPlan::analyze(&compiled).expect("disjoint prefix store proves");
    assert_shards_bitwise(&p, &["out0", "out1"], 3);
}

/// A suffix that reads body-written chip state is rejected with the
/// offending name.
#[test]
fn rejects_suffix_depending_on_body() {
    let mut p = skeleton();
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, SIZE)));
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::range_to("i", SExpr::Const(8.0)),
        par: 1,
        body: vec![SpatialStmt::WriteMem {
            mem: "s".into(),
            index: SExpr::var("i"),
            value: SExpr::var("i"),
            random: false,
        }],
    });
    // Suffix reads the body-written SRAM: each shard would observe
    // only its own slice.
    p.accel.push(SpatialStmt::Store {
        dst: "out0".into(),
        offset: SExpr::Const(0.0),
        src: "s".into(),
        len: SExpr::Const(8.0),
        par: 1,
    });
    match analyze(&mut p) {
        Err(NotShardable::SuffixDependsOnBody { name }) => assert_eq!(name, "s"),
        other => panic!("expected SuffixDependsOnBody, got {other:?}"),
    }
}

/// Vector-aware sizing: a plan whose candidate contains a
/// vector-eligible inner loop is discounted by
/// [`stardust_spatial::VECTOR_SHARD_DISCOUNT`], so the same trip count
/// yields fewer, larger shards than the scalar policy grants.
#[test]
fn auto_shard_count_discounts_vectorized_plans() {
    use stardust_spatial::{
        auto_shard_count, auto_shard_count_for, PoolOccupancy, MIN_TRIPS_PER_SHARD,
        VECTOR_SHARD_DISCOUNT,
    };
    let trips = 4 * MIN_TRIPS_PER_SHARD;
    let mut p = skeleton();
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::range_to("i", SExpr::Const(trips as f64)),
        par: 1,
        body: vec![
            SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, SIZE)),
            // A vector-eligible inner fill: `s[j] = j`.
            SpatialStmt::Foreach {
                id: 1,
                counter: Counter::range_to("j", SExpr::Const(SIZE as f64)),
                par: 1,
                body: vec![SpatialStmt::WriteMem {
                    mem: "s".into(),
                    index: SExpr::var("j"),
                    value: SExpr::var("j"),
                    random: false,
                }],
            },
            SpatialStmt::StoreScalar {
                dst: "out0".into(),
                index: SExpr::bin(
                    stardust_spatial::BinSOp::Mod,
                    SExpr::var("i"),
                    SExpr::Const(OUT as f64),
                ),
                value: SExpr::read("s", SExpr::Const(2.0)),
            },
        ],
    });
    p.assign_ids();
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let plan = ShardPlan::analyze(&compiled).expect("vectorized candidate proves");
    assert!(
        plan.vectorized(),
        "inner fill must classify vector-eligible"
    );
    let wide = PoolOccupancy {
        idle: 64,
        shards: 64,
        ..PoolOccupancy::default()
    };
    let scalar_n = auto_shard_count(plan.trips(), &wide);
    let vector_n = auto_shard_count_for(&plan, &wide);
    assert_eq!(
        auto_shard_count(plan.trips() / VECTOR_SHARD_DISCOUNT, &wide),
        vector_n,
        "discount must divide trips by VECTOR_SHARD_DISCOUNT"
    );
    // On hosts with enough cores for the trip cap to bind, the
    // discount visibly halves the split.
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if cores >= 4 {
        assert!(
            vector_n < scalar_n,
            "vectorized plan must split less: {vector_n} vs {scalar_n}"
        );
    }
    // A scalar plan of the same shape is not discounted.
    let mut q = skeleton();
    q.accel.push(trailing_loop(vec![store_i()]));
    q.assign_ids();
    let qc = Arc::new(CompiledProgram::compile(&q));
    let qplan = ShardPlan::analyze(&qc).expect("scalar candidate proves");
    assert!(!qplan.vectorized());
    assert_eq!(
        auto_shard_count_for(&qplan, &wide),
        auto_shard_count(qplan.trips(), &wide)
    );
}
