//! Mutation tests for the static bytecode verifier.
//!
//! The verifier's contract has two halves. *No false negatives*:
//! corrupt any structural invariant of a lowered program — jump
//! targets, frame balance, slot extents, expression stack discipline —
//! and [`stardust_spatial::verify`] must reject the mutant. *No false
//! positives*: every artifact the compiler actually produces must
//! pass (also asserted per-seed by the random-program property suite
//! in `resolve_prop.rs`). These tests compile representative programs
//! covering every op family, then drive a systematic mutator over the
//! op and expression arrays and assert each mutant is rejected with a
//! typed [`VerifyError`].

use stardust_spatial::bytecode::{EOp, Op, Operand};
use stardust_spatial::ir::MemDecl;
use stardust_spatial::{
    verify, CompiledProgram, Counter, MemKind, SExpr, SpatialProgram, SpatialStmt, VerifyCtx,
    VerifyError,
};

fn alloc(p: &mut SpatialProgram, name: &str, kind: MemKind, size: usize) {
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new(name, kind, size)));
}

fn range_loop(id: usize, var: &str, n: f64, body: Vec<SpatialStmt>) -> SpatialStmt {
    SpatialStmt::Foreach {
        id,
        counter: Counter::Range {
            var: var.into(),
            min: SExpr::Const(0.0),
            max: SExpr::Const(n),
            step: 1,
        },
        par: 1,
        body,
    }
}

/// A superinstruction-heavy program: `Alloc`/`Load`/`Bind`, a
/// `RangeSimple` whose body writes through a `Select` expression
/// (exercising `BranchFalse`/`Jump` expression control flow), a
/// reduction, and a `Store`.
fn simple_program() -> SpatialProgram {
    let n = 8usize;
    let mut p = SpatialProgram::new("verify_simple");
    p.add_dram("vals", n);
    p.add_dram("out", n);
    p.add_dram("sum", 1);
    alloc(&mut p, "vals_s", MemKind::Sram, n);
    alloc(&mut p, "s", MemKind::Sram, n);
    alloc(&mut p, "r", MemKind::Reg, 1);
    p.accel.push(SpatialStmt::Load {
        dst: "vals_s".into(),
        src: "vals".into(),
        start: SExpr::Const(0.0),
        end: SExpr::Const(n as f64),
        par: 1,
    });
    p.accel.push(SpatialStmt::Bind {
        var: "t".into(),
        value: SExpr::Const(2.0),
    });
    p.accel.push(range_loop(
        0,
        "j",
        n as f64,
        vec![SpatialStmt::WriteMem {
            mem: "s".into(),
            index: SExpr::var("j"),
            value: SExpr::select(
                SExpr::read("vals_s", SExpr::var("j")),
                SExpr::add(SExpr::var("j"), SExpr::var("t")),
                SExpr::Const(0.0),
            ),
            random: false,
        }],
    ));
    p.accel.push(SpatialStmt::Reduce {
        id: 1,
        reg: "r".into(),
        counter: Counter::Range {
            var: "k".into(),
            min: SExpr::Const(0.0),
            max: SExpr::Const(n as f64),
            step: 1,
        },
        par: 1,
        body: vec![],
        expr: SExpr::read("vals_s", SExpr::var("k")),
    });
    p.accel.push(SpatialStmt::StoreScalar {
        dst: "sum".into(),
        index: SExpr::Const(0.0),
        value: SExpr::RegRead("r".into()),
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out".into(),
        offset: SExpr::Const(0.0),
        src: "s".into(),
        len: SExpr::Const(n as f64),
        par: 1,
    });
    p.assign_ids();
    p
}

/// A framed program: four nested ranges overflow `MAX_SIMPLE_RANK`, so
/// the outer loop lowers to `EnterRange .. Next` around nested
/// superinstructions.
fn framed_program() -> SpatialProgram {
    let mut p = SpatialProgram::new("verify_framed");
    p.add_dram("out", 4);
    p.accel.push(range_loop(
        0,
        "i",
        3.0,
        vec![range_loop(
            1,
            "j",
            2.0,
            vec![range_loop(
                2,
                "k",
                2.0,
                vec![range_loop(
                    3,
                    "l",
                    2.0,
                    vec![SpatialStmt::StoreScalar {
                        dst: "out".into(),
                        index: SExpr::var("l"),
                        value: SExpr::add(SExpr::var("i"), SExpr::var("j")),
                    }],
                )],
            )],
        )],
    ));
    p.assign_ids();
    p
}

/// A scan/FIFO program: `Enq`, `GenBitVector`, a `Scan1Simple`.
fn scan_program() -> SpatialProgram {
    let dim = 70usize;
    let mut p = SpatialProgram::new("verify_scan");
    p.add_dram("out", dim);
    alloc(&mut p, "bv", MemKind::BitVector, dim);
    alloc(&mut p, "f", MemKind::Fifo, 4);
    for c in [3.0, 64.0, 69.0] {
        p.accel.push(SpatialStmt::Enq {
            fifo: "f".into(),
            value: SExpr::Const(c),
        });
    }
    p.accel.push(SpatialStmt::GenBitVector {
        dst: "bv".into(),
        src: "f".into(),
        src_start: SExpr::Const(0.0),
        count: SExpr::Const(3.0),
        dim: SExpr::Const(dim as f64),
    });
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Scan1 {
            bv: "bv".into(),
            pos_var: "p".into(),
            idx_var: "x".into(),
        },
        par: 1,
        body: vec![SpatialStmt::StoreScalar {
            dst: "out".into(),
            index: SExpr::var("p"),
            value: SExpr::var("x"),
        }],
    });
    p.assign_ids();
    p
}

/// Verifies a mutated copy of `c`'s op/eop arrays against `c`'s own
/// symbol table and layouts.
fn verify_mutant(c: &CompiledProgram, ops: &[Op], eops: &[EOp]) -> Result<(), VerifyError> {
    verify(&VerifyCtx {
        ops,
        eops,
        fused: c.fused(),
        syms: c.syms(),
        layout: &c.resolved().layout,
        dram_layout: &c.resolved().dram_layout,
    })
}

/// A slot far beyond any table in these small test programs.
const BAD: u32 = 9_999;

/// Every mutant of `op` with one slot/reference field corrupted out of
/// range. Op families not used by the test programs have no mutants.
fn corrupted(op: &Op) -> Vec<Op> {
    let mut out = Vec::new();
    let mut push = |o: Op| out.push(o);
    match *op {
        Op::Alloc { slot, kind, size } => {
            push(Op::Alloc {
                slot: BAD,
                kind,
                size,
            });
            // Oversizing is sound for registers (a Reg occupies one
            // word regardless of the declared size) — skip those.
            if kind != MemKind::Reg {
                push(Op::Alloc {
                    slot,
                    kind,
                    size: size + 100_000,
                });
            }
        }
        Op::Bind { var: _, value } => push(Op::Bind { var: BAD, value }),
        Op::Load {
            dst,
            src: _,
            start,
            end,
        } => {
            push(Op::Load {
                dst: BAD,
                src: 0,
                start,
                end,
            });
            push(Op::Load {
                dst,
                src: BAD,
                start,
                end,
            });
        }
        Op::Store {
            dst,
            offset,
            src,
            len,
        } => {
            push(Op::Store {
                dst: BAD,
                offset,
                src,
                len,
            });
            push(Op::Store {
                dst,
                offset,
                src: BAD,
                len,
            });
        }
        Op::StoreScalar {
            dst: _,
            index,
            value,
        } => {
            push(Op::StoreScalar {
                dst: BAD,
                index,
                value,
            });
            push(Op::StoreScalar {
                dst: 0,
                index: Operand::Expr(BAD),
                value,
            });
            push(Op::StoreScalar {
                dst: 0,
                index,
                value: Operand::Fused(BAD),
            });
        }
        Op::WriteMem {
            mem: _,
            index,
            value,
            random,
        } => {
            push(Op::WriteMem {
                mem: BAD,
                index,
                value,
                random,
            });
            push(Op::WriteMem {
                mem: 0,
                index: Operand::Var(BAD),
                value,
                random,
            });
            push(Op::WriteMem {
                mem: 0,
                index,
                value: Operand::Expr(BAD),
                random,
            });
        }
        Op::RmwAdd {
            mem: _,
            index,
            value,
        } => push(Op::RmwAdd {
            mem: BAD,
            index,
            value,
        }),
        Op::SetReg { reg: _, value } => push(Op::SetReg { reg: BAD, value }),
        Op::Enq { fifo: _, value } => push(Op::Enq { fifo: BAD, value }),
        Op::GenBitVector {
            dst,
            src: _,
            src_start,
            count,
            dim,
        } => {
            push(Op::GenBitVector {
                dst: BAD,
                src: 0,
                src_start,
                count,
                dim,
            });
            push(Op::GenBitVector {
                dst,
                src: BAD,
                src_start,
                count,
                dim,
            });
        }
        Op::RangeSimple {
            id,
            var,
            min,
            max,
            step,
            body,
            body_len,
            reduce,
        } => {
            // Corrupt the loop variable, the body target (must be
            // pc + 1), the body span (overrun), and the bound operand.
            push(Op::RangeSimple {
                id,
                var: BAD,
                min,
                max,
                step,
                body,
                body_len,
                reduce,
            });
            push(Op::RangeSimple {
                id,
                var,
                min,
                max,
                step,
                body: body + 1,
                body_len,
                reduce,
            });
            push(Op::RangeSimple {
                id,
                var,
                min,
                max,
                step,
                body,
                body_len: body_len + 100_000,
                reduce,
            });
            push(Op::RangeSimple {
                id,
                var,
                min: Operand::Expr(BAD),
                max,
                step,
                body,
                body_len,
                reduce,
            });
            if let Some((_, expr)) = reduce {
                push(Op::RangeSimple {
                    id,
                    var,
                    min,
                    max,
                    step,
                    body,
                    body_len,
                    reduce: Some((BAD, expr)),
                });
            }
        }
        Op::Scan1Simple {
            id,
            bv,
            pos_var,
            idx_var,
            body,
            body_len,
            reduce,
        } => {
            push(Op::Scan1Simple {
                id,
                bv: BAD,
                pos_var,
                idx_var,
                body,
                body_len,
                reduce,
            });
            push(Op::Scan1Simple {
                id,
                bv,
                pos_var: BAD,
                idx_var,
                body,
                body_len,
                reduce,
            });
            push(Op::Scan1Simple {
                id,
                bv,
                pos_var,
                idx_var,
                body: body + 1,
                body_len,
                reduce,
            });
            push(Op::Scan1Simple {
                id,
                bv,
                pos_var,
                idx_var,
                body,
                body_len: body_len + 100_000,
                reduce,
            });
        }
        Op::EnterRange {
            id,
            var,
            min,
            max,
            step,
            reduce,
            exit,
        } => {
            push(Op::EnterRange {
                id,
                var: BAD,
                min,
                max,
                step,
                reduce,
                exit,
            });
            // Exit before the loop head: frame check must reject.
            push(Op::EnterRange {
                id,
                var,
                min,
                max,
                step,
                reduce,
                exit: 0,
            });
            push(Op::EnterRange {
                id,
                var,
                min,
                max,
                step,
                reduce,
                exit: exit + 100_000,
            });
        }
        Op::Next { body } => push(Op::Next { body: body + 1 }),
        _ => {}
    }
    out
}

/// The three representative compiles pass the verifier untouched (the
/// no-false-positive half on fixed programs; `resolve_prop.rs` sweeps
/// random ones).
#[test]
fn compiler_outputs_verify_clean() {
    for p in [simple_program(), framed_program(), scan_program()] {
        let c = CompiledProgram::compile(&p);
        c.verify()
            .unwrap_or_else(|e| panic!("{} rejected: {e}", p.name));
        // And through the borrowed-context path tests use for mutants.
        verify_mutant(&c, c.ops(), c.eops()).unwrap();
    }
}

/// Dropping the final `Halt` is rejected with `MissingHalt`; an empty
/// program likewise.
#[test]
fn truncated_programs_are_rejected() {
    let c = CompiledProgram::compile(&simple_program());
    let ops = &c.ops()[..c.ops().len() - 1];
    assert_eq!(
        verify_mutant(&c, ops, c.eops()),
        Err(VerifyError::MissingHalt)
    );
    assert_eq!(
        verify_mutant(&c, &[], c.eops()),
        Err(VerifyError::MissingHalt)
    );
}

/// Overwriting any non-final op with `Halt` is rejected (stray or
/// misplaced, depending on position).
#[test]
fn stray_halts_are_rejected() {
    for p in [simple_program(), framed_program(), scan_program()] {
        let c = CompiledProgram::compile(&p);
        for pc in 0..c.ops().len() - 1 {
            let mut ops = c.ops().to_vec();
            ops[pc] = Op::Halt;
            assert!(
                verify_mutant(&c, &ops, c.eops()).is_err(),
                "{}: Halt at pc {pc} accepted",
                p.name
            );
        }
    }
}

/// Every single-field slot/target corruption of every op in every
/// representative program is rejected.
#[test]
fn slot_and_target_corruptions_are_rejected() {
    for p in [simple_program(), framed_program(), scan_program()] {
        let c = CompiledProgram::compile(&p);
        let mut mutants = 0usize;
        for pc in 0..c.ops().len() {
            for bad in corrupted(&c.ops()[pc]) {
                let mut ops = c.ops().to_vec();
                let desc = format!("{}: pc {pc} mutated to {bad:?}", p.name);
                ops[pc] = bad;
                assert!(
                    verify_mutant(&c, &ops, c.eops()).is_err(),
                    "{desc} accepted"
                );
                mutants += 1;
            }
        }
        assert!(mutants >= 5, "{}: mutator produced too few cases", p.name);
    }
}

/// Frame-protocol mutations on the framed program: a bare `Next`, a
/// dropped `Next`, an unbalanced extra `EnterRange`.
#[test]
fn frame_imbalance_is_rejected() {
    let c = CompiledProgram::compile(&framed_program());
    let ops = c.ops();
    let enter_pc = ops
        .iter()
        .position(|o| matches!(o, Op::EnterRange { .. }))
        .expect("framed program has an EnterRange");
    let next_pc = ops
        .iter()
        .position(|o| matches!(o, Op::Next { .. }))
        .expect("framed program has a Next");

    // Bare Next: replace the EnterRange with a straight-line op.
    let mut m = ops.to_vec();
    m[enter_pc] = Op::Bind {
        var: 0,
        value: Operand::Const(0.0),
    };
    assert!(
        verify_mutant(&c, &m, c.eops()).is_err(),
        "bare Next accepted"
    );

    // Dropped Next: the frame never closes.
    let mut m = ops.to_vec();
    m[next_pc] = Op::Bind {
        var: 0,
        value: Operand::Const(0.0),
    };
    assert!(
        verify_mutant(&c, &m, c.eops()).is_err(),
        "open frame accepted"
    );

    // A frame op buried inside a superinstruction body.
    let simple = CompiledProgram::compile(&simple_program());
    let body_pc = simple
        .ops()
        .iter()
        .position(|o| matches!(o, Op::RangeSimple { .. }))
        .expect("simple program lowers a RangeSimple")
        + 1;
    let mut m = simple.ops().to_vec();
    m[body_pc] = Op::Next { body: 0 };
    assert!(
        verify_mutant(&simple, &m, simple.eops()).is_err(),
        "frame op inside a superinstruction body accepted"
    );
}

/// Expression-program mutations: truncation (no `End`), backward
/// jumps, and stack-discipline violations are rejected.
#[test]
fn expression_corruptions_are_rejected() {
    let c = CompiledProgram::compile(&simple_program());
    let eops = c.eops();
    assert!(
        eops.iter().any(|e| matches!(e, EOp::BranchFalse { .. })),
        "select lowering should emit BranchFalse"
    );

    // Truncate the array: some referenced program loses its End.
    for cut in 1..eops.len() {
        let _ = verify_mutant(&c, c.ops(), &eops[..cut]);
        // Not every cut invalidates a *referenced* program, but the
        // verifier must never panic on one; the specific cut below is
        // provably bad.
    }
    let last_end = eops
        .iter()
        .rposition(|e| matches!(e, EOp::End))
        .expect("programs end with End");
    assert!(
        verify_mutant(&c, c.ops(), &eops[..last_end]).is_err(),
        "truncated expression program accepted"
    );

    // Redirect every jump backward (or out of range): forward-only
    // control flow must reject each.
    for (i, e) in eops.iter().enumerate() {
        let (is_jump, back, far) = match *e {
            EOp::BranchFalse { .. } => (
                true,
                EOp::BranchFalse { target: 0 },
                EOp::BranchFalse {
                    target: eops.len() as u32 + 7,
                },
            ),
            EOp::Jump { .. } => (
                true,
                EOp::Jump { target: 0 },
                EOp::Jump {
                    target: eops.len() as u32 + 7,
                },
            ),
            _ => (false, EOp::End, EOp::End),
        };
        if !is_jump {
            continue;
        }
        for bad in [back, far] {
            let mut m = eops.to_vec();
            m[i] = bad;
            assert!(
                verify_mutant(&c, c.ops(), &m).is_err(),
                "corrupt jump at eop {i} accepted"
            );
        }
    }

    // Stack discipline: make a binary op pop from an empty stack by
    // deleting its first operand push.
    let bin_at = eops
        .iter()
        .position(|e| matches!(e, EOp::Binary(_)))
        .expect("simple program has a Binary eop");
    let mut m = eops.to_vec();
    // Replace the op *before* the binary with a no-operand jump to it:
    // the binary now pops two with at most one on the stack.
    m[bin_at - 1] = EOp::Jump {
        target: bin_at as u32,
    };
    assert!(
        verify_mutant(&c, c.ops(), &m).is_err(),
        "stack underflow accepted"
    );

    // An extra value left on the stack at End.
    let mut m = eops.to_vec();
    m[bin_at] = EOp::Const(1.0);
    assert!(
        verify_mutant(&c, c.ops(), &m).is_err(),
        "non-unit result depth accepted"
    );
}

/// Out-of-range variable slots inside expression ops are rejected.
#[test]
fn expression_slot_corruptions_are_rejected() {
    let c = CompiledProgram::compile(&simple_program());
    let eops = c.eops();
    let mut mutants = 0usize;
    for (i, e) in eops.iter().enumerate() {
        let bad = match *e {
            EOp::Var(_) => EOp::Var(BAD),
            EOp::RegRead(_) => EOp::RegRead(BAD),
            EOp::ReadMem { dram, random, .. } => EOp::ReadMem {
                chip: BAD,
                dram,
                random,
            },
            EOp::VarReadMem {
                chip, dram, random, ..
            } => EOp::VarReadMem {
                chip,
                dram,
                random,
                var: BAD,
            },
            EOp::VarConstBin { c, op, .. } => EOp::VarConstBin { var: BAD, c, op },
            _ => continue,
        };
        let mut m = eops.to_vec();
        m[i] = bad;
        assert!(
            verify_mutant(&c, c.ops(), &m).is_err(),
            "bad slot at eop {i} accepted"
        );
        mutants += 1;
    }
    assert!(mutants >= 3, "too few expression slot mutants");
}
