//! Property tests for the resolution and bytecode passes: random
//! well-formed Spatial programs must resolve without panicking, survive
//! the printer unchanged, resolve idempotently, and execute identically
//! on all three engines (flat bytecode, resolved tree, string-keyed
//! reference). Raise `PROPTEST_CASES` for deeper sweeps (CI does).

use proptest::prelude::*;
use proptest::test_runner::TestRng;

use stardust_spatial::ir::MemDecl;
use stardust_spatial::printer::spatial_loc;
use stardust_spatial::{
    print_program, resolve, validate, Counter, Machine, MemKind, ReferenceMachine, SExpr, ScanOp,
    SpatialProgram, SpatialStmt, SymbolTable,
};

const SIZE: usize = 16;

/// A deterministic random *well-formed* program built from self-contained
/// feature blocks, each exercising a different statement/counter family.
/// Every block writes results to DRAM so engine divergence is observable.
fn random_program(seed: u64) -> SpatialProgram {
    let mut rng = TestRng::for_test(&format!("program-{seed}"));
    let mut p = SpatialProgram::new(format!("random_{seed}"));
    p.add_const("seed", seed as i64);
    p.add_dram("in0", SIZE);
    p.add_dram("in1", SIZE);
    p.add_sparse_dram("sp0", SIZE);
    p.add_dram("out0", SIZE);
    p.add_dram("out1", SIZE);

    let blocks = 3 + rng.below(5) as usize;
    for b in 0..blocks {
        let choice = rng.below(8);
        match choice {
            0 => load_store_block(&mut p, &mut rng, b),
            1 => scalar_loop_block(&mut p, &mut rng, b),
            2 => reduce_block(&mut p, &mut rng, b),
            3 => scan1_block(&mut p, &mut rng, b),
            4 => scan2_block(&mut p, &mut rng, b),
            5 => stream_store_block(&mut p, &mut rng, b),
            6 => rmw_block(&mut p, &mut rng, b),
            _ => nested_loop_block(&mut p, &mut rng, b),
        }
    }
    p.accel.push(SpatialStmt::Comment("generated".into()));
    p.assign_ids();
    p
}

fn small_const(rng: &mut TestRng) -> SExpr {
    SExpr::Const(rng.below(SIZE as u64) as f64)
}

/// A value expression over constants, an optional loop variable, and an
/// optional readable SRAM.
fn value_expr(rng: &mut TestRng, var: Option<&str>, sram: Option<&str>, depth: usize) -> SExpr {
    if depth == 0 {
        return match rng.below(3) {
            0 => SExpr::Const(rng.below(8) as f64),
            1 => var.map_or(SExpr::Const(1.0), SExpr::var),
            _ => SExpr::Const(rng.below(8) as f64 + 0.5),
        };
    }
    match rng.below(6) {
        0 => SExpr::add(
            value_expr(rng, var, sram, depth - 1),
            value_expr(rng, var, sram, depth - 1),
        ),
        1 => SExpr::mul(
            value_expr(rng, var, sram, depth - 1),
            value_expr(rng, var, sram, depth - 1),
        ),
        2 => SExpr::sub(
            value_expr(rng, var, sram, depth - 1),
            value_expr(rng, var, sram, depth - 1),
        ),
        3 => SExpr::Neg(Box::new(value_expr(rng, var, sram, depth - 1))),
        4 => SExpr::select(
            value_expr(rng, var, sram, depth - 1),
            value_expr(rng, var, sram, depth - 1),
            value_expr(rng, var, sram, depth - 1),
        ),
        _ => match sram {
            Some(s) => {
                let ix = match var {
                    Some(v) if rng.below(2) == 0 => SExpr::var(v),
                    _ => small_const(rng),
                };
                if rng.below(2) == 0 {
                    SExpr::read(s, ix)
                } else {
                    SExpr::read_random(s, ix)
                }
            }
            None => SExpr::Const(rng.below(8) as f64),
        },
    }
}

fn load_store_block(p: &mut SpatialProgram, rng: &mut TestRng, b: usize) {
    let s = format!("ls_s{b}");
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new(&s, MemKind::Sram, SIZE)));
    let start = rng.below(SIZE as u64 / 2);
    let end = start + 1 + rng.below(SIZE as u64 / 2);
    p.accel.push(SpatialStmt::Load {
        dst: s.clone(),
        src: if rng.below(2) == 0 { "in0" } else { "in1" }.into(),
        start: SExpr::Const(start as f64),
        end: SExpr::Const(end as f64),
        par: 1 + rng.below(4) as usize,
    });
    let n = rng.below(end - start) + 1;
    p.accel.push(SpatialStmt::Store {
        dst: "out0".into(),
        offset: SExpr::Const(rng.below(SIZE as u64 - n) as f64),
        src: s,
        len: SExpr::Const(n as f64),
        par: 1,
    });
}

fn scalar_loop_block(p: &mut SpatialProgram, rng: &mut TestRng, b: usize) {
    let s = format!("sl_s{b}");
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new(&s, MemKind::Sram, SIZE)));
    p.accel.push(SpatialStmt::Load {
        dst: s.clone(),
        src: "in0".into(),
        start: SExpr::Const(0.0),
        end: SExpr::Const(SIZE as f64),
        par: 1,
    });
    let trip = 1 + rng.below(SIZE as u64 - 1);
    let var = format!("i{b}");
    let value = value_expr(rng, Some(&var), Some(&s), 2);
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::range_to(&var, SExpr::Const(trip as f64)),
        par: 1 + rng.below(4) as usize,
        body: vec![SpatialStmt::StoreScalar {
            dst: "out1".into(),
            index: SExpr::var(&var),
            value,
        }],
    });
}

fn reduce_block(p: &mut SpatialProgram, rng: &mut TestRng, b: usize) {
    let r = format!("rd_r{b}");
    let f = format!("rd_f{b}");
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new(&r, MemKind::Reg, 1)));
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new(&f, MemKind::Fifo, SIZE)));
    let trip = 1 + rng.below(6);
    for _ in 0..trip {
        p.accel.push(SpatialStmt::Enq {
            fifo: f.clone(),
            value: SExpr::Const(rng.below(8) as f64),
        });
    }
    let var = format!("j{b}");
    let bound = format!("v{b}");
    p.accel.push(SpatialStmt::Reduce {
        id: 0,
        reg: r.clone(),
        counter: Counter::range_to(&var, SExpr::Const(trip as f64)),
        par: 1,
        body: vec![SpatialStmt::Bind {
            var: bound.clone(),
            value: SExpr::Deq(f),
        }],
        expr: SExpr::mul(SExpr::var(&bound), SExpr::var(&var)),
    });
    p.accel.push(SpatialStmt::StoreScalar {
        dst: "out0".into(),
        index: small_const(rng),
        value: SExpr::RegRead(r),
    });
}

fn coords(rng: &mut TestRng) -> Vec<u64> {
    let n = 1 + rng.below(6);
    let mut out: Vec<u64> = (0..n).map(|_| rng.below(SIZE as u64)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn bitvector_from_coords(p: &mut SpatialProgram, rng: &mut TestRng, name: &str) -> Vec<u64> {
    let cs = coords(rng);
    let fifo = format!("{name}_crd");
    p.accel.push(SpatialStmt::Alloc(MemDecl::new(
        name,
        MemKind::BitVector,
        SIZE,
    )));
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new(&fifo, MemKind::Fifo, SIZE)));
    for &c in &cs {
        p.accel.push(SpatialStmt::Enq {
            fifo: fifo.clone(),
            value: SExpr::Const(c as f64),
        });
    }
    p.accel.push(SpatialStmt::GenBitVector {
        dst: name.into(),
        src: fifo,
        src_start: SExpr::Const(0.0),
        count: SExpr::Const(cs.len() as f64),
        dim: SExpr::Const(SIZE as f64),
    });
    cs
}

fn scan1_block(p: &mut SpatialProgram, rng: &mut TestRng, b: usize) {
    let bv = format!("s1_bv{b}");
    bitvector_from_coords(p, rng, &bv);
    let (pos, idx) = (format!("p{b}"), format!("x{b}"));
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Scan1 {
            bv,
            pos_var: pos.clone(),
            idx_var: idx.clone(),
        },
        par: 1 + rng.below(2) as usize,
        body: vec![SpatialStmt::StoreScalar {
            dst: "out1".into(),
            index: SExpr::var(&pos),
            value: SExpr::var(&idx),
        }],
    });
}

fn scan2_block(p: &mut SpatialProgram, rng: &mut TestRng, b: usize) {
    let (bva, bvb) = (format!("s2_a{b}"), format!("s2_b{b}"));
    bitvector_from_coords(p, rng, &bva);
    bitvector_from_coords(p, rng, &bvb);
    let acc = format!("s2_acc{b}");
    p.accel.push(SpatialStmt::Alloc(MemDecl::new(
        &acc,
        MemKind::SparseSram,
        SIZE,
    )));
    let vars = [
        format!("pa{b}"),
        format!("pb{b}"),
        format!("po{b}"),
        format!("ix{b}"),
    ];
    let op = if rng.below(2) == 0 {
        ScanOp::And
    } else {
        ScanOp::Or
    };
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::Scan2 {
            op,
            bv_a: bva,
            bv_b: bvb,
            a_pos_var: vars[0].clone(),
            b_pos_var: vars[1].clone(),
            out_pos_var: vars[2].clone(),
            idx_var: vars[3].clone(),
        },
        par: 1,
        body: vec![SpatialStmt::WriteMem {
            mem: acc.clone(),
            index: SExpr::var(&vars[2]),
            value: SExpr::select(
                SExpr::add(SExpr::var(&vars[0]), SExpr::Const(1.0)),
                SExpr::var(&vars[3]),
                SExpr::Neg(Box::new(SExpr::var(&vars[1]))),
            ),
            random: true,
        }],
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out0".into(),
        offset: SExpr::Const(0.0),
        src: acc,
        len: SExpr::Const(SIZE as f64),
        par: 1,
    });
}

fn stream_store_block(p: &mut SpatialProgram, rng: &mut TestRng, b: usize) {
    let f = format!("ss_f{b}");
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new(&f, MemKind::Fifo, SIZE)));
    let n = 1 + rng.below(SIZE as u64 / 2);
    for _ in 0..n {
        p.accel.push(SpatialStmt::Enq {
            fifo: f.clone(),
            value: SExpr::Const(rng.below(16) as f64 + 0.25),
        });
    }
    p.accel.push(SpatialStmt::StreamStore {
        dst: "out1".into(),
        offset: SExpr::Const(rng.below(SIZE as u64 - n) as f64),
        fifo: f,
        len: SExpr::Const(n as f64),
    });
}

fn rmw_block(p: &mut SpatialProgram, rng: &mut TestRng, b: usize) {
    let acc = format!("rmw_a{b}");
    let kind = if rng.below(2) == 0 {
        MemKind::Sram
    } else {
        MemKind::SparseSram
    };
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new(&acc, kind, SIZE)));
    let var = format!("k{b}");
    let trip = 1 + rng.below(8);
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::range_to(&var, SExpr::Const(trip as f64)),
        par: 1,
        body: vec![SpatialStmt::RmwAdd {
            mem: acc.clone(),
            index: SExpr::bin(
                stardust_spatial::BinSOp::Mod,
                SExpr::var(&var),
                SExpr::Const(4.0),
            ),
            value: SExpr::read_random("sp0", SExpr::var(&var)),
        }],
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out0".into(),
        offset: SExpr::Const((SIZE / 2) as f64),
        src: acc,
        len: SExpr::Const(4.0),
        par: 1,
    });
}

fn nested_loop_block(p: &mut SpatialProgram, rng: &mut TestRng, b: usize) {
    let s = format!("nl_s{b}");
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new(&s, MemKind::Sram, SIZE)));
    let (vo, vi) = (format!("o{b}"), format!("n{b}"));
    let (outer, inner) = (1 + rng.below(4), 1 + rng.below(4));
    let value = value_expr(rng, Some(&vi), None, 2);
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::range_to(&vo, SExpr::Const(outer as f64)),
        par: 2,
        body: vec![SpatialStmt::Foreach {
            id: 0,
            counter: Counter::Range {
                var: vi.clone(),
                min: SExpr::Const(0.0),
                max: SExpr::Const(inner as f64),
                step: 1 + rng.below(2) as i64,
            },
            par: 1,
            body: vec![SpatialStmt::WriteMem {
                mem: s.clone(),
                index: SExpr::add(SExpr::var(&vo), SExpr::var(&vi)),
                value,
                random: false,
            }],
        }],
    });
    p.accel.push(SpatialStmt::Store {
        dst: "out1".into(),
        offset: SExpr::Const(0.0),
        src: s,
        len: SExpr::Const(8.0),
        par: 1,
    });
}

/// Input images for the declared DRAM arrays, derived from the seed.
fn inputs(seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let mut rng = TestRng::for_test(&format!("inputs-{seed}"));
    ["in0", "in1", "sp0"]
        .into_iter()
        .map(|name| {
            let data = (0..SIZE)
                .map(|_| rng.below(16) as f64 - 4.0)
                .collect::<Vec<_>>();
            (name, data)
        })
        .collect()
}

/// Runs `f` under the `STARDUST_FAULTS` environment plan when one is
/// set (the CI fault-injection job's knob), installing a *fresh* plan
/// per call so one-shot faults fire identically for every engine. With
/// the variable unset this is a plain call.
fn with_env_faults<R>(f: impl FnOnce() -> R) -> R {
    // A malformed plan (typo'd key, bad value) must fail the suite
    // loudly — treating it as "no faults" would run the chaos sweep as
    // a vacuous no-op.
    match stardust_spatial::FaultPlan::from_env().expect("STARDUST_FAULTS is malformed") {
        Some(plan) => stardust_spatial::faults::with_plan(plan, f),
        None => f(),
    }
}

/// Runs `p` on all three engines and asserts bitwise-identical DRAM
/// images and identical statistics (or identical errors). Under an
/// injected `STARDUST_FAULTS` plan the runs abort early — the engines
/// must then agree on the error *and* on every byte of the partial
/// DRAM state, since budget/fault charges land on the same loop
/// back-edges in all three.
fn assert_engines_agree(p: &SpatialProgram, writes: &[(&str, Vec<f64>)]) {
    let mut fast = Machine::new(p);
    let mut reference = ReferenceMachine::new(p);
    for (name, data) in writes {
        fast.write_dram(name, data).unwrap();
        reference.write_dram(name, data).unwrap();
    }
    let mut tree = fast.clone();
    let fast_result = with_env_faults(|| fast.run(p));
    let tree_result = with_env_faults(|| tree.run_tree(p));
    let ref_result = with_env_faults(|| reference.run(p));
    assert_eq!(fast_result, tree_result, "bytecode vs tree results diverge");
    assert_eq!(fast_result, ref_result, "run results diverge");
    for d in &p.drams {
        let a: Vec<u64> = fast
            .dram(&d.name)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let t: Vec<u64> = tree
            .dram(&d.name)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let b: Vec<u64> = reference
            .dram(&d.name)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(a, t, "DRAM {} bytecode vs tree diverges", d.name);
        assert_eq!(a, b, "DRAM {} diverges", d.name);
    }
    assert_eq!(fast.stats(), tree.stats(), "bytecode vs tree stats diverge");
    assert_eq!(fast.stats(), reference.stats(), "stats diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random well-formed programs validate, resolve without panicking,
    /// resolve idempotently, and round-trip through the printer
    /// unchanged.
    #[test]
    fn random_programs_resolve_and_roundtrip(seed in 0u64..100_000) {
        let p = random_program(seed);
        validate(&p).expect("generated programs are well-formed");

        let printed_before = print_program(&p);
        let loc = spatial_loc(&p);

        let mut syms = SymbolTable::default();
        let r1 = resolve(&p, &mut syms);
        let r2 = resolve(&p, &mut syms);
        prop_assert_eq!(&r1, &r2, "resolution must be idempotent");
        prop_assert!(r1.exprs.len() < 10_000);

        // Resolution must not disturb the program: printing after the
        // pass reproduces the same source, line for line.
        let printed_after = print_program(&p);
        prop_assert_eq!(printed_before, printed_after);
        prop_assert_eq!(loc, spatial_loc(&p));

        // The static verifier has zero false positives: every artifact
        // the compiler produces passes (the mutation suite in
        // `verify.rs` covers the no-false-negative half).
        let compiled = stardust_spatial::CompiledProgram::compile(&p);
        if let Err(e) = compiled.verify() {
            panic!("verifier rejected a compiler output (seed {seed}): {e}");
        }
    }

    /// The resolved-slot engine and the reference engine agree — bitwise
    /// DRAM images, statistics, and errors — on random programs.
    #[test]
    fn random_programs_execute_identically(seed in 0u64..100_000) {
        let p = random_program(seed);
        assert_engines_agree(&p, &inputs(seed));
    }
}
