//! Copy-on-write `DramImage` aliasing tests: machines bound to one
//! shared image must never observe each other's writes, the image
//! itself must stay pristine, and image binding must be byte-for-byte
//! indistinguishable from `write_dram` binding — DRAM contents and
//! statistics alike.

use std::sync::Arc;

use proptest::prelude::*;
use proptest::test_runner::TestRng;

use stardust_spatial::ir::MemDecl;
use stardust_spatial::{
    CompiledProgram, Counter, DramImage, Machine, MemKind, RunError, SExpr, SpatialProgram,
    SpatialStmt,
};

const SIZE: usize = 16;

/// A program that reads both input arrays and writes DRAM through all
/// three store paths (bulk, stream, scalar), parameterized by seed so
/// the property sweep covers different shapes.
fn writing_program(seed: u64) -> SpatialProgram {
    let mut rng = TestRng::for_test(&format!("image-{seed}"));
    let mut p = SpatialProgram::new(format!("image_{seed}"));
    p.add_dram("in0", SIZE);
    p.add_dram("in1", SIZE);
    p.add_dram("out0", SIZE);
    p.add_dram("out1", SIZE);
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, SIZE)));
    p.accel.push(SpatialStmt::Load {
        dst: "s".into(),
        src: "in0".into(),
        start: SExpr::Const(0.0),
        end: SExpr::Const(SIZE as f64),
        par: 1,
    });
    let n = 1 + rng.below(SIZE as u64 - 1);
    p.accel.push(SpatialStmt::Store {
        dst: "out0".into(),
        offset: SExpr::Const(0.0),
        src: "s".into(),
        len: SExpr::Const(n as f64),
        par: 1,
    });
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::range_to("i", SExpr::Const(rng.below(SIZE as u64) as f64)),
        par: 1,
        body: vec![SpatialStmt::StoreScalar {
            dst: "out1".into(),
            index: SExpr::var("i"),
            value: SExpr::add(
                SExpr::read_random("in1", SExpr::var("i")),
                SExpr::Const(rng.below(8) as f64),
            ),
        }],
    });
    p.assign_ids();
    p
}

fn inputs(seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let mut rng = TestRng::for_test(&format!("image-inputs-{seed}"));
    ["in0", "in1"]
        .into_iter()
        .map(|name| {
            let data: Vec<f64> = (0..SIZE).map(|_| rng.below(32) as f64 - 8.0).collect();
            (name, data)
        })
        .collect()
}

fn build_image(compiled: &Arc<CompiledProgram>, writes: &[(&str, Vec<f64>)]) -> DramImage {
    let mut b = DramImage::builder(Arc::clone(compiled));
    for (name, data) in writes {
        let slot = compiled.syms().dram_slot(name).expect("declared");
        b.write(slot, data).expect("fits");
    }
    b.finish()
}

fn dram_bits(m: &Machine, name: &str) -> Vec<u64> {
    m.dram(name).unwrap().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two machines bound to the same image: one runs a DRAM-writing
    /// program, the other must stay bit-identical to the pristine
    /// image on every array (no aliasing through the CoW path), and
    /// the image itself must stay pristine.
    #[test]
    fn sibling_machines_never_alias(seed in 0u64..50_000) {
        let p = writing_program(seed);
        let writes = inputs(seed);
        let compiled = Arc::new(CompiledProgram::compile(&p));
        let image = build_image(&compiled, &writes);
        let pristine_input = image.input_words().to_vec();

        let mut runner = Machine::from_compiled(Arc::clone(&compiled));
        runner.bind_image(&image).unwrap();
        let mut witness = Machine::from_compiled(Arc::clone(&compiled));
        witness.bind_image(&image).unwrap();
        let witness_before: Vec<Vec<u64>> =
            p.drams.iter().map(|d| dram_bits(&witness, &d.name)).collect();

        runner.run(&p).expect("writing program runs");
        // The runner *did* write something.
        prop_assert!(runner.stats().total_dram_write_words()
            + runner.stats().dram_random_writes > 0);

        // The sibling machine and the image are untouched.
        for (d, before) in p.drams.iter().zip(&witness_before) {
            prop_assert_eq!(&dram_bits(&witness, &d.name), before,
                "sibling DRAM {} changed", &d.name);
        }
        let image_now: Vec<u64> = image.input_words().iter().map(|v| v.to_bits()).collect();
        let image_was: Vec<u64> = pristine_input.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(image_now, image_was, "shared image mutated");

        // Inputs seen by the runner are still the image's inputs.
        for (name, data) in &writes {
            prop_assert_eq!(runner.dram(name).unwrap(), data.as_slice());
        }
    }

    /// Image-bound and `write_dram`-bound machines are byte-identical:
    /// same DRAM before the run, same DRAM and statistics after.
    #[test]
    fn image_bind_matches_write_dram_bind(seed in 0u64..50_000) {
        let p = writing_program(seed);
        let writes = inputs(seed);
        let compiled = Arc::new(CompiledProgram::compile(&p));
        let image = build_image(&compiled, &writes);

        let mut via_image = Machine::from_compiled(Arc::clone(&compiled));
        via_image.bind_image(&image).unwrap();
        let mut via_write = Machine::from_compiled(Arc::clone(&compiled));
        for (name, data) in &writes {
            via_write.write_dram(name, data).unwrap();
        }
        for d in &p.drams {
            prop_assert_eq!(dram_bits(&via_image, &d.name), dram_bits(&via_write, &d.name),
                "DRAM {} diverges at bind time", &d.name);
        }

        let a = via_image.run(&p);
        let b = via_write.run(&p);
        prop_assert_eq!(&a, &b, "run results diverge");
        for d in &p.drams {
            prop_assert_eq!(dram_bits(&via_image, &d.name), dram_bits(&via_write, &d.name),
                "DRAM {} diverges after run", &d.name);
        }
        prop_assert_eq!(via_image.stats(), via_write.stats(), "stats diverge");
    }
}

/// `write_dram` into a shared input-segment array copies the segment
/// instead of mutating the shared image (string-API copy-on-write).
#[test]
fn write_dram_after_image_bind_copies_not_mutates() {
    let p = writing_program(1);
    let writes = inputs(1);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let image = build_image(&compiled, &writes);

    let mut a = Machine::from_compiled(Arc::clone(&compiled));
    a.bind_image(&image).unwrap();
    let mut b = Machine::from_compiled(Arc::clone(&compiled));
    b.bind_image(&image).unwrap();

    // Mutate an *input* array on `a` through the string API.
    a.write_dram("in0", &[99.0, 98.0]).unwrap();
    assert_eq!(&a.dram("in0").unwrap()[..2], &[99.0, 98.0]);
    // `b` and the image still see the original words.
    assert_eq!(b.dram("in0").unwrap(), &writes[0].1[..]);
    let (off, want) = (0, &writes[0].1);
    assert_eq!(&image.input_words()[off..off + want.len()], &want[..]);
    // Untouched words of `a`'s segment survived the copy.
    assert_eq!(a.dram("in0").unwrap()[2..], writes[0].1[2..]);
    assert_eq!(a.dram("in1").unwrap(), &writes[1].1[..]);
}

/// Cloned machines copy-on-write too: a clone's input writes never leak
/// into the original.
#[test]
fn cloned_machine_copies_on_input_write() {
    let p = writing_program(2);
    let writes = inputs(2);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let image = build_image(&compiled, &writes);
    let mut a = Machine::from_compiled(Arc::clone(&compiled));
    a.bind_image(&image).unwrap();
    let mut b = a.clone();
    b.write_dram("in1", &[7.0]).unwrap();
    assert_eq!(a.dram("in1").unwrap(), &writes[1].1[..]);
    assert_eq!(b.dram("in1").unwrap()[0], 7.0);
}

/// An image built for one program cannot bind to a machine running a
/// different one.
#[test]
fn image_for_different_program_is_rejected() {
    let p1 = writing_program(3);
    let p2 = writing_program(4);
    let c1 = Arc::new(CompiledProgram::compile(&p1));
    let c2 = Arc::new(CompiledProgram::compile(&p2));
    let image = build_image(&c1, &inputs(3));
    let mut m = Machine::from_compiled(c2);
    assert_eq!(m.bind_image(&image), Err(RunError::ImageMismatch));
    // Equal programs compiled separately are compatible.
    let c1b = Arc::new(CompiledProgram::compile(&p1));
    let mut m = Machine::from_compiled(c1b);
    assert_eq!(m.bind_image(&image), Ok(()));
    assert_eq!(m.dram("in0").unwrap(), &inputs(3)[0].1[..]);
}

/// A machine's DRAM placement is fixed at construction: after
/// re-linking to a different program (whose layout reclassifies an
/// input array as written), an image built for the *relinked* program
/// must be rejected — binding it against the stale construction-time
/// offsets would silently scramble arrays — while images for the
/// construction-time program still bind correctly.
#[test]
fn relinked_machine_rejects_images_for_the_new_program() {
    // p1 reads `a` and `c`; both land in p1's input segment with `c`
    // at a nonzero offset.
    let mut p1 = SpatialProgram::new("p1");
    p1.add_dram("a", 2);
    p1.add_dram("c", 4);
    p1.add_dram("out", 1);
    p1.accel
        .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, 2)));
    p1.accel.push(SpatialStmt::Load {
        dst: "s".into(),
        src: "a".into(),
        start: SExpr::Const(0.0),
        end: SExpr::Const(2.0),
        par: 1,
    });
    p1.accel.push(SpatialStmt::StoreScalar {
        dst: "out".into(),
        index: SExpr::Const(0.0),
        value: SExpr::read_random("c", SExpr::Const(1.0)),
    });
    p1.assign_ids();
    // p2 *writes* `a`, so p2's layout moves `a` to the output segment
    // and packs `c` at input offset 0 — different from p1's placement.
    let mut p2 = SpatialProgram::new("p2");
    p2.add_dram("a", 2);
    p2.add_dram("c", 4);
    p2.accel.push(SpatialStmt::StoreScalar {
        dst: "a".into(),
        index: SExpr::Const(0.0),
        value: SExpr::Const(5.0),
    });
    p2.assign_ids();

    let c1 = Arc::new(CompiledProgram::compile(&p1));
    let mut m = Machine::from_compiled(Arc::clone(&c1));
    m.run(&p2).expect("relink run");

    // An image for the machine's *current* (relinked) compiled program
    // must be rejected: the machine's DRAM placement still follows p1.
    let mut b = DramImage::builder(Arc::clone(m.compiled()));
    let slot = m.compiled().syms().dram_slot("c").unwrap();
    b.write(slot, &[10.0, 20.0, 30.0, 40.0]).unwrap();
    let image_p2 = b.finish();
    assert_eq!(m.bind_image(&image_p2), Err(RunError::ImageMismatch));

    // An image for the construction-time program binds correctly.
    let mut b = DramImage::builder(Arc::clone(&c1));
    let slot = c1.syms().dram_slot("c").unwrap();
    b.write(slot, &[10.0, 20.0, 30.0, 40.0]).unwrap();
    let image_p1 = b.finish();
    m.bind_image(&image_p1).unwrap();
    assert_eq!(m.dram("c").unwrap(), &[10.0, 20.0, 30.0, 40.0]);
}

/// `reset` + `bind_image` on one long-lived machine reproduces a fresh
/// machine's run exactly — DRAM and statistics — across repeated
/// datasets (the O(outputs) serving loop).
#[test]
fn reused_machine_matches_fresh_machine() {
    let p = writing_program(6);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let images: Vec<DramImage> = (0..3)
        .map(|i| build_image(&compiled, &inputs(100 + i)))
        .collect();

    let mut reused = Machine::from_compiled(Arc::clone(&compiled));
    for (round, image) in images.iter().cycle().take(6).enumerate() {
        reused.reset();
        reused.bind_image(image).unwrap();
        let reused_stats = reused.run(&p).expect("reused machine runs");

        let mut fresh = Machine::from_compiled(Arc::clone(&compiled));
        fresh.bind_image(image).unwrap();
        let fresh_stats = fresh.run(&p).expect("fresh machine runs");

        assert_eq!(reused_stats, fresh_stats, "stats diverge on round {round}");
        for d in &p.drams {
            assert_eq!(
                dram_bits(&reused, &d.name),
                dram_bits(&fresh, &d.name),
                "DRAM {} diverges on round {round}",
                d.name
            );
        }
    }
}

/// Re-binding an image resets outputs to the bind-time state: a second
/// bind after a run reproduces the first run exactly.
#[test]
fn rebind_resets_outputs() {
    let p = writing_program(5);
    let writes = inputs(5);
    let compiled = Arc::new(CompiledProgram::compile(&p));
    let image = build_image(&compiled, &writes);

    let mut m = Machine::from_compiled(Arc::clone(&compiled));
    m.bind_image(&image).unwrap();
    m.run(&p).unwrap();
    let out_after: Vec<u64> = dram_bits(&m, "out0");

    let mut m2 = Machine::from_compiled(Arc::clone(&compiled));
    m2.bind_image(&image).unwrap();
    m2.run(&p).unwrap();
    assert_eq!(dram_bits(&m2, "out0"), out_after);
}
