//! Fault-isolation integration suite: runaway kernels must terminate
//! with structured [`RunError::BudgetExceeded`] on every engine, and
//! after any injected fault (forced error, forced panic, failed
//! allocation, shrunken budget) subsequent runs must be byte-identical
//! to a never-faulted baseline — the invariant that lets a serving
//! layer retry on a fresh machine and trust the answer.
//!
//! The injected faults come from [`stardust_spatial::faults`]; the
//! `env_keyed_fault_plan_recovers` test additionally honors
//! `STARDUST_FAULTS` (the CI fault-injection job's knob) so chaos
//! plans can be swept without recompiling.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use stardust_spatial::ir::MemDecl;
use stardust_spatial::{
    faults, BudgetResource, CancelFlag, Counter, FaultPlan, Machine, MemKind, ReferenceMachine,
    RunBudget, RunError, SExpr, SpatialProgram, SpatialStmt,
};

const SIZE: usize = 16;

/// A deliberately runaway kernel: 10^15 loop trips (days of wall
/// clock), each writing one DRAM word. Only a budget can stop it.
fn runaway_program() -> SpatialProgram {
    let mut p = SpatialProgram::new("runaway");
    p.add_dram("out0", SIZE);
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::range_to("i", SExpr::Const(1e15)),
        par: 1,
        body: vec![SpatialStmt::StoreScalar {
            dst: "out0".into(),
            index: SExpr::bin(
                stardust_spatial::BinSOp::Mod,
                SExpr::var("i"),
                SExpr::Const(SIZE as f64),
            ),
            value: SExpr::var("i"),
        }],
    });
    p.assign_ids();
    p
}

/// A small terminating kernel with an on-chip alloc, a bulk load, and
/// a scalar-store loop — enough surface for every fault site.
fn small_program(trips: usize) -> SpatialProgram {
    let mut p = SpatialProgram::new("small");
    p.add_dram("in0", SIZE);
    p.add_dram("out0", SIZE);
    p.accel
        .push(SpatialStmt::Alloc(MemDecl::new("s", MemKind::Sram, SIZE)));
    p.accel.push(SpatialStmt::Load {
        dst: "s".into(),
        src: "in0".into(),
        start: SExpr::Const(0.0),
        end: SExpr::Const(SIZE as f64),
        par: 1,
    });
    p.accel.push(SpatialStmt::Foreach {
        id: 0,
        counter: Counter::range_to("i", SExpr::Const(trips as f64)),
        par: 1,
        body: vec![SpatialStmt::StoreScalar {
            dst: "out0".into(),
            index: SExpr::bin(
                stardust_spatial::BinSOp::Mod,
                SExpr::var("i"),
                SExpr::Const(SIZE as f64),
            ),
            value: SExpr::add(SExpr::read("s", SExpr::var("i")), SExpr::Const(0.5)),
        }],
    });
    p.assign_ids();
    p
}

fn in0() -> Vec<f64> {
    (0..SIZE).map(|i| i as f64 * 0.25 - 1.0).collect()
}

fn machine(p: &SpatialProgram) -> Machine {
    let mut m = Machine::new(p);
    if p.drams.iter().any(|d| d.name == "in0") {
        m.write_dram("in0", &in0()).expect("bind in0");
    }
    m
}

fn reference(p: &SpatialProgram) -> ReferenceMachine {
    let mut m = ReferenceMachine::new(p);
    if p.drams.iter().any(|d| d.name == "in0") {
        m.write_dram("in0", &in0()).expect("bind in0");
    }
    m
}

fn dram_bits(m: &Machine, name: &str) -> Vec<u64> {
    m.dram(name).unwrap().iter().map(|v| v.to_bits()).collect()
}

/// The fault-free serial baseline every recovery assertion compares
/// against: a fresh machine, no plan installed, full run.
fn baseline(p: &SpatialProgram) -> Vec<Vec<u64>> {
    faults::clear();
    let mut m = machine(p);
    m.run(p).expect("baseline runs");
    p.drams.iter().map(|d| dram_bits(&m, &d.name)).collect()
}

fn assert_matches_baseline(p: &SpatialProgram, m: &Machine, want: &[Vec<u64>]) {
    for (d, bits) in p.drams.iter().zip(want) {
        assert_eq!(&dram_bits(m, &d.name), bits, "DRAM {} diverges", d.name);
    }
}

#[test]
fn runaway_kernel_exhausts_fuel_on_all_three_engines() {
    let p = runaway_program();
    let budget = RunBudget::default().with_max_steps(10_000);
    let want = Err(RunError::BudgetExceeded {
        resource: BudgetResource::Steps,
        limit: 10_000,
    });

    let mut bytecode = machine(&p);
    bytecode.set_budget(budget.clone());
    assert_eq!(bytecode.run(&p), want, "bytecode engine");
    assert!(
        bytecode.poisoned(),
        "an aborted run must poison the machine"
    );

    let mut tree = machine(&p);
    tree.set_budget(budget.clone());
    assert_eq!(tree.run_tree(&p), want, "resolved-tree engine");
    assert!(tree.poisoned());

    let mut walker = reference(&p);
    walker.set_budget(budget);
    assert_eq!(walker.run(&p), want, "reference engine");
}

#[test]
fn runaway_kernel_hits_wall_clock_deadline() {
    let p = runaway_program();
    let mut m = machine(&p);
    m.set_budget(RunBudget::default().with_deadline(Duration::from_millis(40)));
    let t0 = Instant::now();
    match m.run(&p) {
        Err(RunError::BudgetExceeded {
            resource: BudgetResource::Deadline,
            ..
        }) => {}
        other => panic!("expected deadline abort, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "deadline abort took {:?}",
        t0.elapsed()
    );
}

#[test]
fn cancel_flag_stops_a_running_kernel() {
    let p = runaway_program();
    let flag = CancelFlag::new();
    flag.cancel();
    let mut m = machine(&p);
    m.set_budget(RunBudget::default().with_cancel(flag));
    match m.run(&p) {
        Err(RunError::BudgetExceeded {
            resource: BudgetResource::Cancelled,
            ..
        }) => {}
        other => panic!("expected cancellation, got {other:?}"),
    }
}

#[test]
fn dram_word_budget_bounds_memory_traffic() {
    let p = small_program(8);
    let budget = RunBudget::default().with_max_dram_words(4);
    let mut m = machine(&p);
    m.set_budget(budget.clone());
    let fast = m.run(&p);
    let mut walker = reference(&p);
    walker.set_budget(budget);
    let slow = walker.run(&p);
    match &fast {
        Err(RunError::BudgetExceeded {
            resource: BudgetResource::DramWords,
            limit: 4,
        }) => {}
        other => panic!("expected DRAM budget abort, got {other:?}"),
    }
    assert_eq!(fast, slow, "engines disagree on the DRAM budget abort");
}

#[test]
fn injected_error_is_one_shot_and_engines_agree() {
    let p = small_program(12);
    let want = baseline(&p);
    let plan = FaultPlan {
        error_at_step: Some(3),
        ..FaultPlan::default()
    };

    // Each engine gets its own plan installation (the fault is one-shot
    // per plan), and all must fail identically.
    let fast = faults::with_plan(plan.clone(), || machine(&p).run(&p));
    let tree = faults::with_plan(plan.clone(), || machine(&p).run_tree(&p));
    let slow = faults::with_plan(plan.clone(), || reference(&p).run(&p));
    match &fast {
        Err(RunError::InjectedFault { site }) => {
            assert!(site.contains("step"), "unexpected site {site}")
        }
        other => panic!("expected injected fault, got {other:?}"),
    }
    assert_eq!(fast, tree, "bytecode vs tree injected-error divergence");
    assert_eq!(
        fast, slow,
        "bytecode vs reference injected-error divergence"
    );

    // One-shot: under the *same still-installed* plan, the fault fires
    // once and the very next run is clean and byte-identical to the
    // fault-free baseline.
    faults::with_plan(plan, || {
        let mut victim = machine(&p);
        assert!(victim.run(&p).is_err(), "first run must fault");
        assert!(victim.poisoned());
        let mut retry = machine(&p);
        retry.run(&p).expect("retry after one-shot fault is clean");
        assert!(!retry.poisoned());
        assert_matches_baseline(&p, &retry, &want);
    });
}

#[test]
fn injected_panic_is_contained_and_recovery_is_byte_identical() {
    let p = small_program(12);
    let want = baseline(&p);
    let plan = FaultPlan {
        panic_at_step: Some(4),
        ..FaultPlan::default()
    };
    let _guard = plan.install();

    let mut victim = machine(&p);
    let unwound = catch_unwind(AssertUnwindSafe(|| victim.run(&p)));
    let payload = unwound.expect_err("the injected panic must unwind");
    let msg = payload
        .downcast_ref::<String>()
        .expect("string panic payload");
    assert!(msg.contains("injected fault"), "wrong payload: {msg}");
    assert!(
        victim.poisoned(),
        "a machine that panicked mid-run must stay poisoned"
    );

    // The panic consumed its one-shot trigger: a fresh machine now runs
    // clean and lands exactly on the fault-free baseline.
    let mut retry = machine(&p);
    retry.run(&p).expect("retry after injected panic");
    assert_matches_baseline(&p, &retry, &want);
}

#[test]
fn injected_alloc_failure_surfaces_typed_error_on_both_engines() {
    let p = small_program(6);
    let want = baseline(&p);
    let plan = FaultPlan {
        fail_alloc: Some(0),
        ..FaultPlan::default()
    };
    let fast = faults::with_plan(plan.clone(), || machine(&p).run(&p));
    let slow = faults::with_plan(plan.clone(), || reference(&p).run(&p));
    match &fast {
        Err(RunError::InjectedFault { site }) => {
            assert!(site.contains("alloc"), "unexpected site {site}")
        }
        other => panic!("expected injected alloc failure, got {other:?}"),
    }
    assert_eq!(fast, slow, "engines disagree on the alloc failure");

    faults::with_plan(plan, || {
        let mut victim = machine(&p);
        assert!(victim.run(&p).is_err());
        let mut retry = machine(&p);
        retry.run(&p).expect("alloc fault is one-shot");
        assert_matches_baseline(&p, &retry, &want);
    });
}

#[test]
fn fault_plan_step_clamp_is_persistent() {
    let p = runaway_program();
    let plan = FaultPlan {
        max_steps: Some(10),
        ..FaultPlan::default()
    };
    faults::with_plan(plan, || {
        // Unlike the one-shot faults, the clamp models a standing
        // resource limit: every run under the plan hits it.
        for round in 0..2 {
            let mut m = machine(&p);
            match m.run(&p) {
                Err(RunError::BudgetExceeded {
                    resource: BudgetResource::Steps,
                    limit: 10,
                }) => {}
                other => panic!("round {round}: expected clamped budget, got {other:?}"),
            }
        }
    });
}

/// The CI chaos entry point: when `STARDUST_FAULTS` is set (e.g.
/// `error_at=5,fail_alloc=1`) the injected plan comes from the
/// environment; otherwise a representative default runs. Whatever the
/// plan does — error, panic, alloc failure, budget clamp — the process
/// survives, and once its one-shot triggers are consumed a fresh run
/// must be byte-identical to the fault-free baseline.
#[test]
fn env_keyed_fault_plan_recovers() {
    let p = small_program(12);
    let want = baseline(&p);
    let plan = FaultPlan::from_env()
        .expect("STARDUST_FAULTS is malformed")
        .unwrap_or(FaultPlan {
            error_at_step: Some(5),
            ..FaultPlan::default()
        });
    let persistent_clamp = plan.max_steps;
    let _guard = plan.install();

    // First exposure: absorb whatever the plan throws (a contained
    // panic, a structured error, or — for a generous clamp — success).
    let first = catch_unwind(AssertUnwindSafe(|| machine(&p).run(&p)));
    drop(first);

    // One-shots are now consumed. With no persistent clamp installed,
    // the next run must be clean and byte-identical to the baseline.
    if persistent_clamp.is_none() {
        let mut retry = machine(&p);
        retry.run(&p).expect("post-fault run is clean");
        assert_matches_baseline(&p, &retry, &want);
    } else {
        // A standing clamp keeps applying; the run must still terminate
        // with a structured error rather than hang or panic.
        let mut retry = machine(&p);
        match retry.run(&p) {
            Ok(_) => assert_matches_baseline(&p, &retry, &want),
            Err(RunError::BudgetExceeded { .. }) => {}
            Err(other) => panic!("unexpected error under clamp: {other:?}"),
        }
    }
}
