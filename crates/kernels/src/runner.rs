//! Compiling and executing kernels end-to-end (multi-stage aware).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use stardust_core::lower::SizeHints;
use stardust_core::pipeline::{
    CompiledKernel, Compiler, ImageCache, KernelOutput, KernelRun, TensorData,
};
use stardust_core::CompileError;
use stardust_spatial::{DramImage, ExecStats, MachinePool, ProgramCache, RunBudget};
use stardust_tensor::SparseTensor;

use crate::defs::Kernel;

/// Process-wide counters for the pooled-execution recovery policy:
/// `RETRIED` counts stage runs that failed transiently (contained
/// panic, injected fault) and were retried once on a fresh machine;
/// `ABORTED` counts stage runs that failed for good — a deterministic
/// error, or a retry that failed again. Monotonic, like the pool's
/// created/reused/quarantined counters; the sweep binary reports them
/// in its summary.
static RETRIED: AtomicU64 = AtomicU64::new(0);
static ABORTED: AtomicU64 = AtomicU64::new(0);

/// The capped backoff slept before the single retry — long enough to
/// let a transiently-wedged resource settle, short enough to be
/// invisible against a kernel run.
const RETRY_BACKOFF: Duration = Duration::from_millis(5);

/// Cumulative recovery counters (see [`recovery_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Transient stage failures retried once on a fresh machine.
    pub retried: u64,
    /// Stage runs that aborted for good (deterministic error, or the
    /// retry failed too).
    pub aborted: u64,
}

/// The process-wide [`RecoveryStats`] for every pooled kernel run so
/// far.
pub fn recovery_stats() -> RecoveryStats {
    RecoveryStats {
        retried: RETRIED.load(Ordering::Relaxed),
        aborted: ABORTED.load(Ordering::Relaxed),
    }
}

/// How pooled stages execute: the pool and budget, plus the opt-in
/// intra-kernel parallelism knobs (`shards > 1` splits each shardable
/// stage's outer loop across pooled machines; `capacity` bounds total
/// checkouts as in `MachinePool::try_checkout_n`).
#[derive(Clone, Copy)]
struct PoolExec<'a> {
    pool: &'a MachinePool,
    budget: &'a RunBudget,
    shards: usize,
    capacity: Option<u64>,
}

/// Runs one stage on pooled machines under the recovery policy:
/// transient failures ([`CompileError::is_transient`] — a contained
/// panic or a one-shot injected fault) are retried exactly once, after
/// [`RETRY_BACKOFF`], on a *fresh* machine — the faulted one was
/// poisoned and quarantined at check-in, so the retry checkout can
/// only receive a clean or newly constructed machine. Deterministic
/// failures (budget exhaustion, bind errors) abort immediately: the
/// same run would fail the same way.
///
/// With `shards > 1`, a stage whose outer loop proves shardable runs
/// through the sharded executor (bitwise-identical results, its own
/// internal per-shard retry); everything else — `NotShardable`
/// stages, single-trip loops — falls back to the serial pooled path
/// below.
fn run_stage_pooled(
    compiled: &CompiledKernel,
    image: &DramImage,
    exec: PoolExec<'_>,
) -> Result<KernelRun, CompileError> {
    let PoolExec {
        pool,
        budget,
        shards,
        capacity,
    } = exec;
    if shards > 1 {
        if let Ok(sh) = compiled.shard(shards) {
            if sh.shard_count() > 1 {
                return compiled
                    .execute_image_sharded_budgeted(&sh, image, pool, budget, capacity)
                    .map(|(run, _workers)| run)
                    .inspect_err(|_| {
                        ABORTED.fetch_add(1, Ordering::Relaxed);
                    });
            }
        }
    }
    match compiled.execute_image_pooled_budgeted(image, pool, budget) {
        Ok(run) => Ok(run),
        Err(e) if e.is_transient() => {
            RETRIED.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(RETRY_BACKOFF);
            compiled
                .execute_image_pooled_budgeted(image, pool, budget)
                .inspect_err(|_| {
                    ABORTED.fetch_add(1, Ordering::Relaxed);
                })
        }
        Err(e) => {
            ABORTED.fetch_add(1, Ordering::Relaxed);
            Err(e)
        }
    }
}

/// One executed stage: its compiled form plus interpreter statistics.
#[derive(Debug, Clone)]
pub struct StageRun {
    /// The compiled stage.
    pub compiled: CompiledKernel,
    /// Interpreter event counts for this stage.
    pub stats: ExecStats,
}

/// A complete kernel execution.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Final output (of the last stage).
    pub output: KernelOutput,
    /// Per-stage compiled kernels and statistics, in execution order.
    pub stages: Vec<StageRun>,
}

impl KernelResult {
    /// Sum of generated Spatial LoC across stages (Table 3's "Spatial").
    pub fn spatial_loc(&self) -> usize {
        self.stages.iter().map(|s| s.compiled.spatial_loc()).sum()
    }

    /// Merged statistics across stages.
    pub fn total_stats(&self) -> ExecStats {
        let mut total = ExecStats::default();
        for s in &self.stages {
            merge_stats(&mut total, &s.stats);
        }
        total
    }
}

/// Accumulates `from` into `into`, field by field — the stage-stats
/// merge behind [`KernelResult::total_stats`], public so executors
/// that drive stages themselves (the serving layer) can aggregate
/// identically.
pub fn merge_stats(into: &mut ExecStats, from: &ExecStats) {
    for (k, v) in &from.dram_reads {
        *into.dram_reads.entry(k.clone()).or_default() += v;
    }
    for (k, v) in &from.dram_writes {
        *into.dram_writes.entry(k.clone()).or_default() += v;
    }
    into.dram_random_reads += from.dram_random_reads;
    into.dram_random_writes += from.dram_random_writes;
    ExecStats::merge_node(&mut into.node_trips, &from.node_trips);
    ExecStats::merge_node(&mut into.node_dram_read_words, &from.node_dram_read_words);
    ExecStats::merge_node(&mut into.node_dram_write_words, &from.node_dram_write_words);
    into.alu_ops += from.alu_ops;
    into.sram_reads += from.sram_reads;
    into.sram_writes += from.sram_writes;
    into.shuffle_accesses += from.shuffle_accesses;
    into.fifo_enqs += from.fifo_enqs;
    into.fifo_deqs += from.fifo_deqs;
    into.scan_bits += from.scan_bits;
    into.scan_emits += from.scan_emits;
    into.bv_gen_bits += from.bv_gen_bits;
    into.reduce_elems += from.reduce_elems;
}

impl Kernel {
    /// Compiles every stage with size hints derived from `inputs`, using
    /// conservative union/intersection bounds for stage outputs.
    ///
    /// # Errors
    ///
    /// Returns the first [`CompileError`].
    pub fn compile(
        &self,
        inputs: &HashMap<String, TensorData>,
    ) -> Result<Vec<CompiledKernel>, CompileError> {
        self.compile_with(inputs, None)
    }

    /// Like [`Kernel::compile`], but shares linked Spatial artifacts
    /// through `cache` — sweeping one kernel across datasets or memory
    /// models re-binds machines without re-linking identical programs.
    ///
    /// # Errors
    ///
    /// Returns the first [`CompileError`].
    pub fn compile_cached(
        &self,
        inputs: &HashMap<String, TensorData>,
        cache: &ProgramCache,
    ) -> Result<Vec<CompiledKernel>, CompileError> {
        self.compile_with(inputs, Some(cache))
    }

    fn compile_with(
        &self,
        inputs: &HashMap<String, TensorData>,
        cache: Option<&ProgramCache>,
    ) -> Result<Vec<CompiledKernel>, CompileError> {
        let mut compiled = Vec::with_capacity(self.stages.len());
        let mut known = inputs.clone();
        for stage in &self.stages {
            let hints = stage_hints(stage, &known)?;
            let kernel = match cache {
                Some(cache) => Compiler::compile_cached(&stage.program, &stage.stmt, hints, cache)?,
                None => Compiler::compile(&stage.program, &stage.stmt, hints)?,
            };
            compiled.push(kernel);
            // Later stages size against a bound for this stage's output;
            // record a placeholder so hint derivation can see it.
            known.insert(stage.program.output().to_string(), TensorData::Scalar(0.0));
        }
        Ok(compiled)
    }

    /// Compiles and executes all stages, threading stage outputs into the
    /// inputs of later stages.
    ///
    /// # Errors
    ///
    /// Returns the first compile or simulation error.
    pub fn run(&self, inputs: &HashMap<String, TensorData>) -> Result<KernelResult, CompileError> {
        self.run_with(inputs, None)
    }

    /// Like [`Kernel::run`], but shares linked Spatial artifacts through
    /// `cache` (see [`Kernel::compile_cached`]).
    ///
    /// # Errors
    ///
    /// Returns the first compile or simulation error.
    pub fn run_cached(
        &self,
        inputs: &HashMap<String, TensorData>,
        cache: &ProgramCache,
    ) -> Result<KernelResult, CompileError> {
        self.run_with(inputs, Some(cache))
    }

    /// Like [`Kernel::run_cached`], but binds every stage through
    /// `images`: each stage's dataset is baked into an `Arc`-shared
    /// [`stardust_spatial::DramImage`] on first sight (keyed by the
    /// stage's compiled program and the content hash of its inputs),
    /// and later runs re-bind in O(outputs) with no per-element input
    /// conversion or copy. Results are byte-identical to
    /// [`Kernel::run_cached`].
    ///
    /// # Errors
    ///
    /// Returns the first compile or simulation error.
    pub fn run_images(
        &self,
        inputs: &HashMap<String, TensorData>,
        cache: &ProgramCache,
        images: &ImageCache,
    ) -> Result<KernelResult, CompileError> {
        self.run_with_impl(inputs, Some(cache), Some((images, None)))
    }

    /// [`Kernel::run_images`] on pooled machines: every stage checks a
    /// recycled [`stardust_spatial::Machine`] out of `pool` (reset +
    /// image re-bind, no arena allocation) instead of constructing a
    /// fresh one. The full serving path for sweeps: compile once per
    /// program ([`ProgramCache`]), convert once per dataset
    /// ([`ImageCache`]), allocate once per (thread, program)
    /// ([`stardust_spatial::MachinePool`]). Results are byte-identical
    /// to [`Kernel::run_cached`].
    ///
    /// # Errors
    ///
    /// Returns the first compile or simulation error.
    pub fn run_pooled(
        &self,
        inputs: &HashMap<String, TensorData>,
        cache: &ProgramCache,
        images: &ImageCache,
        pool: &MachinePool,
    ) -> Result<KernelResult, CompileError> {
        self.run_pooled_budgeted(inputs, cache, images, pool, &RunBudget::unlimited())
    }

    /// [`Kernel::run_pooled`] with every stage run under `budget`: the
    /// serving-layer entry point. Runaway stages abort with
    /// [`CompileError::Execution`]`(`[`stardust_spatial::RunError::BudgetExceeded`]`)`
    /// instead of hanging, contained panics surface as
    /// [`CompileError::ExecutionPanic`], and transient failures are
    /// retried once on a fresh machine (see [`recovery_stats`]).
    ///
    /// # Errors
    ///
    /// Returns the first compile or simulation error, after the retry
    /// policy has been exhausted.
    pub fn run_pooled_budgeted(
        &self,
        inputs: &HashMap<String, TensorData>,
        cache: &ProgramCache,
        images: &ImageCache,
        pool: &MachinePool,
        budget: &RunBudget,
    ) -> Result<KernelResult, CompileError> {
        self.run_with_impl(
            inputs,
            Some(cache),
            Some((
                images,
                Some(PoolExec {
                    pool,
                    budget,
                    shards: 1,
                    capacity: None,
                }),
            )),
        )
    }

    /// [`Kernel::run_pooled_budgeted`] with intra-kernel parallelism:
    /// every stage whose outer loop proves shardable is split into
    /// `shards` contiguous slices run concurrently on pooled machines
    /// sharing one image (results bitwise identical to serial — the
    /// shard property suite and the sweep binary's hard gate hold it
    /// there); stages that are [`stardust_spatial::NotShardable`] run
    /// on the serial pooled path. `capacity` bounds total machine
    /// checkouts — when the pool is busier than that, a stage degrades
    /// to fewer workers (round-robin) instead of blocking. `shards <=
    /// 1` is exactly [`Kernel::run_pooled_budgeted`].
    ///
    /// # Errors
    ///
    /// Returns the first compile or simulation error, after the retry
    /// policy has been exhausted.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded(
        &self,
        inputs: &HashMap<String, TensorData>,
        cache: &ProgramCache,
        images: &ImageCache,
        pool: &MachinePool,
        budget: &RunBudget,
        shards: usize,
        capacity: Option<u64>,
    ) -> Result<KernelResult, CompileError> {
        self.run_with_impl(
            inputs,
            Some(cache),
            Some((
                images,
                Some(PoolExec {
                    pool,
                    budget,
                    shards,
                    capacity,
                }),
            )),
        )
    }

    fn run_with(
        &self,
        inputs: &HashMap<String, TensorData>,
        cache: Option<&ProgramCache>,
    ) -> Result<KernelResult, CompileError> {
        self.run_with_impl(inputs, cache, None)
    }

    fn run_with_impl(
        &self,
        inputs: &HashMap<String, TensorData>,
        cache: Option<&ProgramCache>,
        images: Option<(&ImageCache, Option<PoolExec<'_>>)>,
    ) -> Result<KernelResult, CompileError> {
        let mut available = inputs.clone();
        let mut stages = Vec::with_capacity(self.stages.len());
        let mut last_output = None;
        for stage in &self.stages {
            let hints = stage_hints(stage, &available)?;
            let compiled = match cache {
                Some(cache) => Compiler::compile_cached(&stage.program, &stage.stmt, hints, cache)?,
                None => Compiler::compile(&stage.program, &stage.stmt, hints)?,
            };
            let run = match images {
                Some((images, pool)) => {
                    // Stage identity is carried by the compiled program
                    // (distinct per stage) plus the content hash of the
                    // stage's inputs; intermediates are deterministic
                    // per dataset, keeping their cached images valid.
                    let image = images.get_or_build(&compiled, &available)?;
                    match pool {
                        Some(exec) => run_stage_pooled(&compiled, &image, exec)?,
                        None => compiled.execute_image(&image)?,
                    }
                }
                None => compiled.execute(&available)?,
            };
            if let KernelOutput::Tensor(t) = &run.output {
                available.insert(
                    stage.program.output().to_string(),
                    TensorData::Sparse(t.clone()),
                );
            }
            last_output = Some(run.output);
            stages.push(StageRun {
                compiled,
                stats: run.stats,
            });
        }
        let output = last_output
            .ok_or_else(|| CompileError::Schedule("kernel has no stages to run".into()))?;
        Ok(KernelResult { output, stages })
    }
}

/// Size hints for a stage: exact level sizes for available inputs, plus a
/// sum-of-inputs bound for the stage's own output (unions can at most
/// concatenate operand coordinates; intersections and mirrors are smaller).
///
/// Public because any executor that compiles stages itself must derive
/// hints from the *actual* tensors available at that stage — including
/// real intermediate outputs — to compile the same programs
/// [`Kernel::run`] would; hints from placeholders produce different
/// DRAM sizing and therefore different (non-comparable) stats.
pub fn stage_hints(
    stage: &crate::defs::Stage,
    available: &HashMap<String, TensorData>,
) -> Result<SizeHints, CompileError> {
    let mut hints = Compiler::hints_from_inputs(available, &[]);
    let out = stage.program.output();
    let out_decl = stage
        .program
        .decl(out)
        .ok_or_else(|| CompileError::UndeclaredTensor(out.to_string()))?;
    if out_decl.is_scalar() {
        return Ok(hints);
    }
    // Bound each compressed output level by the sum of the inputs' sizes at
    // the same level (falling back to dense).
    let inputs: Vec<&SparseTensor<f64>> = stage
        .program
        .decls()
        .filter(|d| d.name != out && !d.format.region().is_on_chip())
        .filter_map(|d| match available.get(&d.name) {
            Some(TensorData::Sparse(t)) => Some(t),
            _ => None,
        })
        .collect();
    let mut prev_positions = 1usize;
    for (l, f) in out_decl.format.levels().iter().enumerate() {
        let dim = out_decl.dims[out_decl.format.mode_order()[l]];
        if f.is_compressed() {
            let mut bound = 0usize;
            for t in &inputs {
                if l < t.format().rank() && t.format().level(l).is_compressed() {
                    bound += t.crd(l).len();
                }
            }
            if bound == 0 {
                bound = prev_positions * dim;
            }
            bound = bound.min(prev_positions * dim).max(1);
            hints.set_level_nnz(out, l, bound);
            prev_positions = bound;
        } else {
            prev_positions *= dim;
        }
    }
    hints.set_vals_len(out, prev_positions.max(1));
    Ok(hints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs;
    use stardust_datasets::{random_matrix, random_vector};
    use stardust_tensor::Format;

    #[test]
    fn spmv_runs_end_to_end() {
        let k = defs::spmv(16);
        let a = random_matrix(16, 16, 0.25, 1);
        let x = random_vector(16, 2);
        let mut inputs = HashMap::new();
        inputs.insert("A".into(), TensorData::from_coo(&a, Format::csr()));
        inputs.insert("x".into(), TensorData::from_coo(&x, Format::dense_vec()));
        let result = k.run(&inputs).unwrap();
        assert!(result.spatial_loc() > 10);
        assert!(result.total_stats().total_dram_read_words() > 0);
    }

    #[test]
    fn image_bound_run_matches_direct_run() {
        let k = defs::spmv(16);
        let a = random_matrix(16, 16, 0.25, 1);
        let x = random_vector(16, 2);
        let mut inputs = HashMap::new();
        inputs.insert("A".into(), TensorData::from_coo(&a, Format::csr()));
        inputs.insert("x".into(), TensorData::from_coo(&x, Format::dense_vec()));
        let cache = stardust_spatial::ProgramCache::new();
        let images = ImageCache::new();
        let direct = k.run_cached(&inputs, &cache).unwrap();
        // Two image runs: the second re-binds the cached image.
        for _ in 0..2 {
            let via_image = k.run_images(&inputs, &cache, &images).unwrap();
            assert_eq!(direct.total_stats(), via_image.total_stats());
            let d = direct.output.to_dense();
            let i = via_image.output.to_dense();
            assert!(d.approx_eq(&i).is_ok());
        }
        assert_eq!(images.len(), k.stages.len());
    }

    #[test]
    fn pooled_run_matches_direct_run() {
        let k = defs::spmv(16);
        let a = random_matrix(16, 16, 0.25, 1);
        let x = random_vector(16, 2);
        let mut inputs = HashMap::new();
        inputs.insert("A".into(), TensorData::from_coo(&a, Format::csr()));
        inputs.insert("x".into(), TensorData::from_coo(&x, Format::dense_vec()));
        let cache = stardust_spatial::ProgramCache::new();
        let images = ImageCache::new();
        let pool = MachinePool::with_shards(1);
        let direct = k.run_cached(&inputs, &cache).unwrap();
        // Two pooled runs: the second reuses both the cached image and
        // the pooled machine.
        for _ in 0..2 {
            let pooled = k.run_pooled(&inputs, &cache, &images, &pool).unwrap();
            assert_eq!(direct.total_stats(), pooled.total_stats());
            let d = direct.output.to_dense();
            let p = pooled.output.to_dense();
            assert!(d.approx_eq(&p).is_ok());
        }
        let stats = pool.stats();
        assert_eq!(stats.created as usize, k.stages.len());
        assert_eq!(stats.reused as usize, k.stages.len());
    }

    /// The serving-layer recovery policy end to end: a one-shot
    /// injected error or contained panic quarantines the faulted
    /// machine and is retried once on a fresh one — producing output
    /// identical to a never-faulted run — while a deterministic budget
    /// abort is surfaced immediately with no retry.
    #[test]
    fn pooled_run_retries_transient_faults_and_matches_clean_run() {
        use stardust_spatial::{faults, FaultPlan, RunError};

        let k = defs::spmv(16);
        let a = random_matrix(16, 16, 0.25, 1);
        let x = random_vector(16, 2);
        let mut inputs = HashMap::new();
        inputs.insert("A".into(), TensorData::from_coo(&a, Format::csr()));
        inputs.insert("x".into(), TensorData::from_coo(&x, Format::dense_vec()));
        let cache = stardust_spatial::ProgramCache::new();
        let images = ImageCache::new();
        let pool = MachinePool::with_shards(1);

        let clean = k.run_pooled(&inputs, &cache, &images, &pool).unwrap();
        let before = recovery_stats();
        let quarantined_before = pool.stats().quarantined;

        // A one-shot injected error: first attempt faults (machine
        // quarantined), the retry on a fresh machine succeeds, and the
        // recovered output is identical to the clean run.
        let plan = FaultPlan {
            error_at_step: Some(2),
            ..FaultPlan::default()
        };
        let recovered = faults::with_plan(plan, || {
            k.run_pooled(&inputs, &cache, &images, &pool)
                .expect("retry must recover the injected error")
        });
        assert_eq!(clean.total_stats(), recovered.total_stats());
        assert!(clean
            .output
            .to_dense()
            .approx_eq(&recovered.output.to_dense())
            .is_ok());
        let after = recovery_stats();
        assert_eq!(after.retried, before.retried + 1, "no retry recorded");
        assert_eq!(
            after.aborted, before.aborted,
            "recovered run counted as abort"
        );
        assert_eq!(
            pool.stats().quarantined,
            quarantined_before + 1,
            "faulted machine not quarantined"
        );

        // A contained panic takes the same path.
        let plan = FaultPlan {
            panic_at_step: Some(2),
            ..FaultPlan::default()
        };
        let recovered = faults::with_plan(plan, || {
            k.run_pooled(&inputs, &cache, &images, &pool)
                .expect("retry must recover the contained panic")
        });
        assert_eq!(clean.total_stats(), recovered.total_stats());
        assert_eq!(recovery_stats().retried, before.retried + 2);

        // Budget exhaustion is deterministic: surfaced as a structured
        // error, counted as an abort, never retried.
        let tiny = RunBudget::default().with_max_steps(1);
        let err = k
            .run_pooled_budgeted(&inputs, &cache, &images, &pool, &tiny)
            .expect_err("a 1-step budget cannot cover SpMV");
        assert!(
            matches!(
                err,
                CompileError::Execution(RunError::BudgetExceeded { .. })
            ),
            "wrong abort error: {err:?}"
        );
        let final_stats = recovery_stats();
        assert_eq!(
            final_stats.retried,
            before.retried + 2,
            "deterministic budget abort must not be retried"
        );
        assert_eq!(final_stats.aborted, before.aborted + 1);
    }
}
