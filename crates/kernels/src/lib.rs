//! The benchmark kernel suite of the paper's Table 3.
//!
//! Ten sparse tensor algebra expressions — SpMV, Plus3, SDDMM,
//! MatTransMul, Residual, TTV, TTM, MTTKRP, InnerProd, Plus2 — each with
//! the formats of §8.1 (CSR/CSC for matrices, CSF for most 3-tensors, the
//! CSR-like uncompressed-compressed-compressed format for InnerProd and
//! Plus2, dense operands for SDDMM/MTTKRP) and a schedule exercising the
//! paper's scheduling language: `environment` parallelization factors,
//! on-chip `precompute` staging, and `accelerate`d reductions.
//!
//! Plus3 is mapped as an *iterated two-input addition* (§8.1: mapping it
//! natively would only use half of Capstan at a time), which is why a
//! [`Kernel`] is a sequence of [`Stage`]s.

pub mod defs;
pub mod runner;

pub use defs::{
    innerprod, mattransmul, mttkrp, plus2, plus3, residual, sddmm, spmv, suite, ttm, ttv, Kernel,
    Stage,
};
pub use runner::{merge_stats, recovery_stats, stage_hints, KernelResult, RecoveryStats, StageRun};
