//! Kernel definitions: expression, formats, and schedule per Table 3.

use stardust_core::{Program, ProgramBuilder, Scheduler};
use stardust_ir::cin::{PatternFn, Stmt};
use stardust_ir::expr::Expr;
use stardust_tensor::Format;

/// One compilation unit: a program plus its scheduled CIN.
#[derive(Debug, Clone)]
pub struct Stage {
    /// The input program (declarations + expression + recorded schedule
    /// lines).
    pub program: Program,
    /// The scheduled CIN statement.
    pub stmt: Stmt,
}

/// A named kernel: one or more stages executed in sequence (stage outputs
/// feed same-named inputs of later stages).
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name as used in the paper's tables.
    pub name: String,
    /// The stages, in execution order.
    pub stages: Vec<Stage>,
    /// The outer parallelization factor reported in Table 5 ("Par").
    pub table5_par: usize,
}

impl Kernel {
    /// Total input lines of code across stages, as Table 3 counts them.
    pub fn input_loc(&self) -> usize {
        // Multi-stage kernels share declarations; count the first stage
        // fully and only the expression lines of later stages.
        let first = self.stages[0].program.input_loc();
        let rest: usize = self.stages[1..].iter().map(|_| 1).sum();
        first + rest
    }

    /// The final stage's output tensor name.
    pub fn output(&self) -> &str {
        self.stages
            .last()
            .expect("at least one stage")
            .program
            .output()
    }
}

fn accelerate_reduction_schedule(s: &mut Scheduler<'_>, inner_par: i64, outer_par: i64) {
    s.environment("innerPar", inner_par).expect("innerPar");
    s.environment("outerPar", outer_par).expect("outerPar");
    s.precompute_reduction("ws").expect("precompute ws");
    s.accelerate_reduction("ws", PatternFn::Reduction)
        .expect("accelerate");
}

/// SpMV: `y(i) = A(i,j) * x(j)` with CSR `A` (Table 5: par 16).
///
/// The schedule stages `x` on-chip (it is gathered through the shuffle
/// network, the behaviour §8.3 contrasts with the handwritten kernel's
/// vector duplication) and accelerates the row reduction.
pub fn spmv(n: usize) -> Kernel {
    let mut p = ProgramBuilder::new("spmv")
        .tensor("A", vec![n, n], Format::csr())
        .tensor("x", vec![n], Format::dense_vec())
        .tensor("y", vec![n], Format::dense_vec())
        .expr("y(i) = A(i,j) * x(j)")
        .build()
        .expect("spmv builds");
    let mut s = Scheduler::new(&mut p);
    s.precompute(&Expr::access("x", vec!["j".into()]), &["j"], "x_on")
        .expect("stage x");
    accelerate_reduction_schedule(&mut s, 16, 16);
    let stmt = s.finish();
    Kernel {
        name: "SpMV".into(),
        stages: vec![Stage { program: p, stmt }],
        table5_par: 16,
    }
}

/// Plus3: `A(i,j) = B(i,j) + C(i,j) + D(i,j)`, all CSR, mapped as an
/// iterated two-input addition (§8.1; Table 5: par 8).
pub fn plus3(n: usize) -> Kernel {
    let stage = |name: &str, lhs: &str, in1: &str, in2: &str| -> Stage {
        let mut p = ProgramBuilder::new(name)
            .tensor(lhs, vec![n, n], Format::csr())
            .tensor(in1, vec![n, n], Format::csr())
            .tensor(in2, vec![n, n], Format::csr())
            .expr(&format!("{lhs}(i,j) = {in1}(i,j) + {in2}(i,j)"))
            .build()
            .expect("plus3 stage builds");
        let mut s = Scheduler::new(&mut p);
        s.environment("innerPar", 16).expect("innerPar");
        s.environment("outerPar", 8).expect("outerPar");
        let stmt = s.finish();
        Stage { program: p, stmt }
    };
    Kernel {
        name: "Plus3".into(),
        stages: vec![
            stage("plus3_t", "T", "B", "C"),
            stage("plus3_a", "A", "T", "D"),
        ],
        table5_par: 8,
    }
}

/// SDDMM: `A(i,j) = B(i,j) * C(i,k) * D(k,j)` with CSR `A`/`B`, dense
/// row-major `C`, dense column-major `D` (Fig. 5; Table 5: par 12).
pub fn sddmm(n: usize, k: usize) -> Kernel {
    let mut p = ProgramBuilder::new("sddmm")
        .tensor("A", vec![n, n], Format::csr())
        .tensor("B", vec![n, n], Format::csr())
        .tensor("C", vec![n, k], Format::dense(2))
        .tensor("D", vec![k, n], Format::dense_col_major())
        .expr("A(i,j) = B(i,j) * C(i,k) * D(k,j)")
        .build()
        .expect("sddmm builds");
    let mut s = Scheduler::new(&mut p);
    s.precompute(
        &Expr::access("C", vec!["i".into(), "k".into()]),
        &["k"],
        "C_on",
    )
    .expect("stage C row");
    s.precompute(
        &Expr::access("D", vec!["k".into(), "j".into()]),
        &["k"],
        "D_on",
    )
    .expect("stage D column");
    accelerate_reduction_schedule(&mut s, 16, 12);
    let stmt = s.finish();
    Kernel {
        name: "SDDMM".into(),
        stages: vec![Stage { program: p, stmt }],
        table5_par: 12,
    }
}

/// MatTransMul: `y(i) = alpha * A(j,i) * x(j) + beta * z(i)` with CSC `A`
/// (Table 5: par 16).
pub fn mattransmul(n: usize) -> Kernel {
    let mut p = ProgramBuilder::new("mattransmul")
        .tensor("A", vec![n, n], Format::csc())
        .tensor("x", vec![n], Format::dense_vec())
        .tensor("z", vec![n], Format::dense_vec())
        .tensor("y", vec![n], Format::dense_vec())
        .scalar("alpha")
        .scalar("beta")
        .expr("y(i) = alpha * A(j,i) * x(j) + beta * z(i)")
        .build()
        .expect("mattransmul builds");
    let mut s = Scheduler::new(&mut p);
    s.precompute(&Expr::access("x", vec!["j".into()]), &["j"], "x_on")
        .expect("stage x");
    s.precompute(&Expr::access("z", vec!["i".into()]), &["i"], "z_on")
        .expect("stage z");
    accelerate_reduction_schedule(&mut s, 16, 16);
    let stmt = s.finish();
    Kernel {
        name: "MatTransMul".into(),
        stages: vec![Stage { program: p, stmt }],
        table5_par: 16,
    }
}

/// Residual: `y(i) = b(i) - A(i,j) * x(j)` with CSR `A` (Table 5: par 16).
pub fn residual(n: usize) -> Kernel {
    let mut p = ProgramBuilder::new("residual")
        .tensor("A", vec![n, n], Format::csr())
        .tensor("x", vec![n], Format::dense_vec())
        .tensor("b", vec![n], Format::dense_vec())
        .tensor("y", vec![n], Format::dense_vec())
        .expr("y(i) = b(i) - A(i,j) * x(j)")
        .build()
        .expect("residual builds");
    let mut s = Scheduler::new(&mut p);
    s.precompute(&Expr::access("x", vec!["j".into()]), &["j"], "x_on")
        .expect("stage x");
    s.precompute(&Expr::access("b", vec!["i".into()]), &["i"], "b_on")
        .expect("stage b");
    accelerate_reduction_schedule(&mut s, 16, 16);
    let stmt = s.finish();
    Kernel {
        name: "Residual".into(),
        stages: vec![Stage { program: p, stmt }],
        table5_par: 16,
    }
}

/// TTV: `A(i,j) = B(i,j,k) * c(k)` with CSF `B`, CSR `A` (Table 5: par 16).
pub fn ttv(d0: usize, d1: usize, d2: usize) -> Kernel {
    let mut p = ProgramBuilder::new("ttv")
        .tensor("A", vec![d0, d1], Format::csr())
        .tensor("B", vec![d0, d1, d2], Format::csf(3))
        .tensor("c", vec![d2], Format::dense_vec())
        .expr("A(i,j) = B(i,j,k) * c(k)")
        .build()
        .expect("ttv builds");
    let mut s = Scheduler::new(&mut p);
    s.precompute(&Expr::access("c", vec!["k".into()]), &["k"], "c_on")
        .expect("stage c");
    accelerate_reduction_schedule(&mut s, 16, 16);
    let stmt = s.finish();
    Kernel {
        name: "TTV".into(),
        stages: vec![Stage { program: p, stmt }],
        table5_par: 16,
    }
}

/// TTM: `A(i,j,k) = B(i,j,l) * C(k,l)` with CSF `B`; the output keeps `B`'s
/// `(i,j)` sparsity over a dense mode-`k` fiber (Table 5: par 12). The
/// schedule materializes each output fiber in an on-chip row workspace
/// (`precompute_reduction_into`), so the contraction accumulates on-chip
/// and the fiber streams out once.
pub fn ttm(d0: usize, d1: usize, d2: usize, k: usize) -> Kernel {
    use stardust_tensor::LevelFormat;
    let out_fmt = Format::new(vec![
        LevelFormat::Dense,
        LevelFormat::Compressed,
        LevelFormat::Dense,
    ]);
    let mut p = ProgramBuilder::new("ttm")
        .tensor("A", vec![d0, d1, k], out_fmt)
        .tensor("B", vec![d0, d1, d2], Format::csf(3))
        .tensor("C", vec![k, d2], Format::dense(2))
        .expr("A(i,j,k) = B(i,j,l) * C(k,l)")
        .build()
        .expect("ttm builds");
    let mut s = Scheduler::new(&mut p);
    s.environment("innerPar", 16).expect("innerPar");
    s.environment("outerPar", 12).expect("outerPar");
    s.precompute_reduction_into("ws", &["k"])
        .expect("row workspace");
    let stmt = s.finish();
    Kernel {
        name: "TTM".into(),
        stages: vec![Stage { program: p, stmt }],
        table5_par: 12,
    }
}

/// MTTKRP: `A(i,j) = B(i,k,l) * C(j,k) * D(j,l)` with CSF `B`, dense
/// factor matrices, dense output (Table 5: par 8). The loop order is
/// `i,k,l,j` so the factor matrices stream column slices, and the output
/// row accumulates in an on-chip workspace.
pub fn mttkrp(d0: usize, d1: usize, d2: usize, j: usize) -> Kernel {
    let mut p = ProgramBuilder::new("mttkrp")
        .tensor("A", vec![d0, j], Format::dense(2))
        .tensor("B", vec![d0, d1, d2], Format::csf(3))
        .tensor("C", vec![j, d1], Format::dense_col_major())
        .tensor("D", vec![j, d2], Format::dense_col_major())
        .expr("A(i,j) = B(i,k,l) * C(j,k) * D(j,l)")
        .build()
        .expect("mttkrp builds");
    let mut s = Scheduler::new(&mut p);
    s.environment("innerPar", 16).expect("innerPar");
    s.environment("outerPar", 8).expect("outerPar");
    s.reorder(&["i", "k", "l", "j"]).expect("reorder");
    s.precompute_reduction_into("ws", &["j"])
        .expect("row workspace");
    s.precompute(
        &Expr::access("C", vec!["j".into(), "k".into()]),
        &["j"],
        "C_col",
    )
    .expect("stage C column");
    s.precompute(
        &Expr::access("D", vec!["j".into(), "l".into()]),
        &["j"],
        "D_col",
    )
    .expect("stage D column");
    let stmt = s.finish();
    Kernel {
        name: "MTTKRP".into(),
        stages: vec![Stage { program: p, stmt }],
        table5_par: 8,
    }
}

/// InnerProd: `alpha = B(i,j,k) * C(i,j,k)` with
/// uncompressed-compressed-compressed inputs (Table 5: par 8).
pub fn innerprod(d0: usize, d1: usize, d2: usize) -> Kernel {
    let mut p = ProgramBuilder::new("innerprod")
        .scalar("alpha")
        .tensor("B", vec![d0, d1, d2], Format::ucc())
        .tensor("C", vec![d0, d1, d2], Format::ucc())
        .expr("alpha = B(i,j,k) * C(i,j,k)")
        .build()
        .expect("innerprod builds");
    let mut s = Scheduler::new(&mut p);
    s.environment("innerPar", 16).expect("innerPar");
    s.environment("outerPar", 8).expect("outerPar");
    s.precompute_reduction("ws").expect("precompute ws");
    s.accelerate_reduction("ws", PatternFn::Reduction)
        .expect("accelerate");
    let stmt = s.finish();
    Kernel {
        name: "InnerProd".into(),
        stages: vec![Stage { program: p, stmt }],
        table5_par: 8,
    }
}

/// Plus2: `A(i,j,k) = B(i,j,k) + C(i,j,k)` with UCC formats. The nested
/// union output streams sequentially, which is why the paper reports
/// par 1 and the lowest resource use (Table 5).
pub fn plus2(d0: usize, d1: usize, d2: usize) -> Kernel {
    let mut p = ProgramBuilder::new("plus2")
        .tensor("A", vec![d0, d1, d2], Format::ucc())
        .tensor("B", vec![d0, d1, d2], Format::ucc())
        .tensor("C", vec![d0, d1, d2], Format::ucc())
        .expr("A(i,j,k) = B(i,j,k) + C(i,j,k)")
        .build()
        .expect("plus2 builds");
    let mut s = Scheduler::new(&mut p);
    s.environment("innerPar", 16).expect("innerPar");
    s.environment("outerPar", 1).expect("outerPar");
    let stmt = s.finish();
    Kernel {
        name: "Plus2".into(),
        stages: vec![Stage { program: p, stmt }],
        table5_par: 1,
    }
}

/// The full Table 3 suite at CI-friendly dimensions.
pub fn suite(n: usize, t3: usize, rank: usize) -> Vec<Kernel> {
    vec![
        spmv(n),
        plus3(n),
        sddmm(n, rank.max(4)),
        mattransmul(n),
        residual(n),
        ttv(t3, t3, t3),
        ttm(t3, t3, t3, rank.max(4)),
        mttkrp(t3, t3, t3, rank.max(4)),
        innerprod(t3, t3, t3),
        plus2(t3, t3, t3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_build() {
        let kernels = suite(16, 8, 4);
        assert_eq!(kernels.len(), 10);
        let names: Vec<_> = kernels.iter().map(|k| k.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "SpMV",
                "Plus3",
                "SDDMM",
                "MatTransMul",
                "Residual",
                "TTV",
                "TTM",
                "MTTKRP",
                "InnerProd",
                "Plus2"
            ]
        );
    }

    #[test]
    fn plus3_has_two_stages() {
        let k = plus3(16);
        assert_eq!(k.stages.len(), 2);
        assert_eq!(k.output(), "A");
        assert_eq!(k.stages[0].program.output(), "T");
    }

    #[test]
    fn spmv_input_loc_matches_paper_scale() {
        // The paper reports 10 input LoC for SpMV (3 formats + 2 algorithm
        // + 4 schedule + 1 output); ours counts declarations, the
        // expression, schedule lines, and the compile call.
        let k = spmv(16);
        let loc = k.input_loc();
        assert!((5..=12).contains(&loc), "got {loc}");
    }

    #[test]
    fn schedules_record_map_nodes() {
        let k = sddmm(16, 8);
        let txt = k.stages[0].stmt.to_string();
        assert!(txt.contains("map("));
        assert!(txt.contains("where"));
        assert!(txt.contains("innerPar = 16"));
    }

    #[test]
    fn table5_par_factors() {
        assert_eq!(spmv(8).table5_par, 16);
        assert_eq!(plus3(8).table5_par, 8);
        assert_eq!(sddmm(8, 4).table5_par, 12);
        assert_eq!(plus2(8, 8, 8).table5_par, 1);
    }
}
