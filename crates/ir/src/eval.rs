//! Executable semantics for CIN: the workspace-wide correctness oracle.
//!
//! [`eval`] runs any (possibly scheduled) CIN statement against real dense
//! tensors. It implements the dense semantics of concrete index notation —
//! every `∀` iterates its variable's full extent, `where` producers
//! materialize zero-initialized temporaries, and `s.t.` relations let
//! derived loop variables (from `split`/`fuse`) be mapped back to the
//! original variables of the accesses. Every scheduling transformation and
//! every lowered kernel in the workspace is validated against this
//! evaluator.

use std::collections::HashMap;

use stardust_tensor::DenseTensor;

use crate::cin::{AssignOp, Stmt};
use crate::error::IrError;
use crate::expr::{Access, Expr, IndexVar};
use crate::relations::IndexSpace;

/// The tensors a CIN statement executes against.
///
/// # Example
///
/// ```
/// use stardust_ir::{eval, EvalContext, parse_assignment, Stmt};
/// use stardust_tensor::DenseTensor;
///
/// let (a, _) = parse_assignment("y(i) = A(i,j) * x(j)").unwrap();
/// let stmt = Stmt::from_assignment(&a);
///
/// let mut ctx = EvalContext::new();
/// ctx.add_tensor("A", DenseTensor::from_data(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]));
/// ctx.add_tensor("x", DenseTensor::from_data(vec![2], vec![1.0, 1.0]));
/// ctx.add_tensor("y", DenseTensor::zeros(vec![2]));
/// eval(&stmt, &mut ctx).unwrap();
/// assert_eq!(ctx.tensor("y").unwrap().data(), &[3.0, 7.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EvalContext {
    tensors: HashMap<String, DenseTensor<f64>>,
}

impl EvalContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        EvalContext::default()
    }

    /// Registers a tensor under `name` (replacing any previous binding).
    pub fn add_tensor(&mut self, name: impl Into<String>, t: DenseTensor<f64>) {
        self.tensors.insert(name.into(), t);
    }

    /// Registers a scalar as a rank-1, size-1 tensor (the representation
    /// CIN scalar accesses read).
    pub fn add_scalar(&mut self, name: impl Into<String>, v: f64) {
        self.add_tensor(name, DenseTensor::from_data(vec![1], vec![v]));
    }

    /// Looks up a tensor.
    pub fn tensor(&self, name: &str) -> Option<&DenseTensor<f64>> {
        self.tensors.get(name)
    }

    /// Reads a scalar registered with [`EvalContext::add_scalar`].
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.tensors.get(name).map(|t| t.data()[0])
    }

    /// Zeroes a tensor in place (no-op when absent).
    pub fn zero(&mut self, name: &str) {
        if let Some(t) = self.tensors.get_mut(name) {
            t.data_mut().fill(0.0);
        }
    }

    /// All registered tensor names.
    pub fn names(&self) -> Vec<&str> {
        self.tensors.keys().map(String::as_str).collect()
    }
}

/// Evaluates a CIN statement against the context, mutating output tensors
/// in place. Temporaries written by the statement but missing from the
/// context are created automatically with dimensions inferred from the
/// index space.
///
/// # Errors
///
/// Returns [`IrError`] when a tensor is referenced with the wrong rank, an
/// index variable has inconsistent or underivable extents, or a read tensor
/// is entirely unknown.
pub fn eval(stmt: &Stmt, ctx: &mut EvalContext) -> Result<(), IrError> {
    let space = build_index_space(stmt, ctx)?;
    materialize_missing(stmt, ctx, &space)?;
    let mut env = HashMap::new();
    exec(stmt, ctx, &space, &mut env)
}

/// Builds the index space of `stmt` given the context's tensor dimensions:
/// root extents come from access positions, relations from `s.t.` nodes.
///
/// # Errors
///
/// Returns [`IrError::InconsistentExtent`] when two accesses disagree on a
/// variable's extent, or [`IrError::InvalidTransform`] on rank mismatches.
pub fn build_index_space(stmt: &Stmt, ctx: &EvalContext) -> Result<IndexSpace, IrError> {
    let mut space = IndexSpace::new();
    for rel in stmt.relations() {
        space.add_relation(rel);
    }
    let mut result = Ok(());
    stmt.visit(&mut |s| {
        if result.is_err() {
            return;
        }
        if let Stmt::Assign { lhs, rhs, .. } = s {
            let mut accesses: Vec<&Access> = vec![lhs];
            accesses.extend(rhs.accesses());
            for a in accesses {
                if let Some(t) = ctx.tensor(&a.tensor) {
                    if a.indices.is_empty() {
                        continue; // scalar access
                    }
                    if a.indices.len() != t.rank() {
                        result = Err(IrError::InvalidTransform(format!(
                            "access {a} has rank {} but tensor has rank {}",
                            a.indices.len(),
                            t.rank()
                        )));
                        return;
                    }
                    for (m, ix) in a.indices.iter().enumerate() {
                        if let Err(e) = space.try_set_extent(ix.clone(), t.dims()[m]) {
                            result = Err(e);
                            return;
                        }
                    }
                }
            }
        }
    });
    result?;
    Ok(space)
}

/// Creates any written-but-unregistered tensors (workspaces) with
/// dimensions inferred from their index variables' extents.
fn materialize_missing(
    stmt: &Stmt,
    ctx: &mut EvalContext,
    space: &IndexSpace,
) -> Result<(), IrError> {
    let mut to_create: Vec<(String, Vec<usize>)> = Vec::new();
    let mut err = None;
    stmt.visit(&mut |s| {
        if err.is_some() {
            return;
        }
        if let Stmt::Assign { lhs, rhs, .. } = s {
            let mut accesses: Vec<&Access> = vec![lhs];
            accesses.extend(rhs.accesses());
            for a in accesses {
                if ctx.tensor(&a.tensor).is_some() || to_create.iter().any(|(n, _)| n == &a.tensor)
                {
                    continue;
                }
                if a.indices.is_empty() {
                    to_create.push((a.tensor.clone(), vec![1]));
                    continue;
                }
                let mut dims = Vec::with_capacity(a.indices.len());
                for ix in &a.indices {
                    match space.extent(ix) {
                        Ok(e) => dims.push(e),
                        Err(e) => {
                            err = Some(e);
                            return;
                        }
                    }
                }
                to_create.push((a.tensor.clone(), dims));
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    for (name, dims) in to_create {
        ctx.add_tensor(name, DenseTensor::zeros(dims));
    }
    Ok(())
}

fn exec(
    stmt: &Stmt,
    ctx: &mut EvalContext,
    space: &IndexSpace,
    env: &mut HashMap<IndexVar, usize>,
) -> Result<(), IrError> {
    match stmt {
        Stmt::Forall { index, body } => {
            let n = space.extent(index)?;
            for v in 0..n {
                env.insert(index.clone(), v);
                exec(body, ctx, space, env)?;
            }
            env.remove(index);
            Ok(())
        }
        Stmt::Assign { lhs, op, rhs } => {
            // Guard: stripmined tails produce reconstructed coordinates
            // beyond the original extent; such iterations are no-ops.
            let mut accesses: Vec<&Access> = vec![lhs];
            accesses.extend(rhs.accesses());
            for a in &accesses {
                for ix in &a.indices {
                    match space.in_bounds(ix, env) {
                        Some(true) => {}
                        Some(false) => return Ok(()),
                        None => {
                            return Err(IrError::UnboundIndexVar(ix.name().to_string()));
                        }
                    }
                }
            }
            let value = eval_expr(rhs, ctx, space, env)?;
            let coords = resolve_coords(lhs, ctx, space, env)?;
            let t = ctx
                .tensors
                .get_mut(&lhs.tensor)
                .ok_or_else(|| IrError::UnknownTensor(lhs.tensor.clone()))?;
            match op {
                AssignOp::Assign => t.set(&coords, value),
                AssignOp::Accumulate => t.add_assign(&coords, value),
            }
            Ok(())
        }
        Stmt::Sequence(stmts) => {
            for s in stmts {
                exec(s, ctx, space, env)?;
            }
            Ok(())
        }
        Stmt::Where { consumer, producer } => {
            // Workspace semantics: producer temporaries are reset on every
            // entry of the where node, then filled, then consumed.
            for out in producer.outputs() {
                ctx.zero(&out);
            }
            exec(producer, ctx, space, env)?;
            exec(consumer, ctx, space, env)
        }
        Stmt::SuchThat { body, .. } => exec(body, ctx, space, env),
        Stmt::Map { body, .. } => exec(body, ctx, space, env),
    }
}

fn resolve_coords(
    access: &Access,
    ctx: &EvalContext,
    space: &IndexSpace,
    env: &HashMap<IndexVar, usize>,
) -> Result<Vec<usize>, IrError> {
    if access.indices.is_empty() {
        // Scalar: stored as a size-1 vector.
        return Ok(vec![0]);
    }
    let _ = ctx;
    access
        .indices
        .iter()
        .map(|ix| {
            space
                .value_of(ix, env)
                .ok_or_else(|| IrError::UnboundIndexVar(ix.name().to_string()))
        })
        .collect()
}

fn eval_expr(
    expr: &Expr,
    ctx: &EvalContext,
    space: &IndexSpace,
    env: &HashMap<IndexVar, usize>,
) -> Result<f64, IrError> {
    match expr {
        Expr::Literal(c) => Ok(*c),
        Expr::Neg(e) => Ok(-eval_expr(e, ctx, space, env)?),
        Expr::Binary { op, lhs, rhs } => Ok(op.apply(
            eval_expr(lhs, ctx, space, env)?,
            eval_expr(rhs, ctx, space, env)?,
        )),
        Expr::Access(a) => {
            let coords = resolve_coords(a, ctx, space, env)?;
            let t = ctx
                .tensor(&a.tensor)
                .ok_or_else(|| IrError::UnknownTensor(a.tensor.clone()))?;
            Ok(t.get(&coords))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cin::Stmt;
    use crate::parse::parse_assignment;
    use crate::relations::Relation;

    fn matrix2x2(vals: [f64; 4]) -> DenseTensor<f64> {
        DenseTensor::from_data(vec![2, 2], vals.to_vec())
    }

    fn eval_str(src: &str, ctx: &mut EvalContext) {
        let (a, _) = parse_assignment(src).unwrap();
        let stmt = Stmt::from_assignment(&a);
        eval(&stmt, ctx).unwrap();
    }

    #[test]
    fn spmv_matches_by_hand() {
        let mut ctx = EvalContext::new();
        ctx.add_tensor("A", matrix2x2([1.0, 2.0, 3.0, 4.0]));
        ctx.add_tensor("x", DenseTensor::from_data(vec![2], vec![5.0, 6.0]));
        ctx.add_tensor("y", DenseTensor::zeros(vec![2]));
        eval_str("y(i) = A(i,j) * x(j)", &mut ctx);
        assert_eq!(ctx.tensor("y").unwrap().data(), &[17.0, 39.0]);
    }

    #[test]
    fn elementwise_add_three() {
        let mut ctx = EvalContext::new();
        ctx.add_tensor("B", matrix2x2([1.0; 4]));
        ctx.add_tensor("C", matrix2x2([2.0; 4]));
        ctx.add_tensor("D", matrix2x2([3.0; 4]));
        ctx.add_tensor("A", DenseTensor::zeros(vec![2, 2]));
        eval_str("A(i,j) = B(i,j) + C(i,j) + D(i,j)", &mut ctx);
        assert_eq!(ctx.tensor("A").unwrap().data(), &[6.0; 4]);
    }

    #[test]
    fn residual_with_subtraction() {
        let mut ctx = EvalContext::new();
        ctx.add_tensor("A", matrix2x2([1.0, 0.0, 0.0, 1.0]));
        ctx.add_tensor("x", DenseTensor::from_data(vec![2], vec![1.0, 2.0]));
        ctx.add_tensor("b", DenseTensor::from_data(vec![2], vec![10.0, 10.0]));
        ctx.add_tensor("y", DenseTensor::zeros(vec![2]));
        eval_str("y(i) = b(i) - A(i,j) * x(j)", &mut ctx);
        assert_eq!(ctx.tensor("y").unwrap().data(), &[9.0, 8.0]);
    }

    #[test]
    fn scalars_participate() {
        let mut ctx = EvalContext::new();
        ctx.add_scalar("alpha", 2.0);
        ctx.add_tensor("x", DenseTensor::from_data(vec![3], vec![1.0, 2.0, 3.0]));
        ctx.add_tensor("y", DenseTensor::zeros(vec![3]));
        eval_str("y(i) = alpha * x(i)", &mut ctx);
        assert_eq!(ctx.tensor("y").unwrap().data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn inner_product_reduces_to_scalar() {
        let mut ctx = EvalContext::new();
        ctx.add_tensor("B", matrix2x2([1.0, 2.0, 3.0, 4.0]));
        ctx.add_tensor("C", matrix2x2([1.0, 1.0, 1.0, 1.0]));
        // Output "a" is a scalar (rank-0 access).
        let (assign, _) = parse_assignment("a = B(i,j) * C(i,j)").unwrap();
        let stmt = Stmt::from_assignment(&assign);
        eval(&stmt, &mut ctx).unwrap();
        assert_eq!(ctx.scalar("a"), Some(10.0));
    }

    #[test]
    fn where_materializes_workspace() {
        // ∀i (a(i) = ws where ws += b(i) rhs) — scalar workspace reduction.
        let (cons, _) = parse_assignment("a(i) = ws").unwrap();
        let consumer = Stmt::Assign {
            lhs: cons.lhs.clone(),
            op: AssignOp::Assign,
            rhs: cons.rhs.clone(),
        };
        let (prod, _) = parse_assignment("ws += B(i,j) * x(j)").unwrap();
        let producer = Stmt::forall(
            "j",
            Stmt::Assign {
                lhs: prod.lhs.clone(),
                op: AssignOp::Accumulate,
                rhs: prod.rhs.clone(),
            },
        );
        let stmt = Stmt::forall("i", Stmt::where_(consumer, producer));

        let mut ctx = EvalContext::new();
        ctx.add_tensor("B", matrix2x2([1.0, 2.0, 3.0, 4.0]));
        ctx.add_tensor("x", DenseTensor::from_data(vec![2], vec![1.0, 1.0]));
        ctx.add_tensor("a", DenseTensor::zeros(vec![2]));
        eval(&stmt, &mut ctx).unwrap();
        // Workspace is reset between i iterations.
        assert_eq!(ctx.tensor("a").unwrap().data(), &[3.0, 7.0]);
    }

    #[test]
    fn split_up_preserves_semantics() {
        let (a, _) = parse_assignment("y(i) = A(i,j) * x(j)").unwrap();
        let leaf = Stmt::Assign {
            lhs: a.lhs.clone(),
            op: AssignOp::Accumulate,
            rhs: a.rhs.clone(),
        };
        // ∀io ∀ii ∀j ... s.t. split_up(i, io, ii, 3)  on extent 4 (tail!)
        let stmt = Stmt::such_that(
            Stmt::foralls(vec!["io".into(), "ii".into(), "j".into()], leaf),
            vec![Relation::SplitUp {
                orig: "i".into(),
                outer: "io".into(),
                inner: "ii".into(),
                factor: 3,
            }],
        );
        let mut ctx = EvalContext::new();
        let a_data: Vec<f64> = (0..16).map(f64::from).collect();
        ctx.add_tensor("A", DenseTensor::from_data(vec![4, 4], a_data));
        ctx.add_tensor("x", DenseTensor::from_data(vec![4], vec![1.0; 4]));
        ctx.add_tensor("y", DenseTensor::zeros(vec![4]));
        eval(&stmt, &mut ctx).unwrap();
        assert_eq!(ctx.tensor("y").unwrap().data(), &[6.0, 22.0, 38.0, 54.0]);
    }

    #[test]
    fn fuse_preserves_semantics() {
        let (a, _) = parse_assignment("A(i,j) = B(i,j) + C(i,j)").unwrap();
        let leaf = Stmt::Assign {
            lhs: a.lhs.clone(),
            op: AssignOp::Assign,
            rhs: a.rhs.clone(),
        };
        let stmt = Stmt::such_that(
            Stmt::forall("f", leaf),
            vec![Relation::Fuse {
                outer: "i".into(),
                inner: "j".into(),
                fused: "f".into(),
            }],
        );
        let mut ctx = EvalContext::new();
        ctx.add_tensor("B", matrix2x2([1.0, 2.0, 3.0, 4.0]));
        ctx.add_tensor("C", matrix2x2([10.0, 20.0, 30.0, 40.0]));
        ctx.add_tensor("A", DenseTensor::zeros(vec![2, 2]));
        eval(&stmt, &mut ctx).unwrap();
        assert_eq!(ctx.tensor("A").unwrap().data(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn missing_read_tensor_errors() {
        let mut ctx = EvalContext::new();
        ctx.add_tensor("y", DenseTensor::zeros(vec![2]));
        let (a, _) = parse_assignment("y(i) = q(i)").unwrap();
        let stmt = Stmt::from_assignment(&a);
        // q is auto-materialized as a zero workspace; reading zeros is the
        // documented workspace behaviour, so this evaluates to zeros.
        eval(&stmt, &mut ctx).unwrap();
        assert_eq!(ctx.tensor("y").unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    fn rank_mismatch_errors() {
        let mut ctx = EvalContext::new();
        ctx.add_tensor("A", matrix2x2([0.0; 4]));
        ctx.add_tensor("y", DenseTensor::zeros(vec![2]));
        let (a, _) = parse_assignment("y(i) = A(i)").unwrap();
        let stmt = Stmt::from_assignment(&a);
        assert!(matches!(
            eval(&stmt, &mut ctx),
            Err(IrError::InvalidTransform(_))
        ));
    }

    #[test]
    fn inconsistent_extent_detected() {
        let mut ctx = EvalContext::new();
        ctx.add_tensor("A", DenseTensor::zeros(vec![2, 3]));
        ctx.add_tensor("y", DenseTensor::zeros(vec![2]));
        ctx.add_tensor("x", DenseTensor::zeros(vec![2]));
        // j indexes both a dim-3 mode of A and a dim-2 vector x.
        let (a, _) = parse_assignment("y(i) = A(i,j) * x(j)").unwrap();
        let stmt = Stmt::from_assignment(&a);
        assert!(matches!(
            eval(&stmt, &mut ctx),
            Err(IrError::InconsistentExtent { .. })
        ));
    }

    #[test]
    fn sequence_runs_in_order() {
        let s1 = Stmt::assign(Access::scalar("t"), Expr::Literal(1.0));
        let s2 = Stmt::assign(
            Access::scalar("t"),
            Expr::add(Expr::access("t", vec![]), Expr::Literal(2.0)),
        );
        let stmt = Stmt::Sequence(vec![s1, s2]);
        let mut ctx = EvalContext::new();
        eval(&stmt, &mut ctx).unwrap();
        assert_eq!(ctx.scalar("t"), Some(3.0));
    }

    #[test]
    fn ttv_three_tensor() {
        let mut ctx = EvalContext::new();
        let mut b = DenseTensor::zeros(vec![2, 2, 3]);
        b.set(&[0, 0, 0], 1.0);
        b.set(&[0, 1, 2], 2.0);
        b.set(&[1, 1, 1], 3.0);
        ctx.add_tensor("B", b);
        ctx.add_tensor("c", DenseTensor::from_data(vec![3], vec![1.0, 2.0, 3.0]));
        ctx.add_tensor("A", DenseTensor::zeros(vec![2, 2]));
        eval_str("A(i,j) = B(i,j,k) * c(k)", &mut ctx);
        assert_eq!(ctx.tensor("A").unwrap().data(), &[1.0, 6.0, 0.0, 6.0]);
    }
}
