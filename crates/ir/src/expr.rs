//! Tensor index notation: index variables, accesses, scalar expressions,
//! and assignments (Fig. 2 of the paper).

use std::fmt;

/// A named index variable (`i`, `j`, `k`, or compiler-derived names such as
/// `i0`/`i1` produced by `split`).
///
/// # Example
///
/// ```
/// use stardust_ir::IndexVar;
///
/// let i = IndexVar::new("i");
/// assert_eq!(i.name(), "i");
/// assert_eq!(i.to_string(), "i");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexVar {
    name: String,
}

impl IndexVar {
    /// Creates an index variable with the given name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "index variable name must be nonempty");
        IndexVar { name }
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Derives a fresh variable name with a suffix (used by scheduling
    /// transformations, e.g. `i.derived("o")` is `io`).
    pub fn derived(&self, suffix: &str) -> IndexVar {
        IndexVar::new(format!("{}{}", self.name, suffix))
    }
}

impl fmt::Display for IndexVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl From<&str> for IndexVar {
    fn from(s: &str) -> Self {
        IndexVar::new(s)
    }
}

/// A tensor access `T(i1, ..., in)`. Rank-0 (scalar) accesses have an empty
/// index list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Access {
    /// Name of the accessed tensor.
    pub tensor: String,
    /// Index variables, one per mode.
    pub indices: Vec<IndexVar>,
}

impl Access {
    /// Creates an access from a tensor name and index variables.
    pub fn new(tensor: impl Into<String>, indices: Vec<IndexVar>) -> Self {
        Access {
            tensor: tensor.into(),
            indices,
        }
    }

    /// Creates a scalar (rank-0) access.
    pub fn scalar(tensor: impl Into<String>) -> Self {
        Access::new(tensor, vec![])
    }

    /// The access's rank.
    pub fn rank(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` when `var` indexes this access.
    pub fn uses(&self, var: &IndexVar) -> bool {
        self.indices.contains(var)
    }

    /// Renames every occurrence of `from` to `to` (used by `precompute`'s
    /// index substitution `e[iw*/i*]`).
    pub fn rename(&mut self, from: &IndexVar, to: &IndexVar) {
        for ix in &mut self.indices {
            if ix == from {
                *ix = to.clone();
            }
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.indices.is_empty() {
            return write!(f, "{}", self.tensor);
        }
        write!(f, "{}(", self.tensor)?;
        for (n, ix) in self.indices.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{ix}")?;
        }
        write!(f, ")")
    }
}

/// Binary scalar operators of index notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition — a *union* operator over sparse iteration spaces.
    Add,
    /// Subtraction — union, with the right operand negated.
    Sub,
    /// Multiplication — an *intersection* operator over sparse spaces.
    Mul,
}

impl BinOp {
    /// Returns `true` for operators that annihilate on zero (so sparse
    /// iteration may intersect operand coordinate sets).
    pub fn is_intersection(self) -> bool {
        matches!(self, BinOp::Mul)
    }

    /// Applies the operator to two scalars.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinOp::Add => write!(f, "+"),
            BinOp::Sub => write!(f, "-"),
            BinOp::Mul => write!(f, "*"),
        }
    }
}

/// A scalar index-notation expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Tensor access.
    Access(Access),
    /// Scalar literal constant.
    Literal(f64),
    /// Negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for an access expression.
    pub fn access(tensor: impl Into<String>, indices: Vec<IndexVar>) -> Expr {
        Expr::Access(Access::new(tensor, indices))
    }

    /// Builds `lhs op rhs`.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Builds `lhs + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, lhs, rhs)
    }

    /// Builds `lhs - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, lhs, rhs)
    }

    /// Builds `lhs * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, lhs, rhs)
    }

    /// Collects every access in the expression, left to right.
    pub fn accesses(&self) -> Vec<&Access> {
        let mut out = Vec::new();
        self.visit_accesses(&mut |a| out.push(a));
        out
    }

    fn visit_accesses<'a>(&'a self, f: &mut impl FnMut(&'a Access)) {
        match self {
            Expr::Access(a) => f(a),
            Expr::Literal(_) => {}
            Expr::Neg(e) => e.visit_accesses(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_accesses(f);
                rhs.visit_accesses(f);
            }
        }
    }

    /// Collects the distinct index variables used, in first-use order.
    pub fn index_vars(&self) -> Vec<IndexVar> {
        let mut out: Vec<IndexVar> = Vec::new();
        self.visit_accesses(&mut |a| {
            for ix in &a.indices {
                if !out.contains(ix) {
                    out.push(ix.clone());
                }
            }
        });
        out
    }

    /// Collects the distinct tensor names used, in first-use order.
    pub fn tensor_names(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        self.visit_accesses(&mut |a| {
            if !out.contains(&a.tensor) {
                out.push(a.tensor.clone());
            }
        });
        out
    }

    /// Returns `true` when the expression contains `sub` as a subexpression
    /// (structural equality).
    pub fn contains(&self, sub: &Expr) -> bool {
        if self == sub {
            return true;
        }
        match self {
            Expr::Access(_) | Expr::Literal(_) => false,
            Expr::Neg(e) => e.contains(sub),
            Expr::Binary { lhs, rhs, .. } => lhs.contains(sub) || rhs.contains(sub),
        }
    }

    /// Replaces every structural occurrence of `from` with `to`, returning
    /// the number of replacements made.
    pub fn replace(&mut self, from: &Expr, to: &Expr) -> usize {
        if self == from {
            *self = to.clone();
            return 1;
        }
        match self {
            Expr::Access(_) | Expr::Literal(_) => 0,
            Expr::Neg(e) => e.replace(from, to),
            Expr::Binary { lhs, rhs, .. } => lhs.replace(from, to) + rhs.replace(from, to),
        }
    }

    /// Renames an index variable throughout the expression.
    pub fn rename_index(&mut self, from: &IndexVar, to: &IndexVar) {
        match self {
            Expr::Access(a) => a.rename(from, to),
            Expr::Literal(_) => {}
            Expr::Neg(e) => e.rename_index(from, to),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.rename_index(from, to);
                rhs.rename_index(from, to);
            }
        }
    }

    /// Renames a tensor throughout the expression.
    pub fn rename_tensor(&mut self, from: &str, to: &str) {
        match self {
            Expr::Access(a) => {
                if a.tensor == from {
                    a.tensor = to.to_string();
                }
            }
            Expr::Literal(_) => {}
            Expr::Neg(e) => e.rename_tensor(from, to),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.rename_tensor(from, to);
                rhs.rename_tensor(from, to);
            }
        }
    }
}

impl From<Access> for Expr {
    fn from(a: Access) -> Self {
        Expr::Access(a)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Access(a) => write!(f, "{a}"),
            Expr::Literal(c) => write!(f, "{c}"),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::Binary { op, lhs, rhs } => {
                let needs_parens = |e: &Expr| {
                    matches!(
                        e,
                        Expr::Binary {
                            op: BinOp::Add | BinOp::Sub,
                            ..
                        }
                    ) && *op == BinOp::Mul
                };
                if needs_parens(lhs) {
                    write!(f, "({lhs})")?;
                } else {
                    write!(f, "{lhs}")?;
                }
                write!(f, " {op} ")?;
                if needs_parens(rhs) {
                    write!(f, "({rhs})")
                } else {
                    write!(f, "{rhs}")
                }
            }
        }
    }
}

/// A tensor index-notation assignment `a = e` or `a += e`.
///
/// Index variables on the right that do not appear on the left are
/// *reduction* variables (summed over).
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The result access.
    pub lhs: Access,
    /// The right-hand-side expression.
    pub rhs: Expr,
}

impl Assignment {
    /// Creates an assignment.
    pub fn new(lhs: Access, rhs: Expr) -> Self {
        Assignment { lhs, rhs }
    }

    /// Free index variables: those appearing on the left-hand side.
    pub fn free_vars(&self) -> Vec<IndexVar> {
        self.lhs.indices.clone()
    }

    /// Reduction variables: right-hand-side variables absent from the left,
    /// in first-use order.
    pub fn reduction_vars(&self) -> Vec<IndexVar> {
        self.rhs
            .index_vars()
            .into_iter()
            .filter(|v| !self.lhs.indices.contains(v))
            .collect()
    }

    /// All index variables in canonical loop order: free vars (in LHS
    /// order), then reduction vars (in first-use order).
    pub fn loop_order(&self) -> Vec<IndexVar> {
        let mut order = self.free_vars();
        for v in self.reduction_vars() {
            if !order.contains(&v) {
                order.push(v);
            }
        }
        order
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spmv() -> Assignment {
        // y(i) = A(i,j) * x(j)
        Assignment::new(
            Access::new("y", vec!["i".into()]),
            Expr::mul(
                Expr::access("A", vec!["i".into(), "j".into()]),
                Expr::access("x", vec!["j".into()]),
            ),
        )
    }

    #[test]
    fn index_var_display_and_derive() {
        let i = IndexVar::new("i");
        assert_eq!(i.derived("o").name(), "io");
        assert_eq!(format!("{i}"), "i");
    }

    #[test]
    fn access_display() {
        let a = Access::new("B", vec!["i".into(), "j".into()]);
        assert_eq!(a.to_string(), "B(i,j)");
        assert_eq!(Access::scalar("alpha").to_string(), "alpha");
    }

    #[test]
    fn access_uses_and_rename() {
        let mut a = Access::new("B", vec!["i".into(), "j".into()]);
        assert!(a.uses(&"i".into()));
        assert!(!a.uses(&"k".into()));
        a.rename(&"j".into(), &"jw".into());
        assert_eq!(a.to_string(), "B(i,jw)");
    }

    #[test]
    fn binop_semantics() {
        assert!(BinOp::Mul.is_intersection());
        assert!(!BinOp::Add.is_intersection());
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
    }

    #[test]
    fn expr_display_with_precedence() {
        let e = Expr::mul(
            Expr::add(
                Expr::access("B", vec!["i".into()]),
                Expr::access("C", vec!["i".into()]),
            ),
            Expr::access("d", vec!["i".into()]),
        );
        assert_eq!(e.to_string(), "(B(i) + C(i)) * d(i)");
    }

    #[test]
    fn expr_vars_and_tensors() {
        let a = spmv();
        assert_eq!(a.rhs.index_vars(), vec!["i".into(), "j".into()]);
        assert_eq!(a.rhs.tensor_names(), vec!["A".to_string(), "x".to_string()]);
    }

    #[test]
    fn reduction_vars_detected() {
        let a = spmv();
        assert_eq!(a.free_vars(), vec![IndexVar::new("i")]);
        assert_eq!(a.reduction_vars(), vec![IndexVar::new("j")]);
        assert_eq!(a.loop_order(), vec!["i".into(), "j".into()]);
    }

    #[test]
    fn contains_and_replace() {
        let mut e = Expr::mul(
            Expr::access("B", vec!["i".into()]),
            Expr::access("c", vec![]),
        );
        let b = Expr::access("B", vec!["i".into()]);
        assert!(e.contains(&b));
        let ws = Expr::access("ws", vec!["i".into()]);
        assert_eq!(e.replace(&b, &ws), 1);
        assert!(e.contains(&ws));
        assert!(!e.contains(&b));
    }

    #[test]
    fn rename_tensor_and_index() {
        let mut e = spmv().rhs;
        e.rename_tensor("x", "x_on");
        e.rename_index(&"j".into(), &"jw".into());
        assert_eq!(e.to_string(), "A(i,jw) * x_on(jw)");
    }

    #[test]
    fn assignment_display() {
        assert_eq!(spmv().to_string(), "y(i) = A(i,j) * x(j)");
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_index_var_panics() {
        let _ = IndexVar::new("");
    }
}
