//! Index notation and concrete index notation (CIN) for Stardust.
//!
//! This crate implements the intermediate representations the Stardust
//! compiler operates on (paper §2–§3, Fig. 2):
//!
//! - **Tensor index notation** ([`expr`]): accesses `T(i, j)`, scalar
//!   expressions over `+`, `-`, `*`, and assignments `a = e` / `a += e`,
//!   with a small text [`parse`]r for the familiar
//!   `"A(i,j) = B(i,j) * C(i,k) * D(k,j)"` syntax.
//! - **Concrete index notation** ([`cin`]): the statement language
//!   `∀i S | a = e | a += e | S; S | S where S | S s.t. r*` of Kjolstad et
//!   al. (CGO 2019), extended with the paper's `map` nodes that bind
//!   sub-statements to backend patterns (§5.2, Table 2).
//! - **Scheduling relations** ([`relations`]): `split_up`, `split_down`,
//!   `fuse`, and environment bindings, which `s.t.` nodes carry so that
//!   derived index variables remain recoverable.
//! - **A CIN evaluator** ([`eval`]): executable semantics for any
//!   (scheduled) CIN statement against real tensors. Every compiler
//!   transformation in the workspace is tested against this oracle.

pub mod cin;
pub mod error;
pub mod eval;
pub mod expr;
pub mod parse;
pub mod relations;

pub use cin::{AssignOp, Backend, PatternFn, Stmt};
pub use error::IrError;
pub use eval::{eval, EvalContext};
pub use expr::{Access, Assignment, BinOp, Expr, IndexVar};
pub use parse::parse_assignment;
pub use relations::{IndexSpace, Relation};
