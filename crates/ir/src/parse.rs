//! A small recursive-descent parser for tensor index notation.
//!
//! Accepts the syntax used throughout the paper, e.g.
//! `A(i,j) = B(i,j) * C(i,k) * D(k,j)` or `y(i) = b(i) - A(i,j) * x(j)`,
//! including scalar accesses (`alpha`), literals, parentheses, unary minus,
//! and the accumulating form `+=`.

use crate::error::IrError;
use crate::expr::{Access, Assignment, Expr, IndexVar};

/// Parses an index-notation assignment.
///
/// Returns the assignment plus a flag indicating whether the accumulating
/// form (`+=`) was used.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with a byte offset on malformed input.
///
/// # Example
///
/// ```
/// use stardust_ir::parse_assignment;
///
/// let (a, accumulate) = parse_assignment("y(i) = A(i,j) * x(j)").unwrap();
/// assert!(!accumulate);
/// assert_eq!(a.to_string(), "y(i) = A(i,j) * x(j)");
/// assert_eq!(a.reduction_vars().len(), 1);
/// ```
pub fn parse_assignment(input: &str) -> Result<(Assignment, bool), IrError> {
    let mut p = Parser::new(input);
    let lhs = p.parse_access()?;
    p.skip_ws();
    let accumulate = if p.eat("+=") {
        true
    } else if p.eat("=") {
        false
    } else {
        return Err(p.error("expected '=' or '+='"));
    };
    let rhs = p.parse_expr()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input after expression"));
    }
    Ok((Assignment::new(lhs, rhs), accumulate))
}

/// Parses a standalone index-notation expression (right-hand side only).
///
/// # Errors
///
/// Returns [`IrError::Parse`] on malformed input.
pub fn parse_expr(input: &str) -> Result<Expr, IrError> {
    let mut p = Parser::new(input);
    let e = p.parse_expr()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input after expression"));
    }
    Ok(e)
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.rest().is_empty()
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn error(&self, message: &str) -> IrError {
        IrError::Parse {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn parse_ident(&mut self) -> Result<&'a str, IrError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .take_while(|(n, c)| c.is_alphanumeric() || *c == '_' && *n > 0 || c.is_alphabetic())
            .map(|(n, c)| n + c.len_utf8())
            .last()
            .unwrap_or(0);
        // Identifiers must start with a letter or underscore.
        match rest.chars().next() {
            Some(c) if c.is_alphabetic() || c == '_' => {}
            _ => return Err(self.error("expected identifier")),
        }
        let ident = &rest[..end];
        self.pos += end;
        Ok(ident)
    }

    fn parse_access(&mut self) -> Result<Access, IrError> {
        let name = self.parse_ident()?;
        self.skip_ws();
        let mut indices = Vec::new();
        if self.eat("(") {
            loop {
                let ix = self.parse_ident()?;
                indices.push(IndexVar::new(ix));
                self.skip_ws();
                if self.eat(")") {
                    break;
                }
                if !self.eat(",") {
                    return Err(self.error("expected ',' or ')' in access"));
                }
            }
        }
        Ok(Access::new(name, indices))
    }

    // expr := term (('+' | '-') term)*
    fn parse_expr(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.parse_term()?;
        loop {
            self.skip_ws();
            if self.rest().starts_with("+=") {
                return Err(self.error("unexpected '+=' inside expression"));
            }
            if self.eat("+") {
                let rhs = self.parse_term()?;
                lhs = Expr::add(lhs, rhs);
            } else if self.eat("-") {
                let rhs = self.parse_term()?;
                lhs = Expr::sub(lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    // term := factor ('*' factor)*
    fn parse_term(&mut self) -> Result<Expr, IrError> {
        let mut lhs = self.parse_factor()?;
        while self.eat("*") {
            let rhs = self.parse_factor()?;
            lhs = Expr::mul(lhs, rhs);
        }
        Ok(lhs)
    }

    // factor := '-' factor | '(' expr ')' | number | access
    fn parse_factor(&mut self) -> Result<Expr, IrError> {
        self.skip_ws();
        if self.eat("-") {
            return Ok(Expr::Neg(Box::new(self.parse_factor()?)));
        }
        if self.eat("(") {
            let e = self.parse_expr()?;
            if !self.eat(")") {
                return Err(self.error("expected ')'"));
            }
            return Ok(e);
        }
        match self.peek() {
            Some(c) if c.is_ascii_digit() => self.parse_number(),
            Some(c) if c.is_alphabetic() || c == '_' => Ok(Expr::Access(self.parse_access()?)),
            _ => Err(self.error("expected factor")),
        }
    }

    fn parse_number(&mut self) -> Result<Expr, IrError> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_digit() || *c == '.')
            .map(|(n, c)| n + c.len_utf8())
            .last()
            .unwrap_or(0);
        let text = &rest[..end];
        let value: f64 = text
            .parse()
            .map_err(|_| self.error("malformed numeric literal"))?;
        self.pos += end;
        Ok(Expr::Literal(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn parses_spmv() {
        let (a, acc) = parse_assignment("y(i) = A(i,j) * x(j)").unwrap();
        assert!(!acc);
        assert_eq!(a.lhs.tensor, "y");
        assert_eq!(a.reduction_vars(), vec![IndexVar::new("j")]);
    }

    #[test]
    fn parses_sddmm() {
        let (a, _) = parse_assignment("A(i,j) = B(i,j) * C(i,k) * D(k,j)").unwrap();
        assert_eq!(a.rhs.tensor_names(), vec!["B", "C", "D"]);
        assert_eq!(a.reduction_vars(), vec![IndexVar::new("k")]);
        // Left-associated product.
        assert_eq!(a.to_string(), "A(i,j) = B(i,j) * C(i,k) * D(k,j)");
    }

    #[test]
    fn parses_accumulate() {
        let (a, acc) = parse_assignment("A(i,j) += B(i,j,k) * c(k)").unwrap();
        assert!(acc);
        assert_eq!(a.lhs.rank(), 2);
    }

    #[test]
    fn parses_mattransmul_shape() {
        // y(i) = alpha * AT(i,j) * x(j) + beta * z(i)  (A^T represented as
        // a CSC-formatted tensor named A in the kernel suite).
        let (a, _) = parse_assignment("y(i) = alpha * AT(i,j) * x(j) + beta * z(i)").unwrap();
        assert_eq!(a.rhs.tensor_names(), vec!["alpha", "AT", "x", "beta", "z"]);
        match &a.rhs {
            Expr::Binary { op: BinOp::Add, .. } => {}
            other => panic!("expected top-level +, got {other:?}"),
        }
    }

    #[test]
    fn parses_residual() {
        let (a, _) = parse_assignment("y(i) = b(i) - A(i,j) * x(j)").unwrap();
        match &a.rhs {
            Expr::Binary { op: BinOp::Sub, .. } => {}
            other => panic!("expected top-level -, got {other:?}"),
        }
    }

    #[test]
    fn parses_parentheses_and_literals() {
        let e = parse_expr("2 * (b(i) + 0.5)").unwrap();
        assert_eq!(e.to_string(), "2 * (b(i) + 0.5)");
    }

    #[test]
    fn parses_unary_minus() {
        let e = parse_expr("-b(i) * c(i)").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_scalar_access() {
        let e = parse_expr("alpha").unwrap();
        assert_eq!(e, Expr::Access(Access::scalar("alpha")));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_assignment("y(i) == x(i)").is_err());
        assert!(parse_assignment("y(i) = ").is_err());
        assert!(parse_assignment("y(i = x(i)").is_err());
        assert!(parse_assignment("y(i) = x(i) extra").is_err());
        assert!(parse_expr("(a(i)").is_err());
        assert!(parse_expr("1.2.3").is_err());
    }

    #[test]
    fn error_reports_position() {
        match parse_assignment("y(i) @ x(i)") {
            Err(IrError::Parse { at, .. }) => assert!(at >= 5),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn whitespace_insensitive() {
        let (a, _) = parse_assignment("  y( i )   =  A( i , j )*x( j )  ").unwrap();
        assert_eq!(a.to_string(), "y(i) = A(i,j) * x(j)");
    }
}
